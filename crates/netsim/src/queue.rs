//! Finite FIFO queues for the node domain.
//!
//! §2: "Within the node domain each node's capability is described in terms
//! of processing, **queueing** and communication interfaces." `FiniteQueue`
//! is the standard drop-tail buffer used by the ATM switch port modules; it
//! tracks occupancy statistics and drop counts so models can report loss.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Outcome of an enqueue attempt.
#[derive(Debug)]
pub enum Enqueue {
    /// The packet was accepted; current depth is reported.
    Accepted {
        /// Queue depth after insertion.
        depth: usize,
    },
    /// The queue was full; the rejected packet is returned to the caller.
    Dropped(Packet),
}

/// A bounded drop-tail FIFO with occupancy accounting.
///
/// # Examples
///
/// ```
/// use castanet_netsim::queue::{Enqueue, FiniteQueue};
/// use castanet_netsim::packet::Packet;
///
/// let mut q = FiniteQueue::new(2);
/// assert!(matches!(q.enqueue(Packet::new(0, 8)), Enqueue::Accepted { depth: 1 }));
/// assert!(matches!(q.enqueue(Packet::new(0, 8)), Enqueue::Accepted { depth: 2 }));
/// assert!(matches!(q.enqueue(Packet::new(0, 8)), Enqueue::Dropped(_)));
/// assert_eq!(q.dropped(), 1);
/// ```
#[derive(Debug)]
pub struct FiniteQueue {
    items: VecDeque<Packet>,
    capacity: usize,
    dropped: u64,
    enqueued: u64,
    dequeued: u64,
    peak_depth: usize,
}

impl FiniteQueue {
    /// Creates a queue holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity queue drops everything,
    /// which is never what a model means).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        FiniteQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            enqueued: 0,
            dequeued: 0,
            peak_depth: 0,
        }
    }

    /// Attempts to append `packet`; returns it back in
    /// [`Enqueue::Dropped`] when full.
    pub fn enqueue(&mut self, packet: Packet) -> Enqueue {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return Enqueue::Dropped(packet);
        }
        self.items.push_back(packet);
        self.enqueued += 1;
        self.peak_depth = self.peak_depth.max(self.items.len());
        Enqueue::Accepted {
            depth: self.items.len(),
        }
    }

    /// Removes and returns the oldest packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.items.pop_front();
        if p.is_some() {
            self.dequeued += 1;
        }
        p
    }

    /// Oldest packet without removing it.
    #[must_use]
    pub fn front(&self) -> Option<&Packet> {
        self.items.front()
    }

    /// Current number of queued packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no packets are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when the next enqueue would drop.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Packets dropped because the queue was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets accepted over the queue's lifetime.
    #[must_use]
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Packets removed over the queue's lifetime.
    #[must_use]
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Highest depth ever reached.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Loss ratio: dropped / offered. Zero when nothing was offered.
    #[must_use]
    pub fn loss_ratio(&self) -> f64 {
        let offered = self.enqueued + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = FiniteQueue::new(10);
        for fmt in 0..5 {
            q.enqueue(Packet::new(fmt, 8));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue())
            .map(|p| p.format())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drops_when_full_and_returns_packet() {
        let mut q = FiniteQueue::new(1);
        q.enqueue(Packet::new(1, 8));
        match q.enqueue(Packet::new(2, 8)) {
            Enqueue::Dropped(p) => assert_eq!(p.format(), 2),
            Enqueue::Accepted { .. } => panic!("queue should be full"),
        }
        assert!(q.is_full());
        assert_eq!(q.dropped(), 1);
        assert!((q.loss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counters_and_peak_depth() {
        let mut q = FiniteQueue::new(3);
        q.enqueue(Packet::new(0, 8));
        q.enqueue(Packet::new(0, 8));
        q.dequeue();
        q.enqueue(Packet::new(0, 8));
        assert_eq!(q.enqueued(), 3);
        assert_eq!(q.dequeued(), 1);
        assert_eq!(q.peak_depth(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn dequeue_empty_is_none() {
        let mut q = FiniteQueue::new(1);
        assert!(q.dequeue().is_none());
        assert_eq!(q.dequeued(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn front_peeks() {
        let mut q = FiniteQueue::new(2);
        q.enqueue(Packet::new(9, 8));
        assert_eq!(q.front().map(Packet::format), Some(9));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = FiniteQueue::new(0);
    }

    #[test]
    fn loss_ratio_zero_when_unused() {
        let q = FiniteQueue::new(1);
        assert_eq!(q.loss_ratio(), 0.0);
    }
}
