//! Deterministic random-number utilities for traffic modelling.
//!
//! Effective traffic modelling "has become crucial for the design process of
//! networking hardware" (§2). The distributions here are the ones the ATM
//! traffic sources in `castanet-atm` draw from: exponential inter-arrival
//! times (Poisson traffic), geometric burst lengths (on-off sources), Pareto
//! tails (self-similar loads). All sampling is by inverse transform on a
//! seeded [`SmallRng`], so simulations are exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates an independent, deterministic RNG stream for purpose `stream`
/// derived from a base `seed`. Different streams are decorrelated by a
/// SplitMix64-style mixing step, so a traffic source and a background load
/// seeded from the same base seed do not produce lock-stepped values.
#[must_use]
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix(seed, stream))
}

fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples an exponential variate with the given mean.
///
/// # Panics
///
/// Panics if `mean` is not positive and finite.
#[must_use]
pub fn exponential(rng: &mut SmallRng, mean: f64) -> f64 {
    assert!(
        mean > 0.0 && mean.is_finite(),
        "exponential mean must be positive"
    );
    // Inverse transform; 1-u avoids ln(0).
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

/// Samples a geometric variate: the number of Bernoulli(`p`) trials up to and
/// including the first success (support 1, 2, 3, …).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
#[must_use]
pub fn geometric(rng: &mut SmallRng, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0, 1]");
    if (p - 1.0).abs() < f64::EPSILON {
        return 1;
    }
    let u: f64 = rng.random();
    ((1.0 - u).ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
}

/// Samples a Pareto variate with scale `xm` and shape `alpha`
/// (heavy-tailed; used for self-similar traffic burst sizes).
///
/// # Panics
///
/// Panics unless `xm > 0` and `alpha > 0`.
#[must_use]
pub fn pareto(rng: &mut SmallRng, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0, "pareto scale must be positive");
    assert!(alpha > 0.0, "pareto shape must be positive");
    let u: f64 = rng.random();
    xm / (1.0 - u).powf(1.0 / alpha)
}

/// Samples a uniform integer in `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `lo > hi`.
#[must_use]
pub fn uniform_u64(rng: &mut SmallRng, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "uniform range is empty");
    rng.random_range(lo..=hi)
}

/// Returns `true` with probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn bernoulli(rng: &mut SmallRng, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let mut a1 = stream_rng(42, 0);
        let mut a2 = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let xs1: Vec<u64> = (0..8).map(|_| a1.random()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = stream_rng(7, 0);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, mean)).sum();
        let est = sum / f64::from(n);
        assert!(
            (est - mean).abs() < 0.1,
            "estimated mean {est} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = stream_rng(9, 0);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 0.5) >= 0.0);
        }
    }

    #[test]
    fn geometric_mean_is_one_over_p() {
        let mut rng = stream_rng(11, 0);
        let p = 0.25;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut rng, p)).sum();
        let est = sum as f64 / f64::from(n);
        assert!(
            (est - 4.0).abs() < 0.15,
            "estimated mean {est} too far from 4"
        );
    }

    #[test]
    fn geometric_with_p_one_is_always_one() {
        let mut rng = stream_rng(1, 0);
        for _ in 0..100 {
            assert_eq!(geometric(&mut rng, 1.0), 1);
        }
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = stream_rng(3, 0);
        for _ in 0..1000 {
            assert!(pareto(&mut rng, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = stream_rng(5, 0);
        for _ in 0..1000 {
            let v = uniform_u64(&mut rng, 10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(uniform_u64(&mut rng, 7, 7), 7);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = stream_rng(13, 0);
        let hits = (0..20_000).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!(
            (freq - 0.3).abs() < 0.02,
            "frequency {freq} too far from 0.3"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_nonpositive_mean() {
        let mut rng = stream_rng(0, 0);
        let _ = exponential(&mut rng, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn uniform_rejects_inverted_range() {
        let mut rng = stream_rng(0, 0);
        let _ = uniform_u64(&mut rng, 5, 4);
    }
}
