//! The simulation executive: module table, connection table, event dispatch.
//!
//! The kernel realizes the OPNET-style execution model the paper builds on:
//! a single time-ordered event list, modules (process instances) that react
//! to packet arrivals and interrupts, and connections between module ports
//! that are either instantaneous intra-node *streams* or rate/delay-modelled
//! inter-node *links*.

use crate::error::NetsimError;
use crate::event::{EventId, EventKind, ModuleId, NodeId, PortId};
use crate::link::LinkParams;
use crate::packet::Packet;
use crate::process::Process;
use crate::scheduler::EventList;
use crate::stats::{ProbeId, StatsRegistry};
use crate::time::{SimDuration, SimTime};
use castanet_obs::{Counter, Gauge, Telemetry};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Why a call to [`Kernel::run`] (or a variant) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event list drained completely.
    EventListEmpty,
    /// A scheduled stop event fired, or a process called
    /// [`Ctx::request_stop`].
    StopRequested,
    /// The time horizon passed to `run_until` was reached.
    HorizonReached,
    /// The event budget passed to `run_events` was exhausted.
    BudgetExhausted,
}

struct ModuleSlot {
    name: String,
    node: NodeId,
    process: Option<Box<dyn Process>>,
    events_handled: u64,
}

#[derive(Debug, Clone)]
struct Connection {
    dst: ModuleId,
    dst_port: PortId,
    link: Option<LinkParams>,
}

struct NodeSlot {
    name: String,
    modules: Vec<ModuleId>,
}

/// The discrete-event simulation kernel.
///
/// Build the model first (nodes, modules, connections), then run. Topology
/// changes after the first event has executed are rejected, matching the
/// static-topology assumption of the network domain.
///
/// # Examples
///
/// A one-module model that ticks three times:
///
/// ```
/// use castanet_netsim::kernel::{Ctx, Kernel};
/// use castanet_netsim::event::PortId;
/// use castanet_netsim::packet::Packet;
/// use castanet_netsim::process::Process;
/// use castanet_netsim::time::SimDuration;
///
/// struct Ticker { remaining: u32 }
/// impl Process for Ticker {
///     fn init(&mut self, ctx: &mut Ctx) {
///         ctx.schedule_self(SimDuration::from_ns(10), 0).expect("schedule");
///     }
///     fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {}
///     fn on_interrupt(&mut self, ctx: &mut Ctx, _code: u32) {
///         self.remaining -= 1;
///         if self.remaining > 0 {
///             ctx.schedule_self(SimDuration::from_ns(10), 0).expect("schedule");
///         }
///     }
/// }
///
/// let mut kernel = Kernel::new(7);
/// let node = kernel.add_node("nd");
/// kernel.add_module(node, "ticker", Box::new(Ticker { remaining: 3 }));
/// kernel.run()?;
/// assert_eq!(kernel.now(), castanet_netsim::time::SimTime::from_ns(30));
/// # Ok::<(), castanet_netsim::error::NetsimError>(())
/// ```
pub struct Kernel {
    events: EventList,
    modules: Vec<ModuleSlot>,
    nodes: Vec<NodeSlot>,
    connections: HashMap<(ModuleId, PortId), Connection>,
    stats: StatsRegistry,
    rng: SmallRng,
    started: bool,
    stop_requested: bool,
    /// Telemetry handles (no-ops by default — see [`Kernel::set_telemetry`]).
    obs_events: Counter,
    obs_pending: Gauge,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.events.now())
            .field("modules", &self.modules.len())
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

impl Kernel {
    /// Creates a kernel with a deterministic RNG stream derived from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Kernel {
            events: EventList::new(),
            modules: Vec::new(),
            nodes: Vec::new(),
            connections: HashMap::new(),
            stats: StatsRegistry::new(),
            rng: SmallRng::seed_from_u64(seed),
            started: false,
            stop_requested: false,
            obs_events: Counter::default(),
            obs_pending: Gauge::default(),
        }
    }

    /// Attaches a telemetry handle: the kernel then maintains the
    /// `originator.net_events` counter and the `originator.pending_events`
    /// gauge in `tel`'s metrics registry. The default (detached) state costs
    /// one predictable branch per event.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.obs_events = tel.counter("originator.net_events");
        self.obs_pending = tel.gauge("originator.pending_events");
    }

    // ------------------------------------------------------------------
    // Model construction (network / node domains)
    // ------------------------------------------------------------------

    /// Adds a node (a named grouping of modules) and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            name: name.into(),
            modules: Vec::new(),
        });
        id
    }

    /// Adds a module (process instance) to `node` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist or if the simulation already started.
    pub fn add_module(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        process: Box<dyn Process>,
    ) -> ModuleId {
        assert!(
            !self.started,
            "cannot add modules after the simulation started"
        );
        let id = ModuleId(self.modules.len());
        self.modules.push(ModuleSlot {
            name: name.into(),
            node,
            process: Some(process),
            events_handled: 0,
        });
        self.nodes
            .get_mut(node.0)
            .expect("node id out of range")
            .modules
            .push(id);
        id
    }

    /// Connects output port `src_port` of `src` to input port `dst_port` of
    /// `dst` with an instantaneous intra-node stream.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::PortAlreadyConnected`] if `src_port` already has
    /// a connection, or [`NetsimError::TopologyFrozen`] after start.
    pub fn connect_stream(
        &mut self,
        src: ModuleId,
        src_port: PortId,
        dst: ModuleId,
        dst_port: PortId,
    ) -> Result<(), NetsimError> {
        self.connect(src, src_port, dst, dst_port, None)
    }

    /// Connects two module ports with a link characterized by a data rate and
    /// propagation delay. Packets incur `bit_len / rate` serialization delay
    /// plus the propagation delay.
    ///
    /// # Errors
    ///
    /// Same as [`Kernel::connect_stream`].
    pub fn connect_link(
        &mut self,
        src: ModuleId,
        src_port: PortId,
        dst: ModuleId,
        dst_port: PortId,
        link: LinkParams,
    ) -> Result<(), NetsimError> {
        self.connect(src, src_port, dst, dst_port, Some(link))
    }

    fn connect(
        &mut self,
        src: ModuleId,
        src_port: PortId,
        dst: ModuleId,
        dst_port: PortId,
        link: Option<LinkParams>,
    ) -> Result<(), NetsimError> {
        if self.started {
            return Err(NetsimError::TopologyFrozen);
        }
        if src.0 >= self.modules.len() || dst.0 >= self.modules.len() {
            return Err(NetsimError::UnknownModule);
        }
        if self.connections.contains_key(&(src, src_port)) {
            return Err(NetsimError::PortAlreadyConnected {
                module: src,
                port: src_port,
            });
        }
        self.connections.insert(
            (src, src_port),
            Connection {
                dst,
                dst_port,
                link,
            },
        );
        Ok(())
    }

    /// Registers a statistics probe before the run. Probes can also be
    /// created from process code through [`Ctx::stats`].
    pub fn add_probe(&mut self, name: impl Into<String>) -> ProbeId {
        self.stats.probe(name)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Name given to `module` at construction.
    #[must_use]
    pub fn module_name(&self, module: ModuleId) -> &str {
        &self.modules[module.0].name
    }

    /// The node a module belongs to.
    #[must_use]
    pub fn module_node(&self, module: ModuleId) -> NodeId {
        self.modules[module.0].node
    }

    /// Name given to `node` at construction.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Modules belonging to `node`.
    #[must_use]
    pub fn node_modules(&self, node: NodeId) -> &[ModuleId] {
        &self.nodes[node.0].modules
    }

    /// Number of events `module` has handled so far.
    #[must_use]
    pub fn module_event_count(&self, module: ModuleId) -> u64 {
        self.modules[module.0].events_handled
    }

    /// Total number of events executed by the kernel.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.events.executed_total()
    }

    /// Read access to the collected statistics.
    #[must_use]
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Mutable access to the statistics registry (e.g. to reset between
    /// measurement phases).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.stats
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Number of modules registered with the kernel.
    #[must_use]
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Iterates every registered module id.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> + '_ {
        (0..self.modules.len()).map(ModuleId)
    }

    /// Iterates the connection graph as
    /// `(source module, source port, destination module, destination port)`
    /// edges. Used by static pre-flight analysis for reachability checks.
    pub fn connection_edges(
        &self,
    ) -> impl Iterator<Item = (ModuleId, PortId, ModuleId, PortId)> + '_ {
        self.connections
            .iter()
            .map(|(&(src, src_port), conn)| (src, src_port, conn.dst, conn.dst_port))
    }

    // ------------------------------------------------------------------
    // External event injection (used by the CASTANET coupling)
    // ------------------------------------------------------------------

    /// Schedules a packet arrival on `module`/`port` at absolute time `at`.
    ///
    /// This is the hook the CASTANET interface process uses to inject
    /// responses coming back from the coupled simulator into the network
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::ScheduleInPast`] if `at` precedes current time.
    pub fn inject_packet(
        &mut self,
        module: ModuleId,
        port: PortId,
        packet: Packet,
        at: SimTime,
    ) -> Result<EventId, NetsimError> {
        let mut packet = packet;
        packet.stamp_creation(self.events.now());
        self.events
            .schedule(
                at,
                EventKind::Arrival {
                    module,
                    port,
                    packet,
                },
            )
            .map_err(NetsimError::from)
    }

    /// Schedules an interrupt for `module` at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::ScheduleInPast`] if `at` precedes current time.
    pub fn inject_interrupt(
        &mut self,
        module: ModuleId,
        code: u32,
        at: SimTime,
    ) -> Result<EventId, NetsimError> {
        self.events
            .schedule(at, EventKind::Interrupt { module, code })
            .map_err(NetsimError::from)
    }

    /// Schedules the simulation to stop at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::ScheduleInPast`] if `at` precedes current time.
    pub fn schedule_stop(&mut self, at: SimTime) -> Result<EventId, NetsimError> {
        self.events
            .schedule(at, EventKind::Stop)
            .map_err(NetsimError::from)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Runs `init` on every module that has not been initialized yet.
    /// Called automatically by the run methods.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.modules.len() {
            self.dispatch(ModuleId(idx), Dispatch::Init);
        }
    }

    /// Time stamp of the earliest pending event, if any. Exposed for the
    /// conservative synchronization protocol, which must know how far it may
    /// safely advance.
    #[must_use]
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.ensure_started();
        self.events.next_time()
    }

    /// Executes a single event. Returns `false` when no event was pending.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        if self.stop_requested {
            return false;
        }
        let Some(ev) = self.events.pop() else {
            return false;
        };
        self.obs_events.inc();
        self.obs_pending.set(self.events.len() as u64);
        match ev.kind {
            EventKind::Arrival {
                module,
                port,
                packet,
            } => {
                self.dispatch(module, Dispatch::Packet(port, packet));
            }
            EventKind::Interrupt { module, code } => {
                self.dispatch(module, Dispatch::Interrupt(code));
            }
            EventKind::Stop => {
                self.stop_requested = true;
            }
        }
        true
    }

    /// Runs until the event list drains or a stop is requested.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice, but returns `Result` so model errors
    /// surfaced by future hooks keep the same signature.
    pub fn run(&mut self) -> Result<StopReason, NetsimError> {
        loop {
            if self.stop_requested {
                return Ok(StopReason::StopRequested);
            }
            if !self.step() {
                return Ok(if self.stop_requested {
                    StopReason::StopRequested
                } else {
                    StopReason::EventListEmpty
                });
            }
        }
    }

    /// Runs events with time stamps **strictly before** `horizon`, leaving
    /// later events pending. This is the primitive the conservative coupling
    /// uses: "the VHDL simulator is allowed to process all events with a time
    /// stamp smaller than `t_k`, but not equal".
    ///
    /// # Errors
    ///
    /// See [`Kernel::run`].
    pub fn run_until(&mut self, horizon: SimTime) -> Result<StopReason, NetsimError> {
        self.ensure_started();
        loop {
            if self.stop_requested {
                return Ok(StopReason::StopRequested);
            }
            match self.events.next_time() {
                None => return Ok(StopReason::EventListEmpty),
                Some(t) if t >= horizon => return Ok(StopReason::HorizonReached),
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs one grant window: executes all events **strictly before**
    /// `horizon` and reports how many ran. This is the originator-side
    /// entry point of the parallel coupled executor — after the call, the
    /// originator may promise `horizon` to the follower as a timing-window
    /// grant, because every event that could have produced stimulus before
    /// it has been executed.
    ///
    /// # Errors
    ///
    /// See [`Kernel::run`].
    pub fn run_grant_window(&mut self, horizon: SimTime) -> Result<u64, NetsimError> {
        self.ensure_started();
        let mut executed = 0u64;
        loop {
            if self.stop_requested {
                return Ok(executed);
            }
            match self.events.next_time() {
                None => return Ok(executed),
                Some(t) if t >= horizon => return Ok(executed),
                Some(_) => {
                    self.step();
                    executed += 1;
                }
            }
        }
    }

    /// Runs at most `budget` events.
    ///
    /// # Errors
    ///
    /// See [`Kernel::run`].
    pub fn run_events(&mut self, budget: u64) -> Result<StopReason, NetsimError> {
        self.ensure_started();
        for _ in 0..budget {
            if self.stop_requested {
                return Ok(StopReason::StopRequested);
            }
            if !self.step() {
                return Ok(StopReason::EventListEmpty);
            }
        }
        Ok(StopReason::BudgetExhausted)
    }

    fn dispatch(&mut self, module: ModuleId, what: Dispatch) {
        let slot = &mut self.modules[module.0];
        slot.events_handled += 1;
        let mut process = slot
            .process
            .take()
            .expect("process re-entered: a module dispatched an event to itself synchronously");
        {
            let mut ctx = Ctx {
                module,
                events: &mut self.events,
                connections: &self.connections,
                rng: &mut self.rng,
                stats: &mut self.stats,
                stop_requested: &mut self.stop_requested,
            };
            match what {
                Dispatch::Init => process.init(&mut ctx),
                Dispatch::Packet(port, packet) => process.on_packet(&mut ctx, port, packet),
                Dispatch::Interrupt(code) => process.on_interrupt(&mut ctx, code),
            }
        }
        self.modules[module.0].process = Some(process);
    }
}

enum Dispatch {
    Init,
    Packet(PortId, Packet),
    Interrupt(u32),
}

/// The execution context handed to process code — OPNET's "kernel procedures".
///
/// Through the context a process reads the clock, sends packets out of its
/// ports, schedules self-interrupts, draws random numbers and records
/// statistics.
pub struct Ctx<'a> {
    module: ModuleId,
    events: &'a mut EventList,
    connections: &'a HashMap<(ModuleId, PortId), Connection>,
    rng: &'a mut SmallRng,
    stats: &'a mut StatsRegistry,
    stop_requested: &'a mut bool,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("module", &self.module)
            .field("now", &self.events.now())
            .finish()
    }
}

impl Ctx<'_> {
    /// The module this context belongs to.
    #[must_use]
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Sends `packet` out of `port` immediately. Arrival time at the peer is
    /// `now` for streams, or `now + serialization + propagation` for links.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::PortNotConnected`] when `port` has no
    /// connection.
    pub fn send(&mut self, port: PortId, packet: Packet) -> Result<(), NetsimError> {
        self.send_delayed(port, packet, SimDuration::ZERO)
    }

    /// Sends `packet` out of `port` after an additional local delay.
    ///
    /// # Errors
    ///
    /// Returns [`NetsimError::PortNotConnected`] when `port` has no
    /// connection.
    pub fn send_delayed(
        &mut self,
        port: PortId,
        mut packet: Packet,
        delay: SimDuration,
    ) -> Result<(), NetsimError> {
        let conn =
            self.connections
                .get(&(self.module, port))
                .ok_or(NetsimError::PortNotConnected {
                    module: self.module,
                    port,
                })?;
        packet.stamp_creation(self.events.now());
        let link_delay = conn
            .link
            .as_ref()
            .map_or(SimDuration::ZERO, |l| l.total_delay(packet.bit_len()));
        let at = self.events.now() + delay + link_delay;
        self.events
            .schedule(
                at,
                EventKind::Arrival {
                    module: conn.dst,
                    port: conn.dst_port,
                    packet,
                },
            )
            .map_err(NetsimError::from)?;
        Ok(())
    }

    /// Schedules a self-interrupt with `code` after `delay`.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors (cannot occur for non-negative delays).
    pub fn schedule_self(&mut self, delay: SimDuration, code: u32) -> Result<EventId, NetsimError> {
        let at = self.events.now() + delay;
        self.events
            .schedule(
                at,
                EventKind::Interrupt {
                    module: self.module,
                    code,
                },
            )
            .map_err(NetsimError::from)
    }

    /// Cancels a previously scheduled event (lazy; executing an event that
    /// was already popped is unaffected).
    pub fn cancel(&mut self, id: EventId) {
        self.events.cancel(id);
    }

    /// Asks the kernel to stop after the current event completes.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }

    /// The kernel's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The statistics registry, for recording probe samples.
    pub fn stats(&mut self) -> &mut StatsRegistry {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;

    /// Forwards every packet out of port 0 after a fixed processing delay.
    struct Forwarder {
        delay: SimDuration,
    }
    impl Process for Forwarder {
        fn on_packet(&mut self, ctx: &mut Ctx, _port: PortId, packet: Packet) {
            ctx.send_delayed(PortId(0), packet, self.delay).unwrap();
        }
    }

    /// Records packet arrival times into a probe.
    struct Sink {
        probe: ProbeId,
        received: u64,
    }
    impl Process for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx, _port: PortId, _packet: Packet) {
            self.received += 1;
            let t = ctx.now().as_secs_f64();
            ctx.stats().record(self.probe, t);
        }
    }

    /// Emits `count` packets spaced `gap` apart out of port 0.
    struct Source {
        count: u32,
        gap: SimDuration,
    }
    impl Process for Source {
        fn init(&mut self, ctx: &mut Ctx) {
            ctx.schedule_self(self.gap, 0).unwrap();
        }
        fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {}
        fn on_interrupt(&mut self, ctx: &mut Ctx, _code: u32) {
            ctx.send(PortId(0), Packet::new(0, 424)).unwrap();
            self.count -= 1;
            if self.count > 0 {
                ctx.schedule_self(self.gap, 0).unwrap();
            }
        }
    }

    fn three_module_pipeline(link: Option<LinkParams>) -> (Kernel, ProbeId) {
        let mut k = Kernel::new(1);
        let n = k.add_node("pipeline");
        let probe = k.add_probe("arrivals");
        let src = k.add_module(
            n,
            "src",
            Box::new(Source {
                count: 5,
                gap: SimDuration::from_ns(100),
            }),
        );
        let fwd = k.add_module(
            n,
            "fwd",
            Box::new(Forwarder {
                delay: SimDuration::from_ns(10),
            }),
        );
        let sink = k.add_module(n, "sink", Box::new(Sink { probe, received: 0 }));
        match link {
            Some(l) => k.connect_link(src, PortId(0), fwd, PortId(0), l).unwrap(),
            None => k.connect_stream(src, PortId(0), fwd, PortId(0)).unwrap(),
        }
        k.connect_stream(fwd, PortId(0), sink, PortId(0)).unwrap();
        (k, probe)
    }

    #[test]
    fn pipeline_delivers_all_packets() {
        let (mut k, probe) = three_module_pipeline(None);
        let reason = k.run().unwrap();
        assert_eq!(reason, StopReason::EventListEmpty);
        assert_eq!(k.stats().summary(probe).count, 5);
        // Last packet: sent at 500 ns, forwarded +10 ns.
        assert_eq!(k.now(), SimTime::from_ns(510));
    }

    #[test]
    fn link_adds_serialization_and_propagation_delay() {
        // 424 bits at 424 Mbit/s = 1 us serialization; +2 us propagation.
        let link = LinkParams::new(424_000_000, SimDuration::from_us(2));
        let (mut k, probe) = three_module_pipeline(Some(link));
        k.run().unwrap();
        let s = k.stats().summary(probe);
        assert_eq!(s.count, 5);
        // First packet: emitted at 100 ns, +1 us ser + 2 us prop + 10 ns fwd.
        let first_arrival =
            SimTime::from_ns(100) + SimDuration::from_us(3) + SimDuration::from_ns(10);
        assert!((s.min - first_arrival.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn run_until_stops_before_horizon_events() {
        let (mut k, _probe) = three_module_pipeline(None);
        let reason = k.run_until(SimTime::from_ns(250)).unwrap();
        assert_eq!(reason, StopReason::HorizonReached);
        // Events at exactly or after 250 ns must still be pending.
        assert!(k.now() < SimTime::from_ns(250));
        assert!(k.next_event_time().unwrap() >= SimTime::from_ns(250));
    }

    #[test]
    fn run_events_respects_budget() {
        let (mut k, _probe) = three_module_pipeline(None);
        let reason = k.run_events(3).unwrap();
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert_eq!(k.events_executed(), 3);
    }

    #[test]
    fn scheduled_stop_halts_run() {
        let (mut k, probe) = three_module_pipeline(None);
        k.schedule_stop(SimTime::from_ns(250)).unwrap();
        let reason = k.run().unwrap();
        assert_eq!(reason, StopReason::StopRequested);
        assert_eq!(k.now(), SimTime::from_ns(250));
        // Only the first two packets (110 ns, 210 ns) arrived.
        assert_eq!(k.stats().summary(probe).count, 2);
    }

    #[test]
    fn unconnected_port_send_is_an_error() {
        struct Lonely;
        impl Process for Lonely {
            fn init(&mut self, ctx: &mut Ctx) {
                let err = ctx.send(PortId(0), Packet::new(0, 8)).unwrap_err();
                assert!(matches!(err, NetsimError::PortNotConnected { .. }));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {}
        }
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        k.add_module(n, "lonely", Box::new(Lonely));
        k.run().unwrap();
    }

    #[test]
    fn double_connect_rejected() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        struct Idle;
        impl Process for Idle {
            fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {}
        }
        let a = k.add_module(n, "a", Box::new(Idle));
        let b = k.add_module(n, "b", Box::new(Idle));
        k.connect_stream(a, PortId(0), b, PortId(0)).unwrap();
        let err = k.connect_stream(a, PortId(0), b, PortId(1)).unwrap_err();
        assert!(matches!(err, NetsimError::PortAlreadyConnected { .. }));
    }

    #[test]
    fn topology_freezes_after_start() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        struct Idle;
        impl Process for Idle {
            fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {}
        }
        let a = k.add_module(n, "a", Box::new(Idle));
        let b = k.add_module(n, "b", Box::new(Idle));
        k.step(); // triggers init, freezing topology
        let err = k.connect_stream(a, PortId(0), b, PortId(0)).unwrap_err();
        assert!(matches!(err, NetsimError::TopologyFrozen));
    }

    #[test]
    fn injected_packets_reach_modules() {
        struct CountSink {
            probe: ProbeId,
        }
        impl Process for CountSink {
            fn on_packet(&mut self, ctx: &mut Ctx, _port: PortId, _packet: Packet) {
                ctx.stats().record(self.probe, 1.0);
            }
        }
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        let probe = k.add_probe("in");
        let m = k.add_module(n, "sink", Box::new(CountSink { probe }));
        k.inject_packet(m, PortId(0), Packet::new(0, 8), SimTime::from_ns(50))
            .unwrap();
        k.inject_interrupt(m, 9, SimTime::from_ns(60)).unwrap();
        k.run().unwrap();
        assert_eq!(k.stats().summary(probe).count, 1);
        assert_eq!(k.module_event_count(m), 3); // init + packet + interrupt
    }

    #[test]
    fn telemetry_counts_executed_events() {
        let (mut k, _probe) = three_module_pipeline(None);
        let tel = Telemetry::enabled();
        k.set_telemetry(&tel);
        k.run().unwrap();
        let snap = tel.metrics_snapshot();
        assert_eq!(
            snap.counter("originator.net_events"),
            Some(k.events_executed())
        );
        assert_eq!(snap.gauge("originator.pending_events"), Some(0));
    }

    #[test]
    fn names_and_node_membership() {
        let mut k = Kernel::new(0);
        let n = k.add_node("switch");
        struct Idle;
        impl Process for Idle {
            fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {}
        }
        let a = k.add_module(n, "port0", Box::new(Idle));
        assert_eq!(k.module_name(a), "port0");
        assert_eq!(k.node_name(n), "switch");
        assert_eq!(k.node_modules(n), &[a]);
        assert_eq!(k.module_node(a), n);
    }
}
