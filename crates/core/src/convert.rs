//! Abstraction interfaces: mapping abstract data types to bit-level signals.
//!
//! §3.2: in the network simulator "processes communicate through the
//! exchange of abstracted information described for example as
//! C-structures … communication is instantaneous", while at the
//! implementation level interfaces have structure (signals, pins) and
//! timing (clock cycles, handshakes). "The user has to specify how
//! high-level protocol data units and abstract data types have to be mapped
//! to bit-level signals using appropriate conversion functions that are
//! provided in the CASTANET library." This module is that library for the
//! ATM domain:
//!
//! * [`cell_to_byte_ops`] — Fig. 4's mapping: one ATM cell becomes 53
//!   byte-wide bus operations plus the generated `cellsync` control signal;
//! * [`ByteStreamAssembler`] — the inverse: re-assembling cells from a
//!   byte-serial stream (what the co-simulation entity applies to DUT
//!   outputs);
//! * [`time_scale_ratio`] — the granularity gap between a cell-time step in
//!   the network simulator and a clock step in the HDL simulator
//!   ("a ratio of ≈1:400 for a simulation time step in OPNET and VSS").

use crate::error::CastanetError;
use castanet_atm::addr::HeaderFormat;
use castanet_atm::cell::{AtmCell, CELL_OCTETS};
use castanet_netsim::time::SimDuration;

/// One byte-wide bus operation: what the `atmdata`/`cellsync` port pair
/// carries during one clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteOp {
    /// Clock-cycle offset from the start of the transfer.
    pub cycle: u64,
    /// The octet on `atmdata`.
    pub data: u8,
    /// The `cellsync` control signal (high on the first octet of a cell).
    pub sync: bool,
}

/// Maps an ATM cell onto its 53 byte-wide bus operations (Fig. 4): the
/// complete cell "takes 53 clock cycles within the hardware simulator to
/// read", with `cellsync` generated for the first octet.
///
/// # Errors
///
/// Propagates header-encoding errors from the cell.
pub fn cell_to_byte_ops(
    cell: &AtmCell,
    format: HeaderFormat,
) -> Result<Vec<ByteOp>, CastanetError> {
    let mut ops = Vec::with_capacity(53);
    cell_to_byte_ops_into(cell, format, &mut ops)?;
    Ok(ops)
}

/// Allocation-free form of [`cell_to_byte_ops`]: clears `out` and fills
/// it with the 53 bus operations, reusing its capacity. The co-simulation
/// entity calls this once per delivered cell on the hot path.
///
/// # Errors
///
/// Propagates header-encoding errors from the cell; `out` is left empty
/// in that case.
pub fn cell_to_byte_ops_into(
    cell: &AtmCell,
    format: HeaderFormat,
    out: &mut Vec<ByteOp>,
) -> Result<(), CastanetError> {
    out.clear();
    let wire = cell.encode(format)?;
    out.extend(wire.iter().enumerate().map(|(i, &data)| ByteOp {
        cycle: i as u64,
        data,
        sync: i == 0,
    }));
    Ok(())
}

/// Re-assembles cells from a byte-serial stream with `cellsync` markers —
/// the receive-side conversion the co-simulation entity performs on DUT
/// responses before sending them back to the network simulator.
///
/// # Examples
///
/// ```
/// use castanet::convert::{cell_to_byte_ops, ByteStreamAssembler};
/// use castanet_atm::addr::{HeaderFormat, VpiVci};
/// use castanet_atm::cell::AtmCell;
///
/// let cell = AtmCell::user_data(VpiVci::uni(1, 42)?, [7; 48]);
/// let ops = cell_to_byte_ops(&cell, HeaderFormat::Uni)?;
/// let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
/// let mut out = None;
/// for op in ops {
///     if let Some(c) = rx.push(op.data, op.sync)? {
///         out = Some(c);
///     }
/// }
/// assert_eq!(out, Some(cell));
/// # Ok::<(), castanet::error::CastanetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ByteStreamAssembler {
    format: HeaderFormat,
    buffer: [u8; CELL_OCTETS],
    index: usize,
    in_cell: bool,
    assembled: u64,
    hec_rejects: u64,
}

impl ByteStreamAssembler {
    /// Creates an assembler for the given header format.
    #[must_use]
    pub fn new(format: HeaderFormat) -> Self {
        ByteStreamAssembler {
            format,
            buffer: [0; CELL_OCTETS],
            index: 0,
            in_cell: false,
            assembled: 0,
            hec_rejects: 0,
        }
    }

    /// Feeds one octet. Returns a completed cell on the 53rd octet.
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Atm`] when a completed cell fails its HEC
    /// check (the byte stream was corrupted between DUT and entity).
    pub fn push(&mut self, data: u8, sync: bool) -> Result<Option<AtmCell>, CastanetError> {
        if sync {
            self.index = 0;
            self.in_cell = true;
        }
        if !self.in_cell {
            return Ok(None);
        }
        self.buffer[self.index] = data;
        self.index += 1;
        if self.index < CELL_OCTETS {
            return Ok(None);
        }
        self.index = 0;
        self.in_cell = false;
        match AtmCell::decode(&self.buffer, self.format) {
            Ok(cell) => {
                self.assembled += 1;
                Ok(Some(cell))
            }
            Err(e) => {
                self.hec_rejects += 1;
                Err(CastanetError::Atm(e))
            }
        }
    }

    /// Octets of the cell currently in flight.
    #[must_use]
    pub fn pending(&self) -> usize {
        if self.in_cell {
            self.index
        } else {
            0
        }
    }

    /// Cells assembled so far.
    #[must_use]
    pub fn assembled(&self) -> u64 {
        self.assembled
    }

    /// Cells rejected for header corruption.
    #[must_use]
    pub fn rejects(&self) -> u64 {
        self.hec_rejects
    }
}

/// The granularity gap of §3.2: how many HDL clock steps fit in one
/// network-simulator cell-time step. With the paper's clocks this is the
/// "ratio of ≈1:400".
///
/// # Panics
///
/// Panics if `clock_period` is zero.
#[must_use]
pub fn time_scale_ratio(cell_time: SimDuration, clock_period: SimDuration) -> f64 {
    assert!(!clock_period.is_zero(), "clock period must be non-zero");
    cell_time.as_secs_f64() / clock_period.as_secs_f64()
}

/// Packs a slice of octets into 64-bit words, little-endian within each
/// word — a width adapter for word-oriented DUT ports.
#[must_use]
pub fn pack_words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|chunk| {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= u64::from(b) << (8 * i);
            }
            w
        })
        .collect()
}

/// Inverse of [`pack_words`], producing exactly `len` octets.
///
/// # Panics
///
/// Panics when `len` exceeds `words.len() * 8`.
#[must_use]
pub fn unpack_words(words: &[u64], len: usize) -> Vec<u8> {
    assert!(len <= words.len() * 8, "unpack length exceeds word supply");
    (0..len)
        .map(|i| (words[i / 8] >> (8 * (i % 8))) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;

    fn cell(vci: u16) -> AtmCell {
        AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [vci as u8; 48])
    }

    #[test]
    fn cell_maps_to_53_cycles_with_sync_on_first() {
        let ops = cell_to_byte_ops(&cell(40), HeaderFormat::Uni).unwrap();
        assert_eq!(ops.len(), 53);
        assert!(ops[0].sync);
        assert!(ops[1..].iter().all(|o| !o.sync));
        assert_eq!(ops.last().unwrap().cycle, 52);
    }

    #[test]
    fn assembler_roundtrips_back_to_back_cells() {
        let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
        let mut got = Vec::new();
        for vci in [40u16, 41, 42] {
            for op in cell_to_byte_ops(&cell(vci), HeaderFormat::Uni).unwrap() {
                if let Some(c) = rx.push(op.data, op.sync).unwrap() {
                    got.push(c);
                }
            }
        }
        assert_eq!(got, vec![cell(40), cell(41), cell(42)]);
        assert_eq!(rx.assembled(), 3);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn assembler_ignores_bytes_before_first_sync() {
        let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
        for _ in 0..10 {
            assert!(rx.push(0x6A, false).unwrap().is_none());
        }
        assert_eq!(rx.pending(), 0);
        let ops = cell_to_byte_ops(&cell(40), HeaderFormat::Uni).unwrap();
        let mut out = None;
        for op in ops {
            if let Some(c) = rx.push(op.data, op.sync).unwrap() {
                out = Some(c);
            }
        }
        assert_eq!(out, Some(cell(40)));
    }

    #[test]
    fn corrupted_stream_is_rejected() {
        let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
        let ops = cell_to_byte_ops(&cell(40), HeaderFormat::Uni).unwrap();
        let mut result = Ok(None);
        for (i, op) in ops.iter().enumerate() {
            let data = if i == 2 { op.data ^ 0xFF } else { op.data };
            result = rx.push(data, op.sync);
        }
        assert!(result.is_err());
        assert_eq!(rx.rejects(), 1);
        // The assembler recovers on the next cell.
        let mut out = None;
        for op in cell_to_byte_ops(&cell(50), HeaderFormat::Uni).unwrap() {
            if let Some(c) = rx.push(op.data, op.sync).unwrap() {
                out = Some(c);
            }
        }
        assert_eq!(out, Some(cell(50)));
    }

    #[test]
    fn resync_mid_cell_restarts_assembly() {
        let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
        let ops = cell_to_byte_ops(&cell(40), HeaderFormat::Uni).unwrap();
        for op in ops.iter().take(20) {
            rx.push(op.data, op.sync).unwrap();
        }
        assert_eq!(rx.pending(), 20);
        let mut out = None;
        for op in &ops {
            if let Some(c) = rx.push(op.data, op.sync).unwrap() {
                out = Some(c);
            }
        }
        assert_eq!(out, Some(cell(40)));
        assert_eq!(rx.assembled(), 1);
    }

    #[test]
    fn time_scale_ratio_matches_paper_magnitude() {
        // 155 Mbit/s cell time ≈ 2.726 us vs a 7 ns VHDL-era clock
        // ≈ 1:390 — the paper's "ratio of 1:400".
        let ratio = time_scale_ratio(SimDuration::from_ns(2726), SimDuration::from_ns(7));
        assert!(ratio > 380.0 && ratio < 400.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_clock_period_panics() {
        let _ = time_scale_ratio(SimDuration::from_ns(1), SimDuration::ZERO);
    }

    #[test]
    fn word_packing_roundtrip() {
        let bytes: Vec<u8> = (0..53).collect();
        let words = pack_words(&bytes);
        assert_eq!(words.len(), 7);
        assert_eq!(unpack_words(&words, 53), bytes);
        assert_eq!(pack_words(&[]).len(), 0);
        assert_eq!(unpack_words(&[0x0201], 2), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds word supply")]
    fn unpack_over_supply_panics() {
        let _ = unpack_words(&[0], 9);
    }
}
