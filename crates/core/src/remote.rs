//! The two-process deployment of Fig. 2: the follower behind real IPC.
//!
//! In the original CASTANET, OPNET and the VHDL simulator are separate
//! UNIX processes; the interface process talks to the co-simulation entity
//! over standard IPC. This module reproduces that split:
//! [`RemoteFollower`] is a [`CoupledSimulator`] whose entire implementation
//! is a message protocol over any [`MessageTransport`], and
//! [`FollowerServer`] runs the *actual* follower (an RTL simulation, a
//! cycle engine, a board session) on the other end — another thread or
//! another process.
//!
//! ## Protocol
//!
//! All frames are ordinary [`Message`]s; control frames use the reserved
//! type [`CTRL_TYPE`] with the operation in `port` and the argument in a
//! `Control` payload:
//!
//! | frame | direction | meaning |
//! |---|---|---|
//! | data message | client → server | stimulus to deliver |
//! | `ADVANCE(horizon_ps)` | client → server | run until `horizon` (or first response) |
//! | data message | server → client | a response produced during the advance |
//! | `DONE(now_ps)` | server → client | the advance finished; follower time attached |
//! | `ERROR(code)` | server → client | the advance or a delivery failed |
//! | `SHUTDOWN(0)` | client → server | stop serving |

use crate::coupling::CoupledSimulator;
use crate::error::CastanetError;
use crate::ipc::MessageTransport;
use crate::message::{Message, MessagePayload, MessageTypeId};
use castanet_netsim::time::SimTime;

/// Reserved message type for protocol control frames.
pub const CTRL_TYPE: MessageTypeId = MessageTypeId(u32::MAX);

/// Control operations (carried in the `port` field of a control frame).
pub mod op {
    /// Client asks the server to advance to the horizon in the payload.
    pub const ADVANCE: usize = 1;
    /// Server reports an advance complete; payload carries its local time.
    pub const DONE: usize = 2;
    /// Server reports a failure; payload carries an error code.
    pub const ERROR: usize = 3;
    /// Client asks the server to stop serving.
    pub const SHUTDOWN: usize = 4;
}

fn ctrl(op_code: usize, value: u64) -> Message {
    Message {
        stamp: SimTime::ZERO,
        type_id: CTRL_TYPE,
        port: op_code,
        payload: MessagePayload::Control(value),
    }
}

/// The client side: a follower whose body lives across a transport.
pub struct RemoteFollower<T: MessageTransport> {
    transport: T,
    now: SimTime,
}

impl<T: MessageTransport> std::fmt::Debug for RemoteFollower<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteFollower")
            .field("now", &self.now)
            .finish()
    }
}

impl<T: MessageTransport> RemoteFollower<T> {
    /// Wraps a connected transport.
    #[must_use]
    pub fn new(transport: T) -> Self {
        RemoteFollower {
            transport,
            now: SimTime::ZERO,
        }
    }

    /// Asks the server to shut down and returns the transport.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn shutdown(mut self) -> Result<T, CastanetError> {
        self.transport.send(&ctrl(op::SHUTDOWN, 0))?;
        Ok(self.transport)
    }
}

impl<T: MessageTransport> CoupledSimulator for RemoteFollower<T> {
    fn deliver(&mut self, msg: Message) -> Result<(), CastanetError> {
        if msg.type_id == CTRL_TYPE {
            return Err(CastanetError::Codec(
                "stimulus must not use the reserved control type".to_string(),
            ));
        }
        self.transport.send(&msg)
    }

    fn advance_until(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        self.transport
            .send(&ctrl(op::ADVANCE, horizon.as_picos()))?;
        let mut responses = Vec::new();
        loop {
            let msg = self.transport.recv()?;
            if msg.type_id == CTRL_TYPE {
                match msg.port {
                    op::DONE => {
                        if let MessagePayload::Control(now_ps) = msg.payload {
                            self.now = SimTime::from_picos(now_ps);
                        }
                        return Ok(responses);
                    }
                    op::ERROR => {
                        return Err(CastanetError::Transport(format!(
                            "remote follower reported error frame {msg}"
                        )));
                    }
                    other => {
                        return Err(CastanetError::Codec(format!(
                            "unexpected control op {other} during advance"
                        )));
                    }
                }
            }
            responses.push(msg);
        }
    }

    fn now(&self) -> SimTime {
        self.now
    }
}

/// The server side: pumps protocol frames into a real follower.
pub struct FollowerServer<T: MessageTransport, S: CoupledSimulator> {
    transport: T,
    follower: S,
    advances: u64,
    deliveries: u64,
}

impl<T: MessageTransport, S: CoupledSimulator> std::fmt::Debug for FollowerServer<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FollowerServer")
            .field("advances", &self.advances)
            .field("deliveries", &self.deliveries)
            .finish()
    }
}

impl<T: MessageTransport, S: CoupledSimulator> FollowerServer<T, S> {
    /// Pairs a transport with the follower it serves.
    #[must_use]
    pub fn new(transport: T, follower: S) -> Self {
        FollowerServer {
            transport,
            follower,
            advances: 0,
            deliveries: 0,
        }
    }

    /// Serves until a shutdown frame (returning the follower) or a
    /// transport failure.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; follower errors are reported to the
    /// client as `ERROR` frames and then returned here.
    pub fn serve(mut self) -> Result<S, CastanetError> {
        loop {
            let msg = self.transport.recv()?;
            if msg.type_id == CTRL_TYPE {
                match msg.port {
                    op::SHUTDOWN => return Ok(self.follower),
                    op::ADVANCE => {
                        let MessagePayload::Control(horizon_ps) = msg.payload else {
                            self.transport.send(&ctrl(op::ERROR, 1))?;
                            return Err(CastanetError::Codec(
                                "advance frame without horizon".to_string(),
                            ));
                        };
                        self.advances += 1;
                        match self.follower.advance_until(SimTime::from_picos(horizon_ps)) {
                            Ok(responses) => {
                                for r in responses {
                                    self.transport.send(&r)?;
                                }
                                self.transport
                                    .send(&ctrl(op::DONE, self.follower.now().as_picos()))?;
                            }
                            Err(e) => {
                                self.transport.send(&ctrl(op::ERROR, 2))?;
                                return Err(e);
                            }
                        }
                    }
                    other => {
                        self.transport.send(&ctrl(op::ERROR, 3))?;
                        return Err(CastanetError::Codec(format!(
                            "unexpected control op {other}"
                        )));
                    }
                }
            } else {
                self.deliveries += 1;
                if let Err(e) = self.follower.deliver(msg) {
                    self.transport.send(&ctrl(op::ERROR, 4))?;
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
    use crate::ipc::{in_process_pair, UnixSocketTransport};
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;
    use castanet_netsim::time::SimDuration;
    use castanet_rtl::cycle::CycleSim;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    fn local_follower() -> CycleCosim {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 32,
            table_capacity: 8,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let sim = CycleSim::new(Box::new(switch));
        let mut f = CycleCosim::new(
            sim,
            SimDuration::from_ns(20),
            MessageTypeId(1),
            HeaderFormat::Uni,
        );
        f.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        f.add_egress(EgressIndices {
            data: 3,
            sync: 4,
            valid: 5,
        });
        f
    }

    fn cell(vci: u16) -> AtmCell {
        AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [9; 48])
    }

    #[test]
    fn remote_follower_over_in_process_channel() {
        let (client_t, server_t) = in_process_pair();
        let server = FollowerServer::new(server_t, local_follower());
        let handle = std::thread::spawn(move || server.serve());

        let mut remote = RemoteFollower::new(client_t);
        remote
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40)))
            .unwrap();
        let responses = remote.advance_until(SimTime::from_us(10)).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(
            responses[0].as_cell().unwrap().id(),
            VpiVci::uni(7, 70).unwrap()
        );
        assert!(remote.now() > SimTime::ZERO);

        remote.shutdown().unwrap();
        let follower = handle.join().unwrap().unwrap();
        assert!(
            follower.clocks_evaluated() >= 100,
            "the server-side follower really ran the transfer (got {})",
            follower.clocks_evaluated()
        );
    }

    #[test]
    fn remote_follower_over_unix_sockets() {
        let (client_t, server_t) = UnixSocketTransport::pair().unwrap();
        let server = FollowerServer::new(server_t, local_follower());
        let handle = std::thread::spawn(move || server.serve());

        let mut remote = RemoteFollower::new(client_t);
        for k in 0..3u64 {
            remote
                .deliver(Message::cell(
                    SimTime::from_us(5 * k),
                    MessageTypeId(0),
                    0,
                    cell(40),
                ))
                .unwrap();
        }
        let mut all = Vec::new();
        loop {
            let r = remote.advance_until(SimTime::from_us(60)).unwrap();
            if r.is_empty() {
                break;
            }
            all.extend(r);
        }
        assert_eq!(all.len(), 3);
        remote.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn empty_advance_returns_done_with_time() {
        let (client_t, server_t) = in_process_pair();
        let server = FollowerServer::new(server_t, local_follower());
        let handle = std::thread::spawn(move || server.serve());
        let mut remote = RemoteFollower::new(client_t);
        let r = remote.advance_until(SimTime::from_us(100)).unwrap();
        assert!(r.is_empty());
        // Idle skip on the far side still reports advanced time.
        assert!(remote.now() >= SimTime::from_us(99));
        remote.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn control_type_is_rejected_as_stimulus() {
        let (client_t, _server_t) = in_process_pair();
        let mut remote = RemoteFollower::new(client_t);
        let bogus = Message {
            stamp: SimTime::ZERO,
            type_id: CTRL_TYPE,
            port: 0,
            payload: MessagePayload::TimeOnly,
        };
        assert!(matches!(
            remote.deliver(bogus),
            Err(CastanetError::Codec(_))
        ));
    }

    #[test]
    fn delivery_error_on_the_server_side_propagates() {
        let (client_t, server_t) = in_process_pair();
        let server = FollowerServer::new(server_t, local_follower());
        let handle = std::thread::spawn(move || server.serve());
        let mut remote = RemoteFollower::new(client_t);
        // Unknown port: the server's follower rejects the delivery; the
        // next advance surfaces the error frame.
        remote
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 99, cell(40)))
            .unwrap();
        let err = remote.advance_until(SimTime::from_us(1)).unwrap_err();
        assert!(matches!(err, CastanetError::Transport(_)));
        // The server returned with the follower error.
        assert!(handle.join().unwrap().is_err());
    }
}
