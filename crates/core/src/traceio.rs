//! Recording and replaying test vectors.
//!
//! "Of course, it is possible to run the simulation in the background while
//! dumping the output data into a file and to re-run previously generated
//! test vectors." (§3) — trace files decouple stimulus generation from DUT
//! execution: record a network simulation's cell stream once, replay it
//! against as many design revisions as needed.
//!
//! The format is line-oriented text (diff-able, versionable):
//!
//! ```text
//! # castanet-trace v1
//! S 10000000 0 <106 hex chars>    # stimulus: stamp_ps port cell
//! R 12345678 1 <106 hex chars>    # response: stamp_ps port cell
//! ```

use crate::error::CastanetError;
use crate::message::{Message, MessagePayload, MessageTypeId};
use castanet_atm::addr::HeaderFormat;
use castanet_atm::cell::{AtmCell, CELL_OCTETS};
use castanet_netsim::time::SimTime;
use std::io::{BufRead, Write};

/// Header line identifying the format.
pub const TRACE_HEADER: &str = "# castanet-trace v1";

/// Direction of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Toward the DUT.
    Stimulus,
    /// From the DUT.
    Response,
}

impl Direction {
    fn letter(self) -> char {
        match self {
            Direction::Stimulus => 'S',
            Direction::Response => 'R',
        }
    }
}

/// One recorded cell transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Stimulus or response.
    pub direction: Direction,
    /// Simulation time of the transfer.
    pub stamp: SimTime,
    /// Co-simulation port.
    pub port: usize,
    /// The cell.
    pub cell: AtmCell,
}

/// Streams records into any writer.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    format: HeaderFormat,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace, writing the header line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut out: W, format: HeaderFormat) -> Result<Self, CastanetError> {
        writeln!(out, "{TRACE_HEADER}")?;
        Ok(TraceWriter {
            out,
            format,
            records: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O and cell-encoding errors.
    pub fn write(&mut self, record: &TraceRecord) -> Result<(), CastanetError> {
        let wire = record.cell.encode(self.format)?;
        let mut hex = String::with_capacity(CELL_OCTETS * 2);
        for b in wire {
            use std::fmt::Write as _;
            let _ = write!(hex, "{b:02x}");
        }
        writeln!(
            self.out,
            "{} {} {} {}",
            record.direction.letter(),
            record.stamp.as_picos(),
            record.port,
            hex
        )?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finishes the trace, returning the writer.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn finish(mut self) -> Result<W, CastanetError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads a whole trace from any buffered reader.
///
/// # Errors
///
/// Returns [`CastanetError::Codec`] on format violations and propagates
/// I/O errors.
pub fn read_trace<R: BufRead>(
    reader: R,
    format: HeaderFormat,
) -> Result<Vec<TraceRecord>, CastanetError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CastanetError::Codec("empty trace".to_string()))?
        .map_err(CastanetError::from)?;
    if header.trim() != TRACE_HEADER {
        return Err(CastanetError::Codec(format!("bad trace header {header:?}")));
    }
    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(CastanetError::from)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| CastanetError::Codec(format!("line {}: {what}", lineno + 2));
        let dir = match parts.next() {
            Some("S") => Direction::Stimulus,
            Some("R") => Direction::Response,
            _ => return Err(err("expected S or R")),
        };
        let stamp = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .map(SimTime::from_picos)
            .ok_or_else(|| err("bad time stamp"))?;
        let port = parts
            .next()
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| err("bad port"))?;
        let hex = parts.next().ok_or_else(|| err("missing cell hex"))?;
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        if hex.len() != CELL_OCTETS * 2 {
            return Err(err("cell hex must be 106 characters"));
        }
        let mut wire = [0u8; CELL_OCTETS];
        for (i, byte) in wire.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                .map_err(|_| err("invalid hex digit"))?;
        }
        let cell = AtmCell::decode(&wire, format)?;
        out.push(TraceRecord {
            direction: dir,
            stamp,
            port,
            cell,
        });
    }
    Ok(out)
}

/// Converts the stimulus records of a trace into coupling messages for
/// replay, in time order.
#[must_use]
pub fn stimulus_messages(records: &[TraceRecord], type_id: MessageTypeId) -> Vec<Message> {
    let mut msgs: Vec<Message> = records
        .iter()
        .filter(|r| r.direction == Direction::Stimulus)
        .map(|r| Message {
            stamp: r.stamp,
            type_id,
            port: r.port,
            payload: MessagePayload::Cell(r.cell.clone()),
        })
        .collect();
    msgs.sort_by_key(|m| m.stamp);
    msgs
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;

    fn rec(dir: Direction, us: u64, port: usize, vci: u16) -> TraceRecord {
        TraceRecord {
            direction: dir,
            stamp: SimTime::from_us(us),
            port,
            cell: AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [vci as u8; 48]),
        }
    }

    fn roundtrip(records: &[TraceRecord]) -> Vec<TraceRecord> {
        let mut w = TraceWriter::new(Vec::new(), HeaderFormat::Uni).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        read_trace(std::io::Cursor::new(bytes), HeaderFormat::Uni).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let records = vec![
            rec(Direction::Stimulus, 10, 0, 40),
            rec(Direction::Response, 12, 1, 41),
            rec(Direction::Stimulus, 20, 3, 42),
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn empty_trace_roundtrip() {
        assert_eq!(roundtrip(&[]), vec![]);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let mut w = TraceWriter::new(Vec::new(), HeaderFormat::Uni).unwrap();
        w.write(&rec(Direction::Stimulus, 1, 0, 40)).unwrap();
        let body = String::from_utf8(w.finish().unwrap()).unwrap();
        let line = body.lines().nth(1).unwrap();
        let spliced = format!("{TRACE_HEADER}\n\n# comment\n{line}\n");
        let records = read_trace(std::io::Cursor::new(spliced), HeaderFormat::Uni).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_trace(std::io::Cursor::new("# wrong\n"), HeaderFormat::Uni).unwrap_err();
        assert!(matches!(err, CastanetError::Codec(_)));
    }

    #[test]
    fn malformed_lines_rejected_with_line_numbers() {
        for bad in [
            "X 1 0 aa".to_string(),
            "S notatime 0 aa".to_string(),
            "S 1 0 zz".to_string(),
            format!("S 1 0 {}", "aa".repeat(10)),
            format!("S 1 0 {} extra", "aa".repeat(53)),
        ] {
            let text = format!("{TRACE_HEADER}\n{bad}\n");
            let err = read_trace(std::io::Cursor::new(text), HeaderFormat::Uni).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 2"), "{bad:?} -> {msg}");
        }
    }

    #[test]
    fn corrupted_cell_hex_fails_hec() {
        let mut w = TraceWriter::new(Vec::new(), HeaderFormat::Uni).unwrap();
        w.write(&rec(Direction::Stimulus, 1, 0, 40)).unwrap();
        let mut body = String::from_utf8(w.finish().unwrap()).unwrap();
        // Flip a header nibble in the hex text.
        let idx = body.rfind(' ').unwrap() + 1;
        let replacement = if &body[idx..=idx] == "f" { "0" } else { "f" };
        body.replace_range(idx..=idx, replacement);
        let err = read_trace(std::io::Cursor::new(body), HeaderFormat::Uni).unwrap_err();
        assert!(matches!(err, CastanetError::Atm(_)));
    }

    #[test]
    fn stimulus_extraction_sorts_by_time() {
        let records = vec![
            rec(Direction::Stimulus, 30, 0, 42),
            rec(Direction::Response, 15, 0, 40),
            rec(Direction::Stimulus, 10, 1, 40),
        ];
        let msgs = stimulus_messages(&records, MessageTypeId(3));
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].stamp, SimTime::from_us(10));
        assert_eq!(msgs[0].port, 1);
        assert_eq!(msgs[1].stamp, SimTime::from_us(30));
        assert!(msgs.iter().all(|m| m.type_id == MessageTypeId(3)));
    }

    #[test]
    fn writer_counts_records() {
        let mut w = TraceWriter::new(Vec::new(), HeaderFormat::Uni).unwrap();
        assert_eq!(w.records(), 0);
        w.write(&rec(Direction::Stimulus, 1, 0, 40)).unwrap();
        w.write(&rec(Direction::Response, 2, 0, 40)).unwrap();
        assert_eq!(w.records(), 2);
    }
}
