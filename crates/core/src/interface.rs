//! The CASTANET interface process on the network-simulator side.
//!
//! "The coupling will be done by a special OPNET interface model that
//! steers either a VHDL simulation or the hardware test board with
//! test-patterns from the network simulation. The CASTANET interface
//! process in OPNET manages the proper initialization of the VHDL simulator
//! and the hardware test board and handles the message exchange." (§3)
//!
//! [`CastanetInterfaceProcess`] is a normal network-domain module: its
//! input ports `0..n` receive the cell streams the network model routes to
//! the device under test, and whatever the coupled simulator answers is
//! re-injected on reserved ports `RESPONSE_PORT_BASE..` and forwarded out
//! of the matching output ports back into the network model. Outgoing
//! messages accumulate in a shared outbox the [`crate::coupling::Coupling`]
//! drains after every executed network event.

use crate::message::{Message, MessageTypeId};
use castanet_atm::cell::AtmCell;
use castanet_atm::traffic::source::ATM_CELL_FORMAT;
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Ctx;
use castanet_netsim::packet::Packet;
use castanet_netsim::process::Process;
use std::sync::{Arc, Mutex};

/// Input ports at or above this index carry *responses* re-injected by the
/// coupling; port `RESPONSE_PORT_BASE + k` forwards to output port `k`.
pub const RESPONSE_PORT_BASE: usize = 1000;

/// Shared view of the interface's outgoing messages.
#[derive(Debug, Clone, Default)]
pub struct OutboxHandle {
    inner: Arc<Mutex<Vec<Message>>>,
}

impl OutboxHandle {
    /// Drains all pending outgoing messages, in emission order.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn drain(&self) -> Vec<Message> {
        std::mem::take(&mut *self.inner.lock().expect("outbox lock poisoned"))
    }

    /// Drains all pending outgoing messages into `out`, in emission
    /// order. Unlike [`OutboxHandle::drain`] this keeps the internal
    /// buffer's capacity, so the per-event pump of the coupling loop
    /// stops allocating once warm.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn drain_into(&self, out: &mut Vec<Message>) {
        out.extend(self.inner.lock().expect("outbox lock poisoned").drain(..));
    }

    /// Number of messages waiting.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("outbox lock poisoned").len()
    }

    /// `true` when no messages are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The interface process. See the module documentation for port semantics.
#[derive(Debug)]
pub struct CastanetInterfaceProcess {
    outbox: OutboxHandle,
    cell_type: MessageTypeId,
    forwarded: u64,
    returned: u64,
    non_cell_drops: u64,
}

impl CastanetInterfaceProcess {
    /// Creates the process; messages it emits carry `cell_type`. Returns
    /// the process and the outbox handle the coupling drains.
    #[must_use]
    pub fn new(cell_type: MessageTypeId) -> (Self, OutboxHandle) {
        let outbox = OutboxHandle::default();
        (
            CastanetInterfaceProcess {
                outbox: outbox.clone(),
                cell_type,
                forwarded: 0,
                returned: 0,
                non_cell_drops: 0,
            },
            outbox,
        )
    }

    /// Cells forwarded toward the coupled simulator.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Process for CastanetInterfaceProcess {
    fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet) {
        if port.0 >= RESPONSE_PORT_BASE {
            // A response re-injected by the coupling: forward into the
            // network model on the matching output port.
            let out = PortId(port.0 - RESPONSE_PORT_BASE);
            self.returned += 1;
            ctx.send(out, packet)
                .expect("interface response output port must be connected");
            return;
        }
        // A cell from the network model headed for the DUT.
        match packet.into_payload::<AtmCell>() {
            Ok(cell) => {
                self.forwarded += 1;
                self.outbox
                    .inner
                    .lock()
                    .expect("outbox lock poisoned")
                    .push(Message::cell(ctx.now(), self.cell_type, port.0, cell));
            }
            Err(_) => {
                self.non_cell_drops += 1;
            }
        }
    }
}

/// Builds a response packet carrying `cell` for injection at a reserved
/// interface input port.
#[must_use]
pub fn response_packet(cell: AtmCell) -> Packet {
    Packet::new(ATM_CELL_FORMAT, castanet_atm::cell::CELL_BITS).with_payload(cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;
    use castanet_netsim::kernel::Kernel;
    use castanet_netsim::process::CollectorProcess;
    use castanet_netsim::time::SimTime;

    fn cell(vci: u16) -> AtmCell {
        AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [0; 48])
    }

    #[test]
    fn forwards_cells_into_the_outbox_with_stamps() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        let (proc_, outbox) = CastanetInterfaceProcess::new(MessageTypeId(1));
        let iface = k.add_module(n, "castanet", Box::new(proc_));
        k.inject_packet(
            iface,
            PortId(2),
            response_packet(cell(40)),
            SimTime::from_us(3),
        )
        .unwrap();
        k.inject_packet(
            iface,
            PortId(0),
            response_packet(cell(41)),
            SimTime::from_us(5),
        )
        .unwrap();
        k.run().unwrap();
        let msgs = outbox.drain();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].stamp, SimTime::from_us(3));
        assert_eq!(msgs[0].port, 2);
        assert_eq!(msgs[0].as_cell(), Some(&cell(40)));
        assert_eq!(msgs[1].stamp, SimTime::from_us(5));
        assert!(outbox.is_empty());
    }

    #[test]
    fn responses_are_forwarded_to_matching_outputs() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        let (proc_, _outbox) = CastanetInterfaceProcess::new(MessageTypeId(1));
        let iface = k.add_module(n, "castanet", Box::new(proc_));
        let (c0, h0) = CollectorProcess::new();
        let (c1, h1) = CollectorProcess::new();
        let s0 = k.add_module(n, "sink0", Box::new(c0));
        let s1 = k.add_module(n, "sink1", Box::new(c1));
        k.connect_stream(iface, PortId(0), s0, PortId(0)).unwrap();
        k.connect_stream(iface, PortId(1), s1, PortId(0)).unwrap();
        k.inject_packet(
            iface,
            PortId(RESPONSE_PORT_BASE + 1),
            response_packet(cell(77)),
            SimTime::from_us(1),
        )
        .unwrap();
        k.run().unwrap();
        assert!(h0.is_empty());
        assert_eq!(h1.len(), 1);
        let got = h1.take();
        assert_eq!(got[0].1.payload::<AtmCell>(), Some(&cell(77)));
    }

    #[test]
    fn non_cell_packets_are_dropped_not_forwarded() {
        let mut k = Kernel::new(0);
        let n = k.add_node("n");
        let (proc_, outbox) = CastanetInterfaceProcess::new(MessageTypeId(1));
        let iface = k.add_module(n, "castanet", Box::new(proc_));
        k.inject_packet(iface, PortId(0), Packet::new(0, 8), SimTime::from_us(1))
            .unwrap();
        k.run().unwrap();
        assert!(outbox.is_empty());
    }
}
