//! The compiled bit-parallel follower: up to 64 scenario lanes per sweep.
//!
//! [`CompiledCosim`] couples a [`LaneBank`] — replicated DUT instances
//! behind one bit-sliced SoA pin interface (see
//! [`castanet_rtl::compiled`]) — as a [`CoupledSimulator`], so `Coupling`,
//! `ParallelCoupling`, strict pre-flight and telemetry all work unchanged.
//! Lane 0 is the *coupled* lane: network stimulus lands there and its
//! egress cells flow back as response messages, byte-for-byte conformant
//! with [`crate::CycleCosim`] on the same traffic. Lanes 1..N carry
//! independent scenario instances seeded directly via
//! [`CompiledCosim::seed_cell`]; their egress accumulates in per-lane
//! traces read back with [`CompiledCosim::lane_cells`] — the N-seeds →
//! N-lanes → N-traces sweep the scenario layer exposes.
//!
//! Idle skipping is preserved across lanes: a clock may be skipped only
//! when *every* lane's DUT is quiescent and *no* lane has pending
//! stimulus, so per-lane traces are invariant to how other lanes are
//! loaded (a skipped clock is provably a no-op in every lane). With
//! traffic on lane 0 only, the evaluated/skipped counters match the
//! cycle-based follower exactly — the conformance suite pins this.

use crate::convert::ByteStreamAssembler;
use crate::coupling::CoupledSimulator;
use crate::cyclecosim::{EgressIndices, IngressIndices};
use crate::error::CastanetError;
use crate::message::{Message, MessagePayload, MessageTypeId};
use castanet_atm::addr::HeaderFormat;
use castanet_atm::cell::{AtmCell, CELL_OCTETS};
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Counter, Gauge, Phase, Telemetry, Track};
use castanet_rtl::compiled::LaneBank;
use std::collections::VecDeque;

#[derive(Clone)]
struct IngressLane {
    idx: IngressIndices,
    /// Per-lane first clock free for the next cell's first byte.
    next_free_clock: Vec<u64>,
}

#[derive(Clone)]
struct EgressLane {
    idx: EgressIndices,
    /// Per-lane cell reassembly state.
    assemblers: Vec<ByteStreamAssembler>,
    /// Per-lane egress traces (every completed cell, lane 0 included).
    traces: Vec<Vec<AtmCell>>,
}

/// The compiled bit-parallel coupled follower with bank-wide idle
/// skipping.
pub struct CompiledCosim {
    bank: LaneBank,
    clock_period: SimDuration,
    clocks_done: u64,
    /// Per-lane per-clock input words for clocks `clocks_done..`; `None`
    /// slots are all-zero (idle line).
    stimulus: Vec<VecDeque<Option<Vec<u64>>>>,
    zero_inputs: Vec<u64>,
    ingress: Vec<IngressLane>,
    egress: Vec<EgressLane>,
    response_type: MessageTypeId,
    format: HeaderFormat,
    /// Clocks skipped thanks to bank-wide idle detection.
    skipped: u64,
    undecodable: u64,
    obs_evaluated: Gauge,
    obs_skipped: Gauge,
    /// `compiled.fallback_evals` — behavioral `LaneBank` clock edges.
    obs_fallback_evals: Counter,
    /// `compiled.lanes_active` — lanes with stimulus pending at the last
    /// sweep (the coupled lane counts while the run is live).
    obs_lanes_active: Gauge,
    /// `compiled.queue_depth` — deepest per-lane stimulus queue at the
    /// last sweep (the compiled analogue of `rtl.queue_depth`).
    obs_queue_depth: Gauge,
    /// `compiled.idle_skips` — bank-wide idle jumps taken (the compiled
    /// analogue of `rtl.wheel_cascade`: both count O(1) time leaps).
    obs_idle_skips: Counter,
    /// Telemetry handle for the sampled pack/eval/unpack micro-phases.
    tel: Telemetry,
}

impl std::fmt::Debug for CompiledCosim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledCosim")
            .field("lanes", &self.bank.lanes())
            .field("clocks_done", &self.clocks_done)
            .field("skipped", &self.skipped)
            .finish()
    }
}

impl CompiledCosim {
    /// Wraps a lane bank as a follower clocked at `clock_period`.
    #[must_use]
    pub fn new(
        bank: LaneBank,
        clock_period: SimDuration,
        response_type: MessageTypeId,
        format: HeaderFormat,
    ) -> Self {
        let zero_inputs = vec![0u64; bank.input_ports().len()];
        let lanes = bank.lanes();
        CompiledCosim {
            bank,
            clock_period,
            clocks_done: 0,
            stimulus: vec![VecDeque::new(); lanes],
            zero_inputs,
            ingress: Vec::new(),
            egress: Vec::new(),
            response_type,
            format,
            skipped: 0,
            undecodable: 0,
            obs_evaluated: Gauge::default(),
            obs_skipped: Gauge::default(),
            obs_fallback_evals: Counter::default(),
            obs_lanes_active: Gauge::default(),
            obs_queue_depth: Gauge::default(),
            obs_idle_skips: Counter::default(),
            tel: Telemetry::disabled(),
        }
    }

    /// Registers an ingress line (same pin indices in every lane); returns
    /// its co-simulation port index.
    pub fn add_ingress(&mut self, idx: IngressIndices) -> usize {
        self.ingress.push(IngressLane {
            idx,
            next_free_clock: vec![0; self.bank.lanes()],
        });
        self.ingress.len() - 1
    }

    /// Registers an egress line; returns its co-simulation port index.
    pub fn add_egress(&mut self, idx: EgressIndices) -> usize {
        let lanes = self.bank.lanes();
        self.egress.push(EgressLane {
            idx,
            assemblers: (0..lanes)
                .map(|_| ByteStreamAssembler::new(self.format))
                .collect(),
            traces: vec![Vec::new(); lanes],
        });
        self.egress.len() - 1
    }

    /// Number of scenario lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.bank.lanes()
    }

    /// Clocks actually evaluated (each evaluation steps *every* lane).
    #[must_use]
    pub fn clocks_evaluated(&self) -> u64 {
        self.bank.cycles()
    }

    /// Clocks skipped by bank-wide idle detection.
    #[must_use]
    pub fn clocks_skipped(&self) -> u64 {
        self.skipped
    }

    /// DUT output bytes that failed cell reassembly (any lane).
    #[must_use]
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    /// Read access to the lane bank.
    #[must_use]
    pub fn bank(&self) -> &LaneBank {
        &self.bank
    }

    /// Every cell lane `lane` emitted on egress line `port` so far, in
    /// emission order.
    #[must_use]
    pub fn lane_cells(&self, port: usize, lane: usize) -> &[AtmCell] {
        &self.egress[port].traces[lane]
    }

    /// Schedules `cell` into lane `lane` on ingress line `port` at (or
    /// after) `stamp` — the direct per-lane seeding path the scenario
    /// sweep uses for lanes the network model does not drive.
    ///
    /// # Errors
    ///
    /// [`CastanetError::UnknownPort`] for an unregistered ingress line;
    /// conversion errors when the cell cannot be encoded.
    pub fn seed_cell(
        &mut self,
        lane: usize,
        port: usize,
        stamp: SimTime,
        cell: &AtmCell,
    ) -> Result<(), CastanetError> {
        if port >= self.ingress.len() {
            return Err(CastanetError::UnknownPort { port });
        }
        assert!(lane < self.bank.lanes(), "lane out of range");
        let wire = cell.encode(self.format)?;
        let start = self
            .clock_at_or_after(stamp)
            .max(self.ingress[port].next_free_clock[lane])
            .max(self.clocks_done);
        let idx = self.ingress[port].idx;
        for (k, &byte) in wire.iter().enumerate() {
            let slot = self.slot_mut(lane, start + k as u64);
            slot[idx.data] = u64::from(byte);
            slot[idx.sync] = u64::from(k == 0);
            slot[idx.enable] = 1;
        }
        self.ingress[port].next_free_clock[lane] = start + CELL_OCTETS as u64;
        Ok(())
    }

    fn clock_at_or_after(&self, t: SimTime) -> u64 {
        let period = self.clock_period.as_picos();
        let ps = t.as_picos();
        if ps <= period {
            return 0;
        }
        ps.div_ceil(period) - 1
    }

    fn slot_mut(&mut self, lane: usize, clock: u64) -> &mut Vec<u64> {
        debug_assert!(clock >= self.clocks_done);
        let idx = (clock - self.clocks_done) as usize;
        let queue = &mut self.stimulus[lane];
        while queue.len() <= idx {
            queue.push_back(None);
        }
        queue[idx].get_or_insert_with(|| self.zero_inputs.clone())
    }

    /// The earliest clock (absolute) with pending stimulus in any lane.
    fn next_stimulus_clock(&self) -> Option<u64> {
        self.stimulus
            .iter()
            .filter_map(|q| q.iter().position(Option::is_some))
            .min()
            .map(|off| self.clocks_done + off as u64)
    }

    fn run_clock(&mut self) -> Vec<Message> {
        // One sampling decision covers the clock's three micro-phases —
        // pack (scatter stimulus into lane words), the behavioral fallback
        // evaluation, and unpack (gather egress words) — so a sampled
        // clock yields one complete pack/eval/unpack triple.
        let sampled = self.tel.micro_gate();
        let t_ps = (self.clocks_done + 1) * self.clock_period.as_picos();
        let mut mark = if sampled { self.tel.now_ns() } else { 0 };
        for lane in 0..self.bank.lanes() {
            match self.stimulus[lane].pop_front().flatten() {
                Some(v) => self.bank.set_inputs(lane, &v),
                None => {
                    let zeros = self.zero_inputs.clone();
                    self.bank.set_inputs(lane, &zeros);
                }
            }
        }
        if sampled {
            mark = self
                .tel
                .record_phase(Track::Follower, t_ps, Phase::CompiledPack, mark);
        }
        self.bank.clock_edge();
        self.obs_fallback_evals.inc();
        if sampled {
            mark = self
                .tel
                .record_phase(Track::Follower, t_ps, Phase::CompiledFallbackEval, mark);
        }
        self.clocks_done += 1;
        let stamp = SimTime::from_picos(self.clocks_done * self.clock_period.as_picos());
        let mut responses = Vec::new();
        for (port, line) in self.egress.iter_mut().enumerate() {
            for lane in 0..self.bank.lanes() {
                if self.bank.output(lane, line.idx.valid) != 1 {
                    continue;
                }
                let data = self.bank.output(lane, line.idx.data) as u8;
                let sync = self.bank.output(lane, line.idx.sync) == 1;
                match line.assemblers[lane].push(data, sync) {
                    Ok(Some(cell)) => {
                        line.traces[lane].push(cell.clone());
                        if lane == 0 {
                            responses.push(Message {
                                stamp,
                                type_id: self.response_type,
                                port,
                                payload: MessagePayload::Cell(cell),
                            });
                        }
                    }
                    Ok(None) => {}
                    Err(_) => {
                        self.undecodable += 1;
                        if lane == 0 {
                            responses.push(Message {
                                stamp,
                                type_id: self.response_type,
                                port,
                                payload: MessagePayload::Raw(vec![data]),
                            });
                        }
                    }
                }
            }
        }
        if sampled {
            self.tel.record_phase(
                Track::Follower,
                stamp.as_picos(),
                Phase::CompiledUnpack,
                mark,
            );
        }
        responses
    }

    fn advance_inner(&mut self, horizon: SimTime, stop_at_first: bool) -> Vec<Message> {
        let period = self.clock_period.as_picos();
        let target = horizon.as_picos().div_ceil(period).saturating_sub(1);
        let mut collected = Vec::new();
        if self.tel.is_enabled() {
            self.obs_lanes_active.set(
                self.stimulus
                    .iter()
                    .filter(|q| q.iter().any(Option::is_some))
                    .count() as u64,
            );
            self.obs_queue_depth
                .set(self.stimulus.iter().map(VecDeque::len).max().unwrap_or(0) as u64);
        }
        while self.clocks_done < target {
            // Idle skip: every lane's DUT quiescent and no stimulus
            // pending in any lane's window — a clock edge would change
            // nothing anywhere, so jump to the next stimulus clock (or
            // the horizon) in O(1).
            if self.bank.idle() {
                match self.next_stimulus_clock() {
                    None => {
                        self.skipped += target - self.clocks_done;
                        self.obs_idle_skips.inc();
                        for q in &mut self.stimulus {
                            q.clear();
                        }
                        self.clocks_done = target;
                        break;
                    }
                    Some(c) if c > self.clocks_done => {
                        let jump = (c - self.clocks_done).min(target - self.clocks_done);
                        self.skipped += jump;
                        self.obs_idle_skips.inc();
                        for q in &mut self.stimulus {
                            let n = (jump as usize).min(q.len());
                            q.drain(..n);
                        }
                        self.clocks_done += jump;
                        continue;
                    }
                    Some(_) => {}
                }
            }
            let responses = self.run_clock();
            if !responses.is_empty() {
                if stop_at_first {
                    self.publish_clock_gauges();
                    return responses;
                }
                collected.extend(responses);
            }
        }
        self.publish_clock_gauges();
        collected
    }

    fn publish_clock_gauges(&self) {
        self.obs_evaluated.set(self.bank.cycles());
        self.obs_skipped.set(self.skipped);
    }
}

impl CoupledSimulator for CompiledCosim {
    fn deliver(&mut self, msg: Message) -> Result<(), CastanetError> {
        let MessagePayload::Cell(cell) = &msg.payload else {
            return Err(CastanetError::Convert(format!(
                "compiled follower can only play cell payloads, got {}",
                msg.payload.kind()
            )));
        };
        let cell = cell.clone();
        self.seed_cell(0, msg.port, msg.stamp, &cell)
    }

    fn advance_until(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        Ok(self.advance_inner(horizon, true))
    }

    fn advance_batch(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        Ok(self.advance_inner(horizon, false))
    }

    fn now(&self) -> SimTime {
        SimTime::from_picos(self.clocks_done * self.clock_period.as_picos())
    }

    fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.obs_evaluated = tel.gauge("follower.clocks_evaluated");
        self.obs_skipped = tel.gauge("follower.clocks_skipped");
        self.obs_fallback_evals = tel.counter("compiled.fallback_evals");
        self.obs_lanes_active = tel.gauge("compiled.lanes_active");
        self.obs_queue_depth = tel.gauge("compiled.queue_depth");
        self.obs_idle_skips = tel.counter("compiled.idle_skips");
    }

    fn fork(&self) -> Option<Self> {
        Some(CompiledCosim {
            bank: self.bank.fork()?,
            clock_period: self.clock_period,
            clocks_done: self.clocks_done,
            stimulus: self.stimulus.clone(),
            zero_inputs: self.zero_inputs.clone(),
            ingress: self.ingress.clone(),
            egress: self.egress.clone(),
            response_type: self.response_type,
            format: self.format,
            skipped: self.skipped,
            undecodable: self.undecodable,
            obs_evaluated: self.obs_evaluated.clone(),
            obs_skipped: self.obs_skipped.clone(),
            obs_fallback_evals: self.obs_fallback_evals.clone(),
            obs_lanes_active: self.obs_lanes_active.clone(),
            obs_queue_depth: self.obs_queue_depth.clone(),
            obs_idle_skips: self.obs_idle_skips.clone(),
            tel: self.tel.clone(),
        })
    }

    fn structural_preflight(&self) -> Vec<String> {
        let mut findings = Vec::new();
        let ins = self.bank.input_ports();
        let outs = self.bank.output_ports();
        for (port, line) in self.ingress.iter().enumerate() {
            for (pin, i) in [
                ("data", line.idx.data),
                ("sync", line.idx.sync),
                ("enable", line.idx.enable),
            ] {
                if i >= ins.len() {
                    findings.push(format!(
                        "CAST150: compiled ingress {port} {pin} pin index {i} out of range \
                         ({} input ports on the lane bank)",
                        ins.len()
                    ));
                    continue;
                }
                let want = if pin == "data" { 8 } else { 1 };
                if ins[i].width < want {
                    findings.push(format!(
                        "CAST151: compiled ingress {port} {pin} pin '{}' is {} bits wide, \
                         needs {want}",
                        ins[i].name, ins[i].width
                    ));
                }
            }
        }
        for (port, line) in self.egress.iter().enumerate() {
            for (pin, i) in [
                ("data", line.idx.data),
                ("sync", line.idx.sync),
                ("valid", line.idx.valid),
            ] {
                if i >= outs.len() {
                    findings.push(format!(
                        "CAST150: compiled egress {port} {pin} pin index {i} out of range \
                         ({} output ports on the lane bank)",
                        outs.len()
                    ));
                    continue;
                }
                let want = if pin == "data" { 8 } else { 1 };
                if outs[i].width < want {
                    findings.push(format!(
                        "CAST151: compiled egress {port} {pin} pin '{}' is {} bits wide, \
                         needs {want}",
                        outs[i].name, outs[i].width
                    ));
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;
    use castanet_rtl::cycle::CycleDut;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    const CLK: SimDuration = SimDuration::from_ns(20);

    fn switch() -> AtmSwitchRtl {
        let mut s = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 32,
            table_capacity: 8,
        });
        assert!(s.install_route(1, 40, 1, 7, 70));
        s
    }

    fn fixture(lanes: usize) -> CompiledCosim {
        let duts: Vec<Box<dyn CycleDut>> = (0..lanes).map(|_| Box::new(switch()) as _).collect();
        let bank = LaneBank::new(duts);
        let mut cosim = CompiledCosim::new(bank, CLK, MessageTypeId(9), HeaderFormat::Uni);
        cosim.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        cosim.add_ingress(IngressIndices {
            data: 3,
            sync: 4,
            enable: 5,
        });
        cosim.add_egress(EgressIndices {
            data: 0,
            sync: 1,
            valid: 2,
        });
        cosim.add_egress(EgressIndices {
            data: 3,
            sync: 4,
            valid: 5,
        });
        cosim
    }

    fn cell(vci: u16) -> AtmCell {
        AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [0x42; 48])
    }

    #[test]
    fn lane_zero_switches_a_cell_like_the_cycle_follower() {
        let mut cosim = fixture(4);
        cosim
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40)))
            .unwrap();
        let responses = cosim.advance_until(SimTime::from_us(10)).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(
            responses[0].as_cell().unwrap().id(),
            VpiVci::uni(7, 70).unwrap()
        );
        // The response is also on lane 0's egress trace, and only there.
        assert_eq!(cosim.lane_cells(1, 0).len(), 1);
        assert!(cosim.lane_cells(1, 1).is_empty());
    }

    #[test]
    fn seeded_lanes_produce_independent_traces() {
        let mut cosim = fixture(3);
        for lane in 0..3 {
            for k in 0..=u8::try_from(lane).unwrap() {
                cosim
                    .seed_cell(lane, 0, SimTime::from_us(5 * (u64::from(k) + 1)), &cell(40))
                    .unwrap();
            }
        }
        cosim.advance_batch(SimTime::from_us(100)).unwrap();
        for lane in 0..3 {
            assert_eq!(
                cosim.lane_cells(1, lane).len(),
                lane + 1,
                "lane {lane} trace length"
            );
            for c in cosim.lane_cells(1, lane) {
                assert_eq!(c.id(), VpiVci::uni(7, 70).unwrap());
            }
        }
    }

    #[test]
    fn idle_skip_requires_every_lane_quiet() {
        let mut cosim = fixture(2);
        // Far-future stimulus on lane 1 only: the bank still skips the
        // gap (both DUTs idle until then), then evaluates lane 1's cell.
        cosim
            .seed_cell(1, 0, SimTime::from_us(100), &cell(40))
            .unwrap();
        cosim.advance_batch(SimTime::from_us(200)).unwrap();
        assert!(cosim.clocks_skipped() > 4000, "{}", cosim.clocks_skipped());
        assert!(
            cosim.clocks_evaluated() < 400,
            "{}",
            cosim.clocks_evaluated()
        );
        assert_eq!(cosim.lane_cells(1, 1).len(), 1);
    }

    #[test]
    fn preflight_flags_bad_pins() {
        let duts: Vec<Box<dyn CycleDut>> = vec![Box::new(switch())];
        let mut cosim = CompiledCosim::new(
            LaneBank::new(duts),
            CLK,
            MessageTypeId(9),
            HeaderFormat::Uni,
        );
        cosim.add_ingress(IngressIndices {
            data: 99,
            sync: 1,
            enable: 2,
        });
        cosim.add_egress(EgressIndices {
            data: 1, // 1-bit sync pin used as the 8-bit data pin
            sync: 4,
            valid: 5,
        });
        let findings = cosim.structural_preflight();
        assert!(
            findings.iter().any(|f| f.starts_with("CAST150")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.starts_with("CAST151")),
            "{findings:?}"
        );
        assert!(fixture(1).structural_preflight().is_empty());
    }
}
