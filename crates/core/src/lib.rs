//! # castanet — the co-verification environment
//!
//! Reproduction of CASTANET, the **C**onfigurable **A**TM **S**imulation
//! **T**estbench **A**pplying **NET**work simulations of Post, Müller and
//! Grötker (DATE 1998): a coupling of a telecommunication network simulator
//! with an HDL simulator and a hardware test board, so that hardware for
//! networking components can be verified against its algorithm reference
//! model using the *same* traffic models and test benches at every level of
//! abstraction.
//!
//! The pieces, mapped to the paper:
//!
//! * [`sync`] — §3.1: the conservative timing-window protocol (plus the
//!   optimistic and lockstep alternatives it is compared against);
//! * [`convert`] — §3.2 / Fig. 4: abstraction interfaces mapping abstract
//!   data types to bit-level signal streams;
//! * [`entity`] — the co-simulation entity inside the HDL simulation;
//! * [`interface`] — the CASTANET interface process inside the network
//!   simulator;
//! * [`coupling`] — Fig. 2: the executive that runs both simulators with
//!   the follower's clock always lagging;
//! * [`cyclecosim`] — the cycle-based follower with idle skipping (the
//!   paper's §5 conclusion);
//! * [`compiledcosim`] — the compiled bit-parallel follower: 64 scenario
//!   lanes behind one bit-sliced pin interface, idle skipping preserved;
//! * [`hwloop`] — §3.3: hardware in the simulation loop via the test board;
//! * [`compare`] — Fig. 1's "=?": reference-vs-DUT stream comparison;
//! * [`traceio`] — dump/replay of test vectors;
//! * [`conformance`] — customized and standardized conformance vectors;
//! * [`parallel`] — the parallel coupled-engine executor: originator and
//!   follower on separate threads, coupled by lock-free SPSC rings that
//!   carry batched timing windows;
//! * [`ring`] — the preallocated cache-line-padded SPSC ring transport
//!   the parallel executor runs on;
//! * [`ipc`] — the UNIX-IPC message transport (in-process and Unix-socket);
//! * [`remote`] — the two-process deployment: any follower served over a
//!   transport, with a protocol client on the coupling side;
//! * [`verify`] — co-verification session summaries.
//!
//! Observability (structured protocol tracing, metrics, exporters) lives in
//! the `castanet-obs` crate; every layer here accepts its [`Telemetry`]
//! handle (re-exported below) and is zero-cost when it is disabled.
//!
//! The substrates (network simulator, ATM model suite, RTL simulator, test
//! board) live in their own crates: `castanet-netsim`, `castanet-atm`,
//! `castanet-rtl`, `castanet-testboard`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod compiledcosim;
pub mod conformance;
pub mod convert;
pub mod coupling;
pub mod cyclecosim;
pub mod entity;
pub mod error;
pub mod hwloop;
pub mod interface;
pub mod ipc;
pub mod message;
pub mod parallel;
pub mod remote;
pub mod ring;
pub mod sync;
pub mod traceio;
pub mod verify;

pub use castanet_obs::Telemetry;
pub use compare::{ComparisonReport, StreamComparator};
pub use compiledcosim::CompiledCosim;
pub use coupling::{CoupledSimulator, Coupling, CouplingStats, RtlCosim};
pub use cyclecosim::CycleCosim;
pub use entity::CosimEntity;
pub use error::CastanetError;
pub use hwloop::BoardCosim;
pub use interface::CastanetInterfaceProcess;
pub use message::{Message, MessagePayload, MessageTypeId};
pub use parallel::{AdaptiveWindow, ExecMode, ParallelCoupling};
pub use remote::{FollowerServer, RemoteFollower};
pub use ring::SpscRing;
pub use sync::{ConservativeSync, LockstepSync, OptimisticSync};
