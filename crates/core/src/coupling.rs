//! The simulator coupling: network simulator ↔ HDL simulator (or board).
//!
//! This is CASTANET's executive. The network kernel is the *originator*;
//! whatever implements [`CoupledSimulator`] is the *follower* whose time
//! always lags. The loop implements §3.1's discipline:
//!
//! 1. before the network executes its next event at `t`, the follower is
//!    granted (via a time-stamped null message) and runs all its events
//!    *strictly before* `t`;
//! 2. responses the follower produced are injected back into the network
//!    model — they carry stamps `< t`, so nothing arrives in anyone's past;
//! 3. the network executes its event; cells the interface process captured
//!    are delivered to the follower as time-stamped messages.
//!
//! Because grants only ever come from the originator's clock, the follower
//! can never overtake it, and because every message raises the grant, the
//! follower can never starve: no causality errors, no deadlock — the
//! properties the conservative protocol promises.

use crate::entity::CosimEntity;
use crate::error::CastanetError;
use crate::interface::{response_packet, OutboxHandle, RESPONSE_PORT_BASE};
use crate::message::{Message, MessagePayload, MessageTypeId};
use crate::sync::conservative::{ConservativeSync, SyncStats};
use castanet_netsim::event::{ModuleId, PortId};
use castanet_netsim::kernel::Kernel;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Counter, EventKind, Phase, Telemetry, Track};
use castanet_rtl::sim::Simulator;

pub use crate::parallel::ParallelCoupling;

/// The follower side of a coupling: an HDL simulation, a hardware test
/// board session, or anything else that can consume time-stamped stimulus
/// and produce time-stamped responses.
pub trait CoupledSimulator {
    /// Accepts one stimulus message (stamped with the originator's time).
    ///
    /// # Errors
    ///
    /// Implementation-specific delivery failures.
    fn deliver(&mut self, msg: Message) -> Result<(), CastanetError>;

    /// Advances local time, processing all local events strictly before
    /// `horizon`, and returns the responses produced.
    ///
    /// # Errors
    ///
    /// Implementation-specific simulation failures.
    fn advance_until(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError>;

    /// Attaches a telemetry handle so the follower can publish its own
    /// metrics (clock counts, skipped idle stretches, …). The default is a
    /// no-op: followers without internal counters need not care.
    fn set_telemetry(&mut self, tel: &Telemetry) {
        let _ = tel;
    }

    /// Advances local time all the way to `horizon`, returning *every*
    /// response produced along the way — unlike [`advance_until`], which
    /// may stop at the first response so the serial coupling can
    /// re-evaluate its horizon with zero overshoot.
    ///
    /// Batching executors ([`crate::parallel::ParallelCoupling`]) use this
    /// entry point: under the feedforward assumption (responses only feed
    /// monitors, never new stimulus) running past a response is safe, and
    /// doing so amortizes the per-step bookkeeping across the whole grant
    /// window. The default implementation loops [`advance_until`];
    /// followers override it with a cheaper batched sweep.
    ///
    /// [`advance_until`]: CoupledSimulator::advance_until
    ///
    /// # Errors
    ///
    /// Implementation-specific simulation failures.
    fn advance_batch(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        let mut out = Vec::new();
        loop {
            let responses = self.advance_until(horizon)?;
            if responses.is_empty() {
                return Ok(out);
            }
            out.extend(responses);
        }
    }

    /// The follower's current local time.
    fn now(&self) -> SimTime;

    /// Error-level structural findings about the follower itself, each
    /// rendered as a `location: message` string prefixed with its stable
    /// diagnostic code. Strict-mode [`Coupling::run`] refuses to start
    /// while this is non-empty. The default reports nothing — followers
    /// without an introspectable structure (hardware boards, opaque
    /// simulators) are not penalized; [`RtlCosim`] overrides it with the
    /// error-level `CAST1xx` netlist analyses.
    fn structural_preflight(&self) -> Vec<String> {
        Vec::new()
    }

    /// Checkpoints the follower: returns an independent copy of the full
    /// follower state, suitable for restoring later by plain assignment.
    /// This is the primitive behind
    /// [`ExecMode::TimeWarp`](crate::parallel::ExecMode::TimeWarp):
    /// the executor forks before speculating past the granted horizon and
    /// rolls back to the fork if stimulus invalidates the speculation.
    ///
    /// The default returns `None` — "this follower cannot be
    /// checkpointed" — which is the honest answer for followers wrapping
    /// external state (hardware boards, remote processes, boxed
    /// event-driven simulators). Deterministic in-process followers
    /// ([`crate::cyclecosim::CycleCosim`],
    /// [`crate::compiledcosim::CompiledCosim`]) override it with a deep
    /// copy.
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// An event-driven RTL simulation with its co-simulation entity, as one
/// coupled follower.
pub struct RtlCosim {
    sim: Simulator,
    entity: CosimEntity,
}

impl std::fmt::Debug for RtlCosim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtlCosim")
            .field("now", &self.sim.now())
            .field("entity", &self.entity)
            .finish()
    }
}

impl RtlCosim {
    /// Pairs a prepared RTL simulation (clock, DUT, signals) with its
    /// entity (ingress/egress registrations done).
    #[must_use]
    pub fn new(sim: Simulator, entity: CosimEntity) -> Self {
        RtlCosim { sim, entity }
    }

    /// Read access to the RTL simulator (e.g. for counters).
    #[must_use]
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable access (e.g. for VCD tracing setup).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Read access to the entity.
    #[must_use]
    pub fn entity(&self) -> &CosimEntity {
        &self.entity
    }
}

impl CoupledSimulator for RtlCosim {
    fn deliver(&mut self, msg: Message) -> Result<(), CastanetError> {
        self.entity.deliver(&mut self.sim, &msg)?;
        Ok(())
    }

    fn advance_until(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        // Step one time point at a time and stop at the *first* DUT
        // response: the coupling re-evaluates the network's event horizon
        // after every injection, which keeps the follower's overshoot past
        // a response at zero — important when responses feed back into the
        // network model.
        loop {
            let responses = self.entity.collect();
            if !responses.is_empty() {
                self.sim.publish_queue_telemetry();
                return Ok(responses);
            }
            match self.sim.next_time() {
                Some(t) if t < horizon => {
                    self.sim.step_time()?;
                }
                _ => {
                    self.sim.publish_queue_telemetry();
                    return Ok(self.entity.collect());
                }
            }
        }
    }

    fn advance_batch(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        // Batched sweep: run the whole window in one kernel call and drain
        // the egress monitors once. The monitors stamp each cell at its
        // completion edge, so collecting late loses no timing information —
        // this skips the per-time-point `collect` (two mutex locks per
        // step) that `advance_until`'s zero-overshoot loop pays.
        self.sim.run_until(horizon)?;
        Ok(self.entity.collect())
    }

    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn set_telemetry(&mut self, tel: &Telemetry) {
        self.sim.set_telemetry(tel);
    }

    fn structural_preflight(&self) -> Vec<String> {
        self.sim.netlist().error_findings()
    }
}

/// Counters of one coupling run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CouplingStats {
    /// Network-side events executed.
    pub net_events: u64,
    /// Stimulus messages delivered to the follower.
    pub messages_to_follower: u64,
    /// Responses injected back into the network model.
    pub responses: u64,
    /// Responses whose stamp was in the network's past even though the
    /// executor was *not* pipelining — a feedforward-assumption violation.
    /// Must stay 0 when the protocol is obeyed; counted instead of silently
    /// clamped. Always 0 under [`crate::parallel::ParallelCoupling`], whose
    /// behind-the-clock arrivals are expected pipeline lag and land in
    /// [`deferred_responses`](Self::deferred_responses) instead.
    pub late_responses: u64,
    /// Responses injected behind the network clock, whatever the executor:
    /// every late response counts here too, and under
    /// [`crate::parallel::ParallelCoupling`] the originator running ahead
    /// of the follower makes a non-zero value the *normal* case (pipeline
    /// lag, not a protocol violation). Serial and parallel runs of the same
    /// scenario can therefore be compared on this counter directly.
    pub deferred_responses: u64,
}

/// Live counter mirrors of the [`CouplingStats`] deferral fields, under
/// the executor-independent `sync.*` names — serial, parallel and
/// compiled runs of the same scenario expose the same metric namespace,
/// so dashboards and the console exporter need no per-executor casing.
#[derive(Debug, Clone, Default)]
pub(crate) struct SyncCounters {
    /// `sync.deferred_responses` — responses injected behind the network
    /// clock (pipeline lag under the parallel executor).
    deferred: Counter,
    /// `sync.late_responses` — feedforward violations (must stay 0).
    late: Counter,
}

impl SyncCounters {
    pub(crate) fn new(tel: &Telemetry) -> Self {
        SyncCounters {
            deferred: tel.counter("sync.deferred_responses"),
            late: tel.counter("sync.late_responses"),
        }
    }
}

/// Injects follower responses into the network model — the single
/// bookkeeping path shared by the serial [`Coupling`] and the parallel
/// executor, so the two keep identical counter semantics.
///
/// A response stamped behind the network clock is re-stamped to "now" and
/// counted in `deferred_responses`; when the executor is not `pipelined`
/// (serial coupling: the follower never runs concurrently with the
/// network), the same arrival additionally counts as a `late_response`,
/// because only a feedforward violation can produce it there. A call that
/// deferred anything records one `sync.deferred_window` phase span
/// covering the injection pass.
pub(crate) fn inject_responses(
    net: &mut Kernel,
    stats: &mut CouplingStats,
    iface: ModuleId,
    responses: Vec<Message>,
    pipelined: bool,
    tel: &Telemetry,
    counters: &SyncCounters,
) -> Result<usize, CastanetError> {
    let mut injected = 0;
    let mut deferred_here = 0u64;
    let pass_start = tel.now_ns();
    for msg in responses {
        let MessagePayload::Cell(cell) = msg.payload else {
            // Undecodable DUT output (raw payload): the network model
            // cannot route it; the comparison layer is where such
            // corruption is detected and reported.
            continue;
        };
        let now = net.now();
        let at = if msg.stamp < now {
            stats.deferred_responses += 1;
            deferred_here += 1;
            counters.deferred.inc();
            let kind = if pipelined {
                EventKind::DeferredResponse {
                    stamp_ps: msg.stamp.as_picos(),
                    net_ps: now.as_picos(),
                }
            } else {
                stats.late_responses += 1;
                counters.late.inc();
                EventKind::LateResponse {
                    stamp_ps: msg.stamp.as_picos(),
                    net_ps: now.as_picos(),
                }
            };
            tel.record(Track::Originator, now.as_picos(), kind);
            now
        } else {
            msg.stamp
        };
        tel.record(
            Track::Originator,
            at.as_picos(),
            EventKind::ResponseInjected {
                stamp_ps: msg.stamp.as_picos(),
                at_ps: at.as_picos(),
                port: msg.port as u32,
            },
        );
        net.inject_packet(
            iface,
            PortId(RESPONSE_PORT_BASE + msg.port),
            response_packet(cell),
            at,
        )?;
        stats.responses += 1;
        injected += 1;
    }
    if deferred_here > 0 && tel.micro_gate() {
        tel.record_phase(
            Track::Originator,
            net.now().as_picos(),
            Phase::SyncDeferredWindow,
            pass_start,
        );
    }
    Ok(injected)
}

/// The coupling executive.
///
/// Construction recipe: build a network model containing a
/// [`crate::interface::CastanetInterfaceProcess`], build a follower (e.g.
/// [`RtlCosim`]), then [`Coupling::new`] with the interface's module id and
/// outbox.
pub struct Coupling<S: CoupledSimulator> {
    net: Kernel,
    follower: S,
    sync: ConservativeSync,
    cell_type: MessageTypeId,
    outbox: OutboxHandle,
    iface: ModuleId,
    stats: CouplingStats,
    /// Largest time-update promise sent to the follower. Promises are
    /// monotone: once the originator has declared "no stimulus before t",
    /// later (injection-created) events may run earlier on the network
    /// side, but they must not generate *stimulus* before t — the
    /// feedforward assumption of the paper's flow. Violations surface as
    /// causality errors from the synchronizer.
    promised: SimTime,
    /// Chunk size of the final drain phase (see [`Coupling::with_drain`]).
    drain_quantum: SimDuration,
    /// Quiet drain chunks required before the run is declared complete.
    drain_quiet_chunks: u32,
    /// When set, [`Coupling::run`] refuses to start until the assembled
    /// configuration passes the static pre-flight checks (see
    /// [`Coupling::preflight`]).
    strict: bool,
    /// Reused drain buffer for the per-event outbox pump: once warm, the
    /// stimulus path runs without allocating.
    outbox_scratch: Vec<Message>,
    /// Telemetry handle; disabled (all recording a no-op) by default.
    tel: Telemetry,
    /// Cached `sync.*` counter handles (inert until telemetry attaches).
    sync_counters: SyncCounters,
}

impl<S: CoupledSimulator> std::fmt::Debug for Coupling<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coupling")
            .field("net_now", &self.net.now())
            .field("follower_now", &self.follower.now())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<S: CoupledSimulator> Coupling<S> {
    /// Assembles a coupling. `sync` must already have `cell_type`
    /// registered (with the cell's processing delay δ), and `iface`/`outbox`
    /// must belong to the interface process inside `net`.
    #[must_use]
    pub fn new(
        net: Kernel,
        follower: S,
        sync: ConservativeSync,
        cell_type: MessageTypeId,
        iface: ModuleId,
        outbox: OutboxHandle,
    ) -> Self {
        Coupling {
            net,
            follower,
            sync,
            cell_type,
            outbox,
            iface,
            stats: CouplingStats::default(),
            promised: SimTime::ZERO,
            drain_quantum: SimDuration::from_us(50),
            drain_quiet_chunks: 2,
            strict: false,
            outbox_scratch: Vec::new(),
            tel: Telemetry::disabled(),
            sync_counters: SyncCounters::default(),
        }
    }

    /// Attaches a telemetry handle to every layer of the coupling: the
    /// network kernel, the conservative synchronizer and the follower all
    /// publish into its metrics registry, and [`Coupling::run`] records
    /// structured protocol events into its trace sink. Pass
    /// [`Telemetry::disabled`] (the default) for zero-overhead operation.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self.sync_counters = SyncCounters::new(tel);
        self.net.set_telemetry(tel);
        self.sync.set_telemetry(tel);
        self.follower.set_telemetry(tel);
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`Coupling::with_telemetry`] was called).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Enables (or disables) strict mode: [`Coupling::run`] then executes
    /// [`Coupling::preflight`] before the first event and fails fast with
    /// [`CastanetError::Preflight`] on a rejected configuration, instead of
    /// panicking or corrupting results mid-run.
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Whether strict pre-flight mode is enabled.
    #[must_use]
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Static pre-flight verification of the assembled coupling — the
    /// error-level subset of the `castanet-lint` analyses that the core can
    /// check without knowing the follower's concrete type:
    ///
    /// * `CAST001` — the synchronizer has no registered message types, so no
    ///   grant can ever be issued (§3.1 liveness);
    /// * `CAST003` — the coupling's `cell_type` is not registered with the
    ///   synchronizer: every `receive` would fail;
    /// * `CAST010` — the grant-horizon monotonicity predicate does not hold
    ///   on the assembled synchronizer;
    /// * `CAST021` — a declared interface input port collides with the
    ///   `RESPONSE_PORT_BASE..` namespace reserved for response injection;
    /// * `CAST040` — the interface module id does not exist in the kernel;
    ///
    /// plus the follower's own
    /// [`structural_preflight`](CoupledSimulator::structural_preflight) —
    /// for [`RtlCosim`] the error-level `CAST1xx` netlist analyses
    /// (combinational loops, multi-driver conflicts, broken sensitivity
    /// lists, unsafe gated clocks).
    ///
    /// The full analysis (warnings, pin maps, RTL widths) lives in the
    /// `castanet-lint` crate, which layers on top of this one.
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Preflight`] listing every finding.
    pub fn preflight(&self) -> Result<(), CastanetError> {
        let mut findings = preflight_checks(&self.net, &self.sync, self.cell_type, self.iface);
        findings.extend(self.follower.structural_preflight());
        if findings.is_empty() {
            Ok(())
        } else {
            Err(CastanetError::Preflight(findings))
        }
    }

    /// Tunes the final drain: once the network side has no events left, the
    /// follower advances in chunks of `quantum`; after `quiet_chunks`
    /// consecutive chunks without any response the run is complete. The
    /// defaults (50 µs × 2) tolerate DUT pipelines that stay silent for up
    /// to ~100 µs of simulated time; raise them for deeper pipelines or
    /// slower DUT clocks.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or `quiet_chunks` is zero.
    #[must_use]
    pub fn with_drain(mut self, quantum: SimDuration, quiet_chunks: u32) -> Self {
        assert!(!quantum.is_zero(), "drain quantum must be non-zero");
        assert!(quiet_chunks > 0, "need at least one quiet chunk");
        self.drain_quantum = quantum;
        self.drain_quiet_chunks = quiet_chunks;
        self
    }

    /// Runs the coupled simulation until no activity remains before
    /// `until` on either side.
    ///
    /// # Errors
    ///
    /// Propagates simulator, conversion and synchronization errors.
    pub fn run(&mut self, until: SimTime) -> Result<CouplingStats, CastanetError> {
        if self.strict {
            self.preflight()?;
        }
        let mut quiet_chunks = 0u32;
        loop {
            let t_net = self.net.next_event_time().filter(|t| *t < until);
            // With network events pending, the follower runs exactly to the
            // next one; once the network is drained, the follower advances
            // in bounded chunks until it has been quiet long enough —
            // simulating an idle DUT clock all the way to `until` would be
            // pure waste.
            let horizon = match t_net {
                Some(t) => t,
                None => (self.follower.now().max(self.net.now()) + self.drain_quantum).min(until),
            };

            // Time update: the originator promises no stimulus before
            // `horizon`. Promises only ever grow (see `promised`).
            if horizon > self.promised {
                self.sync.receive(self.cell_type, horizon, true)?;
                self.promised = horizon;
                self.tel.record(
                    Track::Originator,
                    self.net.now().as_picos(),
                    EventKind::WindowGranted {
                        grant_ps: horizon.as_picos(),
                        msgs: 0,
                    },
                );
            }
            let advance_start = if self.tel.trace_active() {
                self.tel.now_ns()
            } else {
                0
            };
            let responses = self.follower.advance_until(horizon)?;
            // Response-bearing advances always record; empty ones are
            // per-iteration plumbing (most loop turns return nothing) and
            // are thinned to the micro-sample stride — two clock reads per
            // otherwise-idle turn is what used to dominate the full-trace
            // overhead budget.
            if !responses.is_empty() || self.tel.micro_gate() {
                self.tel.record_span(
                    Track::Follower,
                    horizon.as_picos(),
                    advance_start,
                    EventKind::FollowerAdvance {
                        granted_ps: horizon.as_picos(),
                        responses: responses.len() as u64,
                    },
                );
            }
            let local = self.follower.now().max(self.sync.local_time());
            if local <= self.sync.grant() {
                self.sync.advance_local(local)?;
            }

            let had_responses = !responses.is_empty();
            let injected = self.inject(responses)?;
            if injected > 0 || had_responses {
                quiet_chunks = 0;
                // Injections may have created network events earlier than
                // `t_net`; re-evaluate.
                continue;
            }
            if t_net.is_none() {
                quiet_chunks += 1;
                if quiet_chunks >= self.drain_quiet_chunks || self.follower.now() >= until {
                    break;
                }
            } else {
                self.net.step();
                self.stats.net_events += 1;
                let mut pump = std::mem::take(&mut self.outbox_scratch);
                self.outbox.drain_into(&mut pump);
                for msg in pump.drain(..) {
                    self.sync.receive(msg.type_id, msg.stamp, false)?;
                    self.tel.record(
                        Track::Originator,
                        msg.stamp.as_picos(),
                        EventKind::StimulusEnqueued {
                            type_id: msg.type_id.0,
                            port: msg.port as u32,
                            stamp_ps: msg.stamp.as_picos(),
                        },
                    );
                    // The follower consumes the message immediately (it
                    // is covered by the next grant); mirror that in the
                    // protocol bookkeeping.
                    self.follower.deliver(msg)?;
                    self.stats.messages_to_follower += 1;
                }
                self.outbox_scratch = pump;
            }
        }
        Ok(self.stats)
    }

    fn inject(&mut self, responses: Vec<Message>) -> Result<usize, CastanetError> {
        inject_responses(
            &mut self.net,
            &mut self.stats,
            self.iface,
            responses,
            false,
            &self.tel,
            &self.sync_counters,
        )
    }

    /// The network kernel (e.g. for statistics after the run).
    #[must_use]
    pub fn net(&self) -> &Kernel {
        &self.net
    }

    /// The follower (e.g. for RTL counters after the run).
    #[must_use]
    pub fn follower(&self) -> &S {
        &self.follower
    }

    /// Mutable follower access — e.g. to read back DUT registers through
    /// pin pokes once the coupled run has finished.
    pub fn follower_mut(&mut self) -> &mut S {
        &mut self.follower
    }

    /// The conservative synchronizer (e.g. for static pre-flight analysis).
    #[must_use]
    pub fn sync(&self) -> &ConservativeSync {
        &self.sync
    }

    /// The interface process's module id inside the network kernel.
    #[must_use]
    pub fn iface_module(&self) -> ModuleId {
        self.iface
    }

    /// The message type stimulus cells are sent as.
    #[must_use]
    pub fn cell_type(&self) -> MessageTypeId {
        self.cell_type
    }

    /// Coupling counters.
    #[must_use]
    pub fn stats(&self) -> CouplingStats {
        self.stats
    }

    /// Synchronization-protocol statistics.
    #[must_use]
    pub fn sync_stats(&self) -> SyncStats {
        self.sync.stats()
    }

    /// A clone of the interface outbox handle — lets callers (and the
    /// parallel executor) observe stimulus crossing the abstraction
    /// interface without dismantling the coupling.
    #[must_use]
    pub fn outbox(&self) -> OutboxHandle {
        self.outbox.clone()
    }

    /// Dismantles the coupling, returning the network kernel and follower.
    #[must_use]
    pub fn into_parts(self) -> (Kernel, S) {
        (self.net, self.follower)
    }

    /// Re-hosts this (not-yet-run) coupling on the parallel executor,
    /// preserving the drain and strict-mode settings. Batching parameters
    /// take the parallel defaults; tune with
    /// [`ParallelCoupling::with_batching`].
    #[must_use]
    pub fn into_parallel(self) -> ParallelCoupling<S>
    where
        S: Send,
    {
        ParallelCoupling::new(
            self.net,
            self.follower,
            self.sync,
            self.cell_type,
            self.iface,
            self.outbox,
        )
        .with_drain(self.drain_quantum, self.drain_quiet_chunks)
        .with_strict(self.strict)
        .with_telemetry(&self.tel)
    }
}

/// The error-level static checks shared by [`Coupling::preflight`] and
/// [`crate::parallel::ParallelCoupling::preflight`] — see the method docs
/// for the finding catalogue. Returns the findings (empty = pass) so the
/// callers can append follower-specific checks before deciding the
/// verdict.
pub(crate) fn preflight_checks(
    net: &Kernel,
    sync: &ConservativeSync,
    cell_type: MessageTypeId,
    iface: ModuleId,
) -> Vec<String> {
    let mut findings = Vec::new();
    if sync.type_count() == 0 {
        findings.push(
            "CAST001: no message types registered with the synchronizer; \
             the follower can never be granted simulation time"
                .to_string(),
        );
    }
    if sync.type_delta(cell_type).is_none() {
        findings.push(format!(
            "CAST003: coupling cell type {} is not registered with the synchronizer",
            cell_type.0
        ));
    }
    if !sync.grant_horizon_monotone() {
        findings.push(
            "CAST010: grant-horizon monotonicity predicate violated on the \
             assembled synchronizer"
                .to_string(),
        );
    }
    if iface.index() >= net.module_count() {
        findings.push(format!(
            "CAST040: interface module id {} does not exist in the kernel \
             ({} modules registered)",
            iface.index(),
            net.module_count()
        ));
    } else {
        for (_, _, dst, dst_port) in net.connection_edges() {
            if dst == iface && dst_port.0 >= RESPONSE_PORT_BASE {
                findings.push(format!(
                    "CAST021: interface input port {} collides with the response \
                     injection namespace (RESPONSE_PORT_BASE = {RESPONSE_PORT_BASE})",
                    dst_port.0
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EgressSignals, IngressSignals};
    use crate::interface::CastanetInterfaceProcess;
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;
    use castanet_atm::traffic::source::{payload_seq, TrafficSourceProcess};
    use castanet_atm::traffic::Cbr;
    use castanet_netsim::process::CollectorProcess;
    use castanet_netsim::time::SimDuration;
    use castanet_rtl::cycle::attach_cycle_dut;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    const CLK: SimDuration = SimDuration::from_ns(20);

    /// Full co-verification fixture: CBR source -> interface -> RTL 2-port
    /// switch (route 1/40 -> port 1 as 7/70) -> response -> collector.
    fn build_coupling(
        cells: u64,
        gap: SimDuration,
    ) -> (
        Coupling<RtlCosim>,
        castanet_netsim::process::CollectorHandle,
    ) {
        // --- network side ---
        let mut net = Kernel::new(11);
        let node = net.add_node("coverify");
        let src = net.add_module(
            node,
            "src",
            Box::new(
                TrafficSourceProcess::new(VpiVci::uni(1, 40).unwrap(), Box::new(Cbr::new(gap)))
                    .with_limit(cells),
            ),
        );
        let mut sync = ConservativeSync::new();
        let cell_type = sync.register_type(CLK * 53);
        let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
        let iface = net.add_module(node, "castanet", Box::new(iface_proc));
        net.connect_stream(src, PortId(0), iface, PortId(0))
            .unwrap();
        let (collector, got) = CollectorProcess::new();
        let sink = net.add_module(node, "sink", Box::new(collector));
        // Responses from DUT egress line 1 come back out of output port 1.
        net.connect_stream(iface, PortId(1), sink, PortId(0))
            .unwrap();

        // --- RTL side ---
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", CLK);
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 64,
            table_capacity: 16,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let dut = attach_cycle_dut(&mut sim, "switch", Box::new(switch), clk);
        let mut entity = CosimEntity::new(CLK, HeaderFormat::Uni, cell_type);
        // Ingress line 0: rx_data0/rx_sync0/rx_en0 = inputs 0..3.
        entity.add_ingress(IngressSignals {
            data: dut.inputs[0],
            sync: dut.inputs[1],
            enable: dut.inputs[2],
        });
        // Ingress line 1 registered too (unused) to keep port numbering.
        entity.add_ingress(IngressSignals {
            data: dut.inputs[3],
            sync: dut.inputs[4],
            enable: dut.inputs[5],
        });
        // Egress line 0 and 1: tx_data/tx_sync/tx_valid triples.
        entity.add_egress(
            &mut sim,
            clk,
            EgressSignals {
                data: dut.outputs[0],
                sync: dut.outputs[1],
                valid: dut.outputs[2],
            },
        );
        entity.add_egress(
            &mut sim,
            clk,
            EgressSignals {
                data: dut.outputs[3],
                sync: dut.outputs[4],
                valid: dut.outputs[5],
            },
        );
        let follower = RtlCosim::new(sim, entity);
        (
            Coupling::new(net, follower, sync, cell_type, iface, outbox),
            got,
        )
    }

    #[test]
    fn cells_flow_through_the_dut_and_back() {
        let (mut coupling, got) = build_coupling(5, SimDuration::from_us(10));
        let stats = coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(stats.messages_to_follower, 5);
        assert_eq!(stats.responses, 5);
        assert_eq!(stats.late_responses, 0);
        assert_eq!(got.len(), 5);
        let cells = got.take();
        for (i, (t, pkt)) in cells.iter().enumerate() {
            let cell = pkt.payload::<AtmCell>().expect("cell payload");
            assert_eq!(cell.id(), VpiVci::uni(7, 70).unwrap(), "switch retagged");
            assert_eq!(payload_seq(&cell.payload), i as u64, "order preserved");
            // Response arrives after the stimulus (53 clock transfer +
            // switch latency).
            assert!(*t > SimTime::from_us(10 * (i as u64 + 1)));
        }
    }

    #[test]
    fn follower_always_lags_the_network() {
        let (mut coupling, _got) = build_coupling(3, SimDuration::from_us(10));
        coupling.run(SimTime::from_ms(1)).unwrap();
        let sync = coupling.sync_stats();
        assert!(sync.messages >= 3);
        // The follower accumulated lag but no causality errors occurred
        // (run() would have failed otherwise).
        assert!(sync.max_lag > SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_bursts_serialize_on_the_line() {
        // 5 cells arriving every 1 us but needing 53*20 ns = 1.06 us each:
        // the entity must queue them without loss.
        let (mut coupling, got) = build_coupling(5, SimDuration::from_us(1));
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn run_is_idempotent_after_completion() {
        let (mut coupling, got) = build_coupling(2, SimDuration::from_us(10));
        coupling.run(SimTime::from_ms(1)).unwrap();
        let before = coupling.stats();
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(coupling.stats(), before);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn horizon_cuts_the_run_short() {
        let (mut coupling, got) = build_coupling(10, SimDuration::from_us(10));
        // Only events strictly before 35 us run: cells at 10, 20, 30 us.
        coupling.run(SimTime::from_us(35)).unwrap();
        assert_eq!(coupling.stats().messages_to_follower, 3);
        // Their responses may or may not be complete within the window; no
        // cell after 35 us was sent.
        assert!(got.len() <= 3);
    }

    #[test]
    fn telemetry_records_protocol_events() {
        let (coupling, got) = build_coupling(3, SimDuration::from_us(10));
        let tel = Telemetry::enabled();
        let mut coupling = coupling.with_telemetry(&tel);
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(got.len(), 3);
        let names: std::collections::BTreeSet<&str> =
            tel.events().iter().map(|e| e.kind.name()).collect();
        for expected in [
            "window_granted",
            "stimulus_enqueued",
            "follower_advance",
            "response_injected",
        ] {
            assert!(names.contains(expected), "missing {expected}: {names:?}");
        }
        // A serial run obeying the protocol produces no late/deferred events.
        assert!(!names.contains("late_response"));
        assert!(!names.contains("deferred_response"));
        let snap = tel.metrics_snapshot();
        assert_eq!(
            snap.counter("originator.net_events"),
            Some(coupling.stats().net_events)
        );
        assert!(snap.histogram("sync.lag_ps").unwrap().count > 0);
    }

    #[test]
    fn disabled_telemetry_observes_nothing() {
        let (coupling, _got) = build_coupling(2, SimDuration::from_us(10));
        let tel = Telemetry::disabled();
        let mut coupling = coupling.with_telemetry(&tel);
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert!(tel.events().is_empty());
        assert!(tel.metrics_snapshot().counters.is_empty());
    }

    #[test]
    fn into_parts_returns_components() {
        let (coupling, _got) = build_coupling(1, SimDuration::from_us(10));
        let (net, follower) = coupling.into_parts();
        assert_eq!(net.now(), SimTime::ZERO);
        assert_eq!(follower.now(), SimTime::ZERO);
    }

    #[test]
    fn strict_mode_accepts_the_clean_fixture() {
        let (coupling, got) = build_coupling(2, SimDuration::from_us(10));
        let mut coupling = coupling.with_strict(true);
        assert!(coupling.preflight().is_ok());
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn strict_mode_rejects_structural_defects() {
        use castanet_rtl::netlist::ProcessIo;
        use castanet_rtl::sim::{RtlCtx, RtlProcess};

        /// A declared-but-inert process whose dataflow sets form a
        /// combinational self-loop.
        struct SelfLoop {
            io: ProcessIo,
        }
        impl RtlProcess for SelfLoop {
            fn run(&mut self, _ctx: &mut RtlCtx) {}
            fn io(&self) -> Option<ProcessIo> {
                Some(self.io.clone())
            }
        }

        let (coupling, _got) = build_coupling(1, SimDuration::from_us(10));
        let mut coupling = coupling.with_strict(true);
        let sim = coupling.follower_mut().sim_mut();
        let osc = sim.add_signal("osc", 1);
        let io = ProcessIo::combinational("osc_loop")
            .reads([osc])
            .writes([osc]);
        sim.add_process(Box::new(SelfLoop { io }), &[osc]);

        let err = coupling.run(SimTime::from_ms(1)).unwrap_err();
        let CastanetError::Preflight(findings) = err else {
            panic!("expected a preflight rejection, got {err}");
        };
        assert!(
            findings.iter().any(|f| f.contains("combinational loop")),
            "{findings:?}"
        );
    }
}
