//! Lockstep synchronization — the naive fixed-quantum baseline.
//!
//! Both simulators alternately advance by a fixed time quantum Δ and
//! exchange everything produced in the window. Correct only while Δ does
//! not exceed the true lookahead (the minimum latency from one simulator's
//! input to its output); small quanta are safe but cost one synchronization
//! round per Δ of simulated time — the overhead the paper's
//! timing-window protocol avoids by deriving windows from message stamps
//! and processing delays instead of a fixed grid.

use castanet_netsim::time::{SimDuration, SimTime};

/// Which side's turn it is to advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The network simulator.
    Originator,
    /// The HDL simulator.
    Follower,
}

/// Fixed-quantum alternation bookkeeping.
///
/// # Examples
///
/// ```
/// use castanet::sync::LockstepSync;
/// use castanet::sync::lockstep::Side;
/// use castanet_netsim::time::{SimDuration, SimTime};
///
/// let mut ls = LockstepSync::new(SimDuration::from_us(10));
/// assert_eq!(ls.turn(), Side::Originator);
/// let window = ls.begin_window();
/// assert_eq!(window, SimTime::from_us(10));
/// ls.complete(Side::Originator);
/// assert_eq!(ls.turn(), Side::Follower);
/// ```
#[derive(Debug, Clone)]
pub struct LockstepSync {
    quantum: SimDuration,
    window_end: SimTime,
    turn: Side,
    rounds: u64,
}

impl LockstepSync {
    /// Creates a lockstep scheduler with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[must_use]
    pub fn new(quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "lockstep quantum must be non-zero");
        LockstepSync {
            quantum,
            window_end: SimTime::ZERO + quantum,
            turn: Side::Originator,
            rounds: 0,
        }
    }

    /// The side that must advance next.
    #[must_use]
    pub fn turn(&self) -> Side {
        self.turn
    }

    /// The (exclusive) horizon of the current window.
    #[must_use]
    pub fn begin_window(&self) -> SimTime {
        self.window_end
    }

    /// Marks `side`'s half-round complete. When both sides finished the
    /// window advances by one quantum.
    ///
    /// # Panics
    ///
    /// Panics when called out of turn — a protocol bug in the caller.
    pub fn complete(&mut self, side: Side) {
        assert_eq!(side, self.turn, "lockstep sides completed out of turn");
        match self.turn {
            Side::Originator => self.turn = Side::Follower,
            Side::Follower => {
                self.turn = Side::Originator;
                self.window_end += self.quantum;
                self.rounds += 1;
            }
        }
    }

    /// Completed synchronization rounds (two half-rounds each).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Synchronization rounds needed to reach `horizon` — the cost model
    /// for E2's overhead comparison.
    #[must_use]
    pub fn rounds_to_reach(&self, horizon: SimTime) -> u64 {
        horizon.as_picos().div_ceil(self.quantum.as_picos())
    }

    /// The quantum.
    #[must_use]
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// `true` when the quantum is a safe choice for a coupling whose
    /// minimum input-to-output latency (lookahead) is `lookahead`.
    #[must_use]
    pub fn is_safe_for(&self, lookahead: SimDuration) -> bool {
        self.quantum <= lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternation_and_window_advance() {
        let mut ls = LockstepSync::new(SimDuration::from_us(5));
        assert_eq!(ls.begin_window(), SimTime::from_us(5));
        ls.complete(Side::Originator);
        ls.complete(Side::Follower);
        assert_eq!(ls.begin_window(), SimTime::from_us(10));
        assert_eq!(ls.rounds(), 1);
        assert_eq!(ls.turn(), Side::Originator);
    }

    #[test]
    #[should_panic(expected = "out of turn")]
    fn out_of_turn_completion_panics() {
        let mut ls = LockstepSync::new(SimDuration::from_us(5));
        ls.complete(Side::Follower);
    }

    #[test]
    fn round_cost_model() {
        let ls = LockstepSync::new(SimDuration::from_us(10));
        assert_eq!(ls.rounds_to_reach(SimTime::from_us(100)), 10);
        assert_eq!(ls.rounds_to_reach(SimTime::from_us(101)), 11);
        assert_eq!(ls.rounds_to_reach(SimTime::ZERO), 0);
    }

    #[test]
    fn safety_criterion() {
        let ls = LockstepSync::new(SimDuration::from_us(10));
        assert!(ls.is_safe_for(SimDuration::from_us(10)));
        assert!(ls.is_safe_for(SimDuration::from_us(53)));
        assert!(!ls.is_safe_for(SimDuration::from_us(9)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_quantum_panics() {
        let _ = LockstepSync::new(SimDuration::ZERO);
    }
}
