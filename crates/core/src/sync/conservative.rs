//! The paper's conservative synchronization protocol (§3.1).
//!
//! The protocol couples an *originator* (the network simulator, whose time
//! runs ahead) with a *follower* (the HDL simulator, whose time always
//! lags):
//!
//! * messages of type `j` arrive in time-stamp order into input queue
//!   `I_j`; each carries the originator's current time, so every arrival is
//!   also a time update;
//! * "upon receipt of a message with a time stamp `t_k` for input queue
//!   `I_j` and `t_k > t_cur`, the [follower] is allowed to process all
//!   events with a time stamp smaller than `t_k`, but not equal" — the
//!   **grant horizon** is the largest originator stamp seen;
//! * "the message at queue `I_j` remains queued until all other input
//!   queues received messages with time stamp `t_k` …; the local simulation
//!   time is advanced by the minimum of each message type's processing
//!   delay `δ_j`" — a **batch window**: when every queue holds a message at
//!   one common stamp, the follower additionally gains `min_j δ_j` of
//!   processing lookahead beyond it;
//! * the follower's clock never passes the granted horizon, so it always
//!   lags the originator ("the simulated time of the VHDL simulator always
//!   lags behind OPNET's simulated time") and no event can arrive in its
//!   past: **no causality errors, no deadlock**.
//!
//! Deadlock freedom: the grant horizon is monotone non-decreasing in the
//! received stamps, and the originator can always raise it — with a null
//! (time-only) message if it has no data to send — so the follower is never
//! blocked forever while the originator still advances.

use crate::error::CastanetError;
use crate::message::MessageTypeId;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Gauge, Histogram, Telemetry};
use std::collections::VecDeque;

#[derive(Debug)]
struct TypeQueue {
    delta: SimDuration,
    /// Pending message stamps, in arrival (= time) order.
    queue: VecDeque<SimTime>,
    /// Stamp of the most recently received message of this type.
    last_stamp: Option<SimTime>,
    received: u64,
    /// Queue-depth gauge `|I_j|` (a no-op until telemetry is attached).
    depth_gauge: Gauge,
}

/// Statistics of a synchronizer's run, for the E2 comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Messages received (including null messages).
    pub messages: u64,
    /// Null (time-only) messages among them.
    pub null_messages: u64,
    /// Batch windows consumed.
    pub batches: u64,
    /// The largest observed lag of the follower behind the originator.
    pub max_lag: SimDuration,
}

/// The conservative synchronizer, viewed from the follower's side.
///
/// # Examples
///
/// ```
/// use castanet::sync::ConservativeSync;
/// use castanet_netsim::time::{SimDuration, SimTime};
///
/// let mut sync = ConservativeSync::new();
/// let cells = sync.register_type(SimDuration::from_us(2)); // δ = 2 us
/// // Originator sends a cell stamped 10 us.
/// sync.receive(cells, SimTime::from_us(10), false)?;
/// // Follower may now process everything strictly before 10 us.
/// assert_eq!(sync.grant(), SimTime::from_us(10));
/// sync.advance_local(SimTime::from_us(9))?;
/// assert!(sync.local_time() < sync.originator_time());
/// # Ok::<(), castanet::error::CastanetError>(())
/// ```
#[derive(Debug, Default)]
pub struct ConservativeSync {
    types: Vec<TypeQueue>,
    /// The follower's current simulated time `t_cur`.
    local: SimTime,
    /// Largest originator stamp seen across all queues.
    originator: SimTime,
    /// Extra lookahead granted by consumed batch windows.
    batch_grant: SimTime,
    stats: SyncStats,
    /// Telemetry handle lagging gauges/histograms hang off (disabled by
    /// default — see [`ConservativeSync::set_telemetry`]).
    telemetry: Telemetry,
    /// Follower-lag distribution in picoseconds (no-op until attached).
    lag_hist: Histogram,
}

impl ConservativeSync {
    /// Creates a synchronizer with no registered message types.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a message type with its worst-case processing delay
    /// `δ_j` ("for each message type the maximum number of clock cycles …
    /// that it takes to process the message has to be specified by the
    /// user").
    pub fn register_type(&mut self, delta: SimDuration) -> MessageTypeId {
        let id = MessageTypeId(self.types.len() as u32);
        self.types.push(TypeQueue {
            delta,
            queue: VecDeque::new(),
            last_stamp: None,
            received: 0,
            depth_gauge: self
                .telemetry
                .gauge(&format!("sync.queue_depth.type{}", id.0)),
        });
        id
    }

    /// Attaches a telemetry handle: the synchronizer then maintains the
    /// `sync.lag_ps` histogram (follower lag behind the originator, sampled
    /// at every local advance) and one `sync.queue_depth.type<j>` gauge per
    /// registered message type `|I_j|`.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.telemetry = tel.clone();
        self.lag_hist = tel.histogram("sync.lag_ps");
        for (j, tq) in self.types.iter_mut().enumerate() {
            tq.depth_gauge = tel.gauge(&format!("sync.queue_depth.type{j}"));
        }
    }

    /// Number of registered types.
    #[must_use]
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// The processing delay `δ_j` registered for `type_id`, if any.
    #[must_use]
    pub fn type_delta(&self, type_id: MessageTypeId) -> Option<SimDuration> {
        self.types.get(type_id.0 as usize).map(|t| t.delta)
    }

    /// Iterates every registered type with its processing delay `δ_j`, in
    /// registration order. Used by static pre-flight analysis.
    pub fn deltas(&self) -> impl Iterator<Item = (MessageTypeId, SimDuration)> + '_ {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (MessageTypeId(i as u32), t.delta))
    }

    /// The stamp of the most recently received message of `type_id`, if any
    /// message has arrived on that queue yet.
    #[must_use]
    pub fn last_stamp(&self, type_id: MessageTypeId) -> Option<SimTime> {
        self.types
            .get(type_id.0 as usize)
            .and_then(|t| t.last_stamp)
    }

    /// The grant-horizon monotonicity predicate of §3.1, checkable at any
    /// point of a run: the grant dominates every received stamp (horizons
    /// only move forward) and the follower's clock never passes it.
    #[must_use]
    pub fn grant_horizon_monotone(&self) -> bool {
        let grant = self.grant();
        grant >= self.originator
            && self.local <= grant
            && self
                .types
                .iter()
                .filter_map(|t| t.last_stamp)
                .all(|s| s <= grant)
    }

    /// Receives a message of `type_id` stamped `stamp`. Pass
    /// `is_null = true` for pure time updates.
    ///
    /// # Errors
    ///
    /// * [`CastanetError::UnknownMessageType`] for an unregistered type;
    /// * [`CastanetError::Causality`] when the stamp precedes the
    ///   follower's local time or regresses within its queue (messages
    ///   must arrive in time order — the in-order-delivery assumption of
    ///   the protocol).
    pub fn receive(
        &mut self,
        type_id: MessageTypeId,
        stamp: SimTime,
        is_null: bool,
    ) -> Result<(), CastanetError> {
        let idx = type_id.0 as usize;
        let Some(tq) = self.types.get_mut(idx) else {
            return Err(CastanetError::UnknownMessageType { type_id: type_id.0 });
        };
        if stamp < self.local {
            return Err(CastanetError::Causality {
                stamp,
                local: self.local,
            });
        }
        if let Some(last) = tq.last_stamp {
            if stamp < last {
                return Err(CastanetError::Causality { stamp, local: last });
            }
        }
        tq.last_stamp = Some(stamp);
        tq.received += 1;
        if !is_null {
            tq.queue.push_back(stamp);
            tq.depth_gauge.set(tq.queue.len() as u64);
        }
        self.stats.messages += 1;
        if is_null {
            self.stats.null_messages += 1;
        }
        self.originator = self.originator.max(stamp);
        Ok(())
    }

    /// The horizon (exclusive) up to which the follower may process local
    /// events: the largest originator stamp seen, extended by any consumed
    /// batch windows.
    #[must_use]
    pub fn grant(&self) -> SimTime {
        self.originator.max(self.batch_grant)
    }

    /// Checks the batch condition: every queue non-empty with a common head
    /// stamp `t_k`. If so, consumes one message per queue and extends the
    /// grant to `t_k + min_j δ_j`, returning `(t_k, new grant)`.
    pub fn try_consume_batch(&mut self) -> Option<(SimTime, SimTime)> {
        if self.types.is_empty() {
            return None;
        }
        let head = self.types[0].queue.front().copied()?;
        for tq in &self.types[1..] {
            if tq.queue.front().copied() != Some(head) {
                return None;
            }
        }
        let min_delta = self
            .types
            .iter()
            .map(|t| t.delta)
            .min()
            .expect("at least one type");
        for tq in &mut self.types {
            tq.queue.pop_front();
            tq.depth_gauge.set(tq.queue.len() as u64);
        }
        let new_grant = head + min_delta;
        self.batch_grant = self.batch_grant.max(new_grant);
        self.stats.batches += 1;
        Some((head, self.grant()))
    }

    /// Pops the head of one queue once the grant covers it, handing the
    /// stamp to the follower for processing. Returns `None` while the head
    /// is still blocked (`stamp >= grant` and no batch window covers it).
    pub fn pop_ready(&mut self, type_id: MessageTypeId) -> Option<SimTime> {
        let grant = self.grant();
        let tq = self.types.get_mut(type_id.0 as usize)?;
        match tq.queue.front() {
            Some(&s) if s < grant => {
                let popped = tq.queue.pop_front();
                tq.depth_gauge.set(tq.queue.len() as u64);
                popped
            }
            _ => None,
        }
    }

    /// Advances the follower's clock. `t` must not pass the grant horizon.
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Causality`] when `t` exceeds the grant or
    /// runs backwards — either would break the lag invariant.
    pub fn advance_local(&mut self, t: SimTime) -> Result<(), CastanetError> {
        if t > self.grant() || t < self.local {
            return Err(CastanetError::Causality {
                stamp: t,
                local: self.local,
            });
        }
        self.local = t;
        if let Some(lag) = self.originator.checked_duration_since(t) {
            self.stats.max_lag = self.stats.max_lag.max(lag);
            self.lag_hist.record(lag.as_picos());
        }
        Ok(())
    }

    /// The follower's current time `t_cur`.
    #[must_use]
    pub fn local_time(&self) -> SimTime {
        self.local
    }

    /// The originator's last known time.
    #[must_use]
    pub fn originator_time(&self) -> SimTime {
        self.originator
    }

    /// Messages still queued for `type_id`.
    #[must_use]
    pub fn queued(&self, type_id: MessageTypeId) -> usize {
        self.types
            .get(type_id.0 as usize)
            .map_or(0, |t| t.queue.len())
    }

    /// Run statistics.
    #[must_use]
    pub fn stats(&self) -> SyncStats {
        self.stats
    }

    /// The lag invariant the paper relies on: the follower never runs ahead
    /// of the originator's last known time (its clock may equal the grant,
    /// which includes processing lookahead, but never exceeds it).
    #[must_use]
    pub fn lag_invariant_holds(&self) -> bool {
        self.local <= self.grant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn grant_follows_latest_stamp() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::from_us(1));
        assert_eq!(s.grant(), SimTime::ZERO);
        s.receive(a, us(10), false).unwrap();
        assert_eq!(s.grant(), us(10));
        s.receive(a, us(15), false).unwrap();
        assert_eq!(s.grant(), us(15));
    }

    #[test]
    fn local_cannot_pass_grant() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::from_us(1));
        s.receive(a, us(10), false).unwrap();
        s.advance_local(us(10)).unwrap(); // up to the grant is fine
        let err = s.advance_local(us(11)).unwrap_err();
        assert!(matches!(err, CastanetError::Causality { .. }));
        assert!(s.lag_invariant_holds());
    }

    #[test]
    fn local_cannot_run_backwards() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::ZERO);
        s.receive(a, us(10), false).unwrap();
        s.advance_local(us(5)).unwrap();
        assert!(s.advance_local(us(3)).is_err());
    }

    #[test]
    fn stale_message_is_a_causality_error() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::ZERO);
        s.receive(a, us(10), false).unwrap();
        s.advance_local(us(8)).unwrap();
        let err = s.receive(a, us(5), false).unwrap_err();
        assert!(matches!(err, CastanetError::Causality { .. }));
    }

    #[test]
    fn per_queue_order_enforced() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::ZERO);
        let b = s.register_type(SimDuration::ZERO);
        s.receive(a, us(10), false).unwrap();
        // Another queue may be behind the first (different streams)...
        s.receive(b, us(7), false).unwrap();
        // ...but within one queue stamps must not regress.
        assert!(s.receive(a, us(9), false).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let mut s = ConservativeSync::new();
        assert!(matches!(
            s.receive(MessageTypeId(0), us(1), false),
            Err(CastanetError::UnknownMessageType { type_id: 0 })
        ));
    }

    #[test]
    fn batch_window_adds_min_delta() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::from_us(3));
        let b = s.register_type(SimDuration::from_us(5));
        s.receive(a, us(10), false).unwrap();
        assert_eq!(s.try_consume_batch(), None, "queue b still empty");
        s.receive(b, us(10), false).unwrap();
        let (stamp, grant) = s.try_consume_batch().unwrap();
        assert_eq!(stamp, us(10));
        assert_eq!(grant, us(13), "10 us + min(3,5) us");
        // The batch consumed one message per queue.
        assert_eq!(s.queued(a), 0);
        assert_eq!(s.queued(b), 0);
        // Local may now advance into the batch window.
        s.advance_local(us(12)).unwrap();
        assert!(s.lag_invariant_holds());
    }

    #[test]
    fn mismatched_heads_do_not_batch() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::from_us(1));
        let b = s.register_type(SimDuration::from_us(1));
        s.receive(a, us(10), false).unwrap();
        s.receive(b, us(11), false).unwrap();
        assert_eq!(s.try_consume_batch(), None);
        assert_eq!(s.queued(a), 1);
    }

    #[test]
    fn null_messages_advance_time_without_queueing() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::from_us(1));
        s.receive(a, us(20), true).unwrap();
        assert_eq!(s.grant(), us(20));
        assert_eq!(s.queued(a), 0);
        assert_eq!(s.stats().null_messages, 1);
    }

    #[test]
    fn pop_ready_respects_grant() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::from_us(1));
        s.receive(a, us(10), false).unwrap();
        // Head stamp == grant: blocked ("smaller than t_k, but not equal").
        assert_eq!(s.pop_ready(a), None);
        s.receive(a, us(12), true).unwrap(); // null raises the grant
        assert_eq!(s.pop_ready(a), Some(us(10)));
        assert_eq!(s.pop_ready(a), None);
    }

    #[test]
    fn lag_statistics() {
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::ZERO);
        s.receive(a, us(100), false).unwrap();
        s.advance_local(us(40)).unwrap();
        assert_eq!(s.stats().max_lag, SimDuration::from_us(60));
        s.advance_local(us(95)).unwrap();
        assert_eq!(s.stats().max_lag, SimDuration::from_us(60), "max is sticky");
        assert_eq!(s.stats().messages, 1);
    }

    #[test]
    fn telemetry_tracks_lag_and_queue_depth() {
        let tel = Telemetry::enabled();
        let mut s = ConservativeSync::new();
        let a = s.register_type(SimDuration::ZERO);
        s.set_telemetry(&tel);
        s.receive(a, us(100), false).unwrap();
        s.advance_local(us(40)).unwrap();
        let snap = tel.metrics_snapshot();
        assert_eq!(snap.gauge("sync.queue_depth.type0"), Some(1));
        let lag = snap.histogram("sync.lag_ps").unwrap();
        assert_eq!(lag.count, 1);
        assert_eq!(lag.max, SimDuration::from_us(60).as_picos());
        // Types registered *after* attach get live gauges too.
        let b = s.register_type(SimDuration::ZERO);
        s.receive(b, us(100), false).unwrap();
        assert_eq!(
            tel.metrics_snapshot().gauge("sync.queue_depth.type1"),
            Some(1)
        );
    }

    /// A randomized schedule can never produce a causality error or break
    /// the lag invariant when the follower obeys grants — the property the
    /// protocol exists to guarantee.
    #[test]
    fn randomized_schedule_preserves_invariants() {
        let mut s = ConservativeSync::new();
        let types: Vec<MessageTypeId> = (0..4)
            .map(|i| s.register_type(SimDuration::from_us(1 + i)))
            .collect();
        let mut x: u64 = 0x9E37_79B9;
        let mut stamps = [SimTime::ZERO; 4];
        let mut originator = SimTime::ZERO;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let j = (x % 4) as usize;
            originator += SimDuration::from_ns(x % 500);
            stamps[j] = stamps[j].max(originator);
            s.receive(types[j], stamps[j], x.is_multiple_of(5)).unwrap();
            // The follower chases the originator's time (it does not run
            // into batch lookahead windows, because this workload gives no
            // spacing guarantee between messages).
            let target = s.originator_time();
            s.advance_local(target).unwrap();
            assert!(s.lag_invariant_holds());
        }
        assert!(s.stats().messages == 10_000);
    }
}
