//! Synchronization of parallel discrete-event simulators.
//!
//! "The simultaneous execution of OPNET with a VHDL simulator is a special
//! case of parallel distributed discrete-event simulation. A difficult
//! problem … is the avoidance of deadlock." (§3.1)
//!
//! Three synchronizers are provided:
//!
//! * [`conservative::ConservativeSync`] — the paper's protocol: per-message-
//!   type input queues `I_j`, user-specified processing delays `δ_j`,
//!   timing-window advancement, and the invariant that the HDL simulator's
//!   time always lags the network simulator's. Deadlock-free by
//!   construction.
//! * [`optimistic::OptimisticSync`] — the Time-Warp alternative the paper
//!   rejects: local time advances freely, causality errors trigger rollback
//!   to a saved state, and "the memory requirements for the storage of the
//!   simulator state turn out to be very large" — measurably so, in
//!   experiment E2.
//! * [`lockstep::LockstepSync`] — the naive fixed-quantum baseline, correct
//!   only when the quantum does not exceed the real lookahead and wasteful
//!   in synchronization operations when it is small.

pub mod conservative;
pub mod lockstep;
pub mod optimistic;

pub use conservative::ConservativeSync;
pub use lockstep::LockstepSync;
pub use optimistic::OptimisticSync;
