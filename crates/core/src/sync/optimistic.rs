//! Optimistic (Time-Warp) synchronization — the alternative the paper
//! rejects.
//!
//! "Optimistic methods … do not exclude causality errors. Local time is
//! allowed to advance independently until a causality error occurs. This
//! implies that a simulator has to be resynchronized, leading to a rollback
//! of the simulation time. Despite the fact that optimistic methods
//! potentially can achieve a larger speed-up, the memory requirements for
//! the storage of the simulator state turn out to be very large." (§3.1)
//!
//! [`OptimisticSync`] wraps any deterministic state machine (`Clone` state,
//! pure step function) in the Time-Warp discipline: it checkpoints the
//! state before each processed event, handles straggler messages by
//! rolling back to the state before the straggler's position and replaying,
//! emits *anti-messages* for outputs that the rollback invalidated, and
//! frees checkpoints only when the global virtual time (GVT) passes them —
//! which is exactly where the memory goes.

use crate::error::CastanetError;
use castanet_netsim::time::SimTime;
use castanet_obs::{EventKind, Telemetry, Track};

/// One timed input event to the wrapped state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent<E> {
    /// Virtual time of the event.
    pub stamp: SimTime,
    /// Tie-breaker for equal stamps (assign monotonically per sender).
    pub seq: u64,
    /// The event content.
    pub event: E,
}

impl<E> TimedEvent<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.stamp, self.seq)
    }
}

/// An output produced by the state machine, with its emission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOutput<O> {
    /// Virtual time of emission.
    pub stamp: SimTime,
    /// The output content.
    pub output: O,
}

/// What one `execute` call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome<O> {
    /// Outputs newly produced (in replay order).
    pub outputs: Vec<TimedOutput<O>>,
    /// Anti-messages: previously emitted outputs that a rollback revoked.
    pub anti_messages: Vec<TimedOutput<O>>,
    /// `true` when a rollback occurred.
    pub rolled_back: bool,
}

/// Run statistics, for the E2 conservative-vs-optimistic comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimisticStats {
    /// Events processed (including re-processing during replays).
    pub processed: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Events replayed due to rollbacks.
    pub replayed: u64,
    /// Anti-messages emitted.
    pub anti_messages: u64,
    /// High-water mark of held checkpoints (the paper's memory cost).
    pub peak_checkpoints: usize,
    /// High-water mark of checkpoint bytes (estimated).
    pub peak_checkpoint_bytes: usize,
}

/// Time-Warp wrapper around a deterministic state machine.
///
/// `step(state, event) -> outputs` must be deterministic: replaying the
/// same event sequence from the same state must give the same outputs.
///
/// Internal invariant: `history`, `checkpoints` (state *before* the
/// corresponding history entry) and `sent` (outputs *of* the corresponding
/// history entry) are three parallel, time-ordered vectors.
///
/// # Examples
///
/// ```
/// use castanet::sync::OptimisticSync;
/// use castanet::sync::optimistic::TimedEvent;
/// use castanet_netsim::time::SimTime;
///
/// // A running sum that outputs its value after each event.
/// let mut tw = OptimisticSync::new(0u64, |state: &mut u64, ev: &u32| {
///     *state += u64::from(*ev);
///     vec![*state]
/// }, 1024);
/// let out = tw.execute(TimedEvent { stamp: SimTime::from_us(10), seq: 0, event: 5 })?;
/// assert_eq!(out.outputs[0].output, 5);
/// // A straggler at 4 us forces a rollback and an anti-message.
/// let out = tw.execute(TimedEvent { stamp: SimTime::from_us(4), seq: 1, event: 1 })?;
/// assert!(out.rolled_back);
/// assert_eq!(out.anti_messages.len(), 1);
/// assert_eq!(out.outputs.last().map(|o| o.output), Some(6));
/// # Ok::<(), castanet::error::CastanetError>(())
/// ```
pub struct OptimisticSync<S, E, O, F>
where
    S: Clone,
    F: FnMut(&mut S, &E) -> Vec<O>,
{
    state: S,
    step: F,
    lvt: SimTime,
    gvt: SimTime,
    history: Vec<TimedEvent<E>>,
    checkpoints: Vec<S>,
    sent: Vec<Vec<TimedOutput<O>>>,
    max_checkpoints: usize,
    state_bytes: usize,
    stats: OptimisticStats,
    /// Telemetry handle; disabled (recording a no-op) by default.
    tel: Telemetry,
}

impl<S, E, O, F> std::fmt::Debug for OptimisticSync<S, E, O, F>
where
    S: Clone,
    F: FnMut(&mut S, &E) -> Vec<O>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimisticSync")
            .field("lvt", &self.lvt)
            .field("gvt", &self.gvt)
            .field("checkpoints", &self.checkpoints.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<S, E, O, F> OptimisticSync<S, E, O, F>
where
    S: Clone,
    E: Clone,
    O: Clone,
    F: FnMut(&mut S, &E) -> Vec<O>,
{
    /// Wraps `initial` state and a deterministic `step` function, with a
    /// hard `max_checkpoints` memory budget.
    pub fn new(initial: S, step: F, max_checkpoints: usize) -> Self {
        let state_bytes = std::mem::size_of::<S>();
        OptimisticSync {
            state: initial,
            step,
            lvt: SimTime::ZERO,
            gvt: SimTime::ZERO,
            history: Vec::new(),
            checkpoints: Vec::new(),
            sent: Vec::new(),
            max_checkpoints,
            state_bytes,
            stats: OptimisticStats::default(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: every rollback is then recorded as a
    /// structured [`EventKind::Rollback`] trace event on the follower track.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
    }

    /// Processes `event`, rolling back first if it is a straggler.
    ///
    /// # Errors
    ///
    /// * [`CastanetError::Causality`] when the straggler precedes the GVT
    ///   (nothing that old can be undone — a protocol misuse);
    /// * [`CastanetError::OptimisticMemoryExhausted`] when the checkpoint
    ///   budget would be exceeded.
    pub fn execute(&mut self, event: TimedEvent<E>) -> Result<ExecOutcome<O>, CastanetError> {
        if event.stamp < self.gvt {
            return Err(CastanetError::Causality {
                stamp: event.stamp,
                local: self.gvt,
            });
        }
        let mut outcome = ExecOutcome {
            outputs: Vec::new(),
            anti_messages: Vec::new(),
            rolled_back: false,
        };
        let key = event.key();
        let is_straggler = self.history.last().is_some_and(|e| e.key() > key);
        if is_straggler {
            outcome.rolled_back = true;
            self.stats.rollbacks += 1;
            // Position where the straggler belongs.
            let pos = self
                .history
                .iter()
                .position(|e| e.key() > key)
                .expect("straggler implies a later entry exists");
            // Restore the state from before history[pos].
            self.state = self.checkpoints[pos].clone();
            self.lvt = if pos == 0 {
                self.gvt
            } else {
                self.history[pos - 1].stamp
            };
            // Revoke outputs of the undone events.
            for group in self.sent.drain(pos..) {
                outcome.anti_messages.extend(group);
            }
            self.stats.anti_messages += outcome.anti_messages.len() as u64;
            self.checkpoints.truncate(pos);
            // Undone events: the straggler is spliced in front of them and
            // the whole tail replays.
            let tail: Vec<TimedEvent<E>> = self.history.drain(pos..).collect();
            let replay_count = tail.len();
            self.tel.record(
                Track::Follower,
                self.lvt.as_picos(),
                EventKind::Rollback {
                    to_ps: self.lvt.as_picos(),
                    replayed: replay_count as u64 + 1,
                },
            );
            outcome.outputs.extend(self.process(event)?);
            for ev in tail {
                outcome.outputs.extend(self.process(ev)?);
            }
            self.stats.replayed += replay_count as u64 + 1;
        } else {
            outcome.outputs = self.process(event)?;
        }
        self.update_peaks();
        Ok(outcome)
    }

    fn process(&mut self, event: TimedEvent<E>) -> Result<Vec<TimedOutput<O>>, CastanetError> {
        if self.checkpoints.len() >= self.max_checkpoints {
            return Err(CastanetError::OptimisticMemoryExhausted {
                checkpoints: self.checkpoints.len(),
            });
        }
        self.checkpoints.push(self.state.clone());
        self.lvt = self.lvt.max(event.stamp);
        let outs = (self.step)(&mut self.state, &event.event);
        self.stats.processed += 1;
        let timed: Vec<TimedOutput<O>> = outs
            .into_iter()
            .map(|output| TimedOutput {
                stamp: event.stamp,
                output,
            })
            .collect();
        self.sent.push(timed.clone());
        self.history.push(event);
        Ok(timed)
    }

    /// Advances the global virtual time, discarding checkpoints, history
    /// and sent-output records that can no longer roll back ("fossil
    /// collection").
    pub fn set_gvt(&mut self, gvt: SimTime) {
        self.gvt = self.gvt.max(gvt);
        let g = self.gvt;
        let keep_from = self
            .history
            .iter()
            .position(|e| e.stamp >= g)
            .unwrap_or(self.history.len());
        self.history.drain(..keep_from);
        self.checkpoints.drain(..keep_from);
        self.sent.drain(..keep_from);
    }

    fn update_peaks(&mut self) {
        self.stats.peak_checkpoints = self.stats.peak_checkpoints.max(self.checkpoints.len());
        self.stats.peak_checkpoint_bytes = self
            .stats
            .peak_checkpoint_bytes
            .max(self.checkpoints.len() * self.state_bytes);
    }

    /// Local virtual time.
    #[must_use]
    pub fn lvt(&self) -> SimTime {
        self.lvt
    }

    /// Global virtual time.
    #[must_use]
    pub fn gvt(&self) -> SimTime {
        self.gvt
    }

    /// Checkpoints currently held.
    #[must_use]
    pub fn checkpoints_held(&self) -> usize {
        self.checkpoints.len()
    }

    /// Current state (read-only view).
    #[must_use]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Run statistics.
    #[must_use]
    pub fn stats(&self) -> OptimisticStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    type SumSync = OptimisticSync<u64, u32, u64, fn(&mut u64, &u32) -> Vec<u64>>;

    fn sum_machine(max_cp: usize) -> SumSync {
        fn step(state: &mut u64, ev: &u32) -> Vec<u64> {
            *state += u64::from(*ev);
            vec![*state]
        }
        OptimisticSync::new(0u64, step, max_cp)
    }

    #[test]
    fn in_order_events_never_roll_back() {
        let mut tw = sum_machine(100);
        for (i, t) in [1u64, 2, 5, 9].into_iter().enumerate() {
            let out = tw
                .execute(TimedEvent {
                    stamp: us(t),
                    seq: i as u64,
                    event: 1,
                })
                .unwrap();
            assert!(!out.rolled_back);
            assert!(out.anti_messages.is_empty());
        }
        assert_eq!(*tw.state(), 4);
        assert_eq!(tw.stats().rollbacks, 0);
        assert_eq!(tw.lvt(), us(9));
    }

    #[test]
    fn straggler_rolls_back_and_replays() {
        let mut tw = sum_machine(100);
        tw.execute(TimedEvent {
            stamp: us(10),
            seq: 0,
            event: 10,
        })
        .unwrap();
        tw.execute(TimedEvent {
            stamp: us(20),
            seq: 1,
            event: 20,
        })
        .unwrap();
        // Straggler at 15 with value 5: final state must equal the in-order
        // result 10+5+20 = 35, as if no error had happened.
        let out = tw
            .execute(TimedEvent {
                stamp: us(15),
                seq: 2,
                event: 5,
            })
            .unwrap();
        assert!(out.rolled_back);
        assert_eq!(*tw.state(), 35);
        // The 30 emitted at t=20 was invalidated (it is now 35).
        assert!(out.anti_messages.iter().any(|a| a.output == 30));
        // Replayed outputs are the corrected values 15 then 35.
        let vals: Vec<u64> = out.outputs.iter().map(|o| o.output).collect();
        assert_eq!(vals, vec![15, 35]);
        assert_eq!(tw.stats().rollbacks, 1);
        assert_eq!(tw.stats().replayed, 2);
    }

    #[test]
    fn straggler_at_front_rolls_back_to_initial_state() {
        let mut tw = sum_machine(100);
        tw.execute(TimedEvent {
            stamp: us(10),
            seq: 0,
            event: 1,
        })
        .unwrap();
        let out = tw
            .execute(TimedEvent {
                stamp: us(2),
                seq: 1,
                event: 100,
            })
            .unwrap();
        assert!(out.rolled_back);
        assert_eq!(*tw.state(), 101);
        assert_eq!(tw.lvt(), us(10));
        // All previously sent outputs were revoked and re-emitted.
        assert_eq!(out.anti_messages.len(), 1);
        let vals: Vec<u64> = out.outputs.iter().map(|o| o.output).collect();
        assert_eq!(vals, vec![100, 101]);
    }

    #[test]
    fn equal_stamp_later_seq_is_not_a_straggler() {
        let mut tw = sum_machine(100);
        tw.execute(TimedEvent {
            stamp: us(10),
            seq: 0,
            event: 1,
        })
        .unwrap();
        let out = tw
            .execute(TimedEvent {
                stamp: us(10),
                seq: 1,
                event: 2,
            })
            .unwrap();
        assert!(!out.rolled_back);
        assert_eq!(*tw.state(), 3);
    }

    #[test]
    fn equal_result_to_sequential_execution_under_shuffles() {
        let stamps: Vec<u64> = vec![10, 30, 20, 5, 40, 25, 15];
        let mut tw = sum_machine(1000);
        for (i, &t) in stamps.iter().enumerate() {
            tw.execute(TimedEvent {
                stamp: us(t),
                seq: i as u64,
                event: t as u32,
            })
            .unwrap();
        }
        let expected: u64 = stamps.iter().sum();
        assert_eq!(*tw.state(), expected);
        assert!(tw.stats().rollbacks >= 2);
    }

    #[test]
    fn gvt_fossil_collection_frees_memory() {
        let mut tw = sum_machine(1000);
        for i in 0..100u64 {
            tw.execute(TimedEvent {
                stamp: us(i),
                seq: i,
                event: 1,
            })
            .unwrap();
        }
        assert_eq!(tw.checkpoints_held(), 100);
        tw.set_gvt(us(90));
        assert_eq!(tw.checkpoints_held(), 10);
        assert_eq!(tw.gvt(), us(90));
        assert_eq!(tw.stats().peak_checkpoints, 100);
    }

    #[test]
    fn straggler_before_gvt_is_an_error() {
        let mut tw = sum_machine(100);
        tw.execute(TimedEvent {
            stamp: us(10),
            seq: 0,
            event: 1,
        })
        .unwrap();
        tw.set_gvt(us(10));
        let err = tw
            .execute(TimedEvent {
                stamp: us(5),
                seq: 1,
                event: 1,
            })
            .unwrap_err();
        assert!(matches!(err, CastanetError::Causality { .. }));
    }

    #[test]
    fn checkpoint_budget_enforced() {
        let mut tw = sum_machine(3);
        for i in 0..3u64 {
            tw.execute(TimedEvent {
                stamp: us(i),
                seq: i,
                event: 1,
            })
            .unwrap();
        }
        let err = tw
            .execute(TimedEvent {
                stamp: us(10),
                seq: 9,
                event: 1,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            CastanetError::OptimisticMemoryExhausted { checkpoints: 3 }
        ));
        // GVT advance frees budget.
        tw.set_gvt(us(3));
        assert!(tw
            .execute(TimedEvent {
                stamp: us(10),
                seq: 9,
                event: 1
            })
            .is_ok());
    }

    #[test]
    fn memory_grows_with_delayed_gvt() {
        // The paper's complaint in one assert: without GVT advancement the
        // checkpoint memory grows linearly in processed events.
        let mut tw = sum_machine(100_000);
        for i in 0..5_000u64 {
            tw.execute(TimedEvent {
                stamp: us(i),
                seq: i,
                event: 1,
            })
            .unwrap();
        }
        assert_eq!(tw.stats().peak_checkpoints, 5_000);
        assert!(tw.stats().peak_checkpoint_bytes >= 5_000 * std::mem::size_of::<u64>());
    }

    #[test]
    fn rollback_after_gvt_restores_from_kept_prefix() {
        let mut tw = sum_machine(1000);
        for i in 0..10u64 {
            tw.execute(TimedEvent {
                stamp: us(10 * (i + 1)),
                seq: i,
                event: 1,
            })
            .unwrap();
        }
        tw.set_gvt(us(50));
        // Straggler at 55 us: must roll back only events at 60..100.
        let out = tw
            .execute(TimedEvent {
                stamp: us(55),
                seq: 99,
                event: 100,
            })
            .unwrap();
        assert!(out.rolled_back);
        assert_eq!(*tw.state(), 110);
        assert_eq!(out.anti_messages.len(), 5);
    }
}
