//! Hardware in the simulation loop (§3.3).
//!
//! "The hardware that is hooked to the hardware test board is connected to
//! the OPNET simulation via a CASTANET interface model that is configurable
//! with respect to the clock gating factor and the duration of one hardware
//! test cycle."
//!
//! [`BoardCosim`] is a [`crate::coupling::CoupledSimulator`] whose follower
//! is not an HDL kernel but the test board with a (simulated) prototype
//! chip: stimulus cells are compiled into per-clock pin frames, played in
//! hardware test cycles of a configurable duration, and the sampled
//! response frames are reassembled into cells. One board clock is one DUT
//! clock; board clock `k`'s edge maps to simulated time `(k+1) ·
//! clock_period`, so the board session has a well-defined position on the
//! co-simulation time axis.

use crate::convert::ByteStreamAssembler;
use crate::coupling::CoupledSimulator;
use crate::error::CastanetError;
use crate::message::{Message, MessagePayload, MessageTypeId};
use castanet_atm::addr::HeaderFormat;
use castanet_atm::cell::CELL_OCTETS;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Counter, Gauge, Telemetry};
use castanet_testboard::board::TestBoard;
use castanet_testboard::cycle::SessionStats;
use castanet_testboard::dut::HardwareDut;
use castanet_testboard::lane::LANES;
use castanet_testboard::pinmap::{PinFrame, PinMapConfig};
use castanet_testboard::scsi::{ScsiBus, ScsiStats};
use std::collections::VecDeque;

/// Inport numbers of one ingress line on the board.
#[derive(Debug, Clone, Copy)]
pub struct IngressPorts {
    /// Byte-wide data inport.
    pub data: usize,
    /// Cellsync inport.
    pub sync: usize,
    /// Byte-valid inport.
    pub enable: usize,
}

/// Outport numbers of one egress line on the board.
#[derive(Debug, Clone, Copy)]
pub struct EgressPorts {
    /// Byte-wide data outport.
    pub data: usize,
    /// Cellsync outport.
    pub sync: usize,
    /// Byte-valid outport.
    pub valid: usize,
}

struct IngressLine {
    ports: IngressPorts,
    next_free_clock: u64,
    cells: u64,
}

struct EgressLine {
    ports: EgressPorts,
    assembler: ByteStreamAssembler,
}

/// The test board as a coupled follower.
pub struct BoardCosim {
    board: TestBoard,
    dut: Box<dyn HardwareDut>,
    map: PinMapConfig,
    bus: ScsiBus,
    scsi: ScsiStats,
    session: SessionStats,
    clock_period: SimDuration,
    /// Board clocks already executed; local time = clocks_done · period.
    clocks_done: u64,
    /// Maximum clocks per hardware test cycle.
    cycle_len: u64,
    /// Pending stimulus frames for clocks `clocks_done..`.
    stimulus: VecDeque<PinFrame>,
    ingress: Vec<IngressLine>,
    egress: Vec<EgressLine>,
    response_type: MessageTypeId,
    format: HeaderFormat,
    undecodable: u64,
    /// Hardware-test-cycle counter (a no-op until telemetry is attached).
    obs_cycles: Counter,
    /// Board-clock gauge (a no-op until telemetry is attached).
    obs_clocks: Gauge,
}

impl std::fmt::Debug for BoardCosim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoardCosim")
            .field("clocks_done", &self.clocks_done)
            .field("pending_frames", &self.stimulus.len())
            .field("session", &self.session)
            .finish()
    }
}

impl BoardCosim {
    /// Assembles a board follower. The board must already be configured
    /// with `map` (plus lane directions) and its clock; `cycle_len` bounds
    /// each hardware activity cycle and must fit the board's duration
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_len` is zero or outside the board's window.
    #[must_use]
    pub fn new(
        board: TestBoard,
        dut: Box<dyn HardwareDut>,
        map: PinMapConfig,
        bus: ScsiBus,
        cycle_len: u64,
        response_type: MessageTypeId,
        format: HeaderFormat,
    ) -> Self {
        let (min, max) = board.duration_window();
        assert!(
            (min..=max).contains(&cycle_len),
            "cycle length {cycle_len} outside board window [{min}, {max}]"
        );
        let clock_period = SimDuration::from_freq_hz(board.clock_hz());
        BoardCosim {
            board,
            dut,
            map,
            bus,
            scsi: ScsiStats::default(),
            session: SessionStats::default(),
            clock_period,
            clocks_done: 0,
            cycle_len,
            stimulus: VecDeque::new(),
            ingress: Vec::new(),
            egress: Vec::new(),
            response_type,
            format,
            undecodable: 0,
            obs_cycles: Counter::default(),
            obs_clocks: Gauge::default(),
        }
    }

    /// Registers an ingress line (three inport numbers). Returns its
    /// co-simulation port index.
    pub fn add_ingress(&mut self, ports: IngressPorts) -> usize {
        self.ingress.push(IngressLine {
            ports,
            next_free_clock: 0,
            cells: 0,
        });
        self.ingress.len() - 1
    }

    /// Registers an egress line (three outport numbers). Returns its
    /// co-simulation port index.
    pub fn add_egress(&mut self, ports: EgressPorts) -> usize {
        self.egress.push(EgressLine {
            ports,
            assembler: ByteStreamAssembler::new(self.format),
        });
        self.egress.len() - 1
    }

    /// The board clock whose edge is the first at-or-after `t`
    /// (edges at `(k+1) · period`).
    fn clock_at_or_after(&self, t: SimTime) -> u64 {
        let period = self.clock_period.as_picos();
        let ps = t.as_picos();
        if ps <= period {
            return 0;
        }
        ps.div_ceil(period) - 1
    }

    fn frame_mut(stimulus: &mut VecDeque<PinFrame>, clocks_done: u64, clock: u64) -> &mut PinFrame {
        debug_assert!(clock >= clocks_done, "stimulus in the past");
        let idx = (clock - clocks_done) as usize;
        while stimulus.len() <= idx {
            stimulus.push_back([0u8; LANES]);
        }
        &mut stimulus[idx]
    }

    /// Board-session time model (SW/HW activity split) so far.
    #[must_use]
    pub fn session_stats(&self) -> SessionStats {
        self.session
    }

    /// SCSI transfer accounting so far.
    #[must_use]
    pub fn scsi_stats(&self) -> ScsiStats {
        self.scsi
    }

    /// Board clocks executed so far.
    #[must_use]
    pub fn clocks_done(&self) -> u64 {
        self.clocks_done
    }

    /// DUT outputs that failed cell reassembly.
    #[must_use]
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    fn run_one_cycle(&mut self, clocks: u64) -> Result<Vec<Message>, CastanetError> {
        // SW activity: assemble and download stimulus.
        let mut words: Vec<PinFrame> = Vec::with_capacity(clocks as usize);
        for _ in 0..clocks {
            words.push(self.stimulus.pop_front().unwrap_or([0u8; LANES]));
        }
        self.session.sw_time += self.scsi.record(&self.bus, words.len() * LANES);
        self.board.load_stimulus(words)?;

        // HW activity at real-time speed.
        self.board.run_hw_cycle(self.dut.as_mut(), clocks)?;
        self.session.hw_clocks += clocks;
        self.session.hw_time += self.board.real_time(clocks);

        // SW activity: read responses back and reassemble cells.
        let frames = self.board.response().to_vec();
        self.session.sw_time += self.scsi.record(&self.bus, frames.len() * LANES);
        self.session.cycles += 1;

        let mut out = Vec::new();
        for (offset, frame) in frames.iter().enumerate() {
            let clock = self.clocks_done + offset as u64;
            let stamp = SimTime::from_picos((clock + 1) * self.clock_period.as_picos());
            for (port, line) in self.egress.iter_mut().enumerate() {
                let valid = self.map.decode_outport(line.ports.valid, frame)?;
                if valid != 1 {
                    continue;
                }
                let data = self.map.decode_outport(line.ports.data, frame)? as u8;
                let sync = self.map.decode_outport(line.ports.sync, frame)? == 1;
                match line.assembler.push(data, sync) {
                    Ok(Some(cell)) => out.push(Message {
                        stamp,
                        type_id: self.response_type,
                        port,
                        payload: MessagePayload::Cell(cell),
                    }),
                    Ok(None) => {}
                    Err(_) => {
                        self.undecodable += 1;
                        out.push(Message {
                            stamp,
                            type_id: self.response_type,
                            port,
                            payload: MessagePayload::Raw(vec![data]),
                        });
                    }
                }
            }
        }
        self.clocks_done += clocks;
        self.obs_cycles.inc();
        self.obs_clocks.set(self.clocks_done);
        Ok(out)
    }
}

impl CoupledSimulator for BoardCosim {
    fn deliver(&mut self, msg: Message) -> Result<(), CastanetError> {
        let MessagePayload::Cell(cell) = &msg.payload else {
            return Err(CastanetError::Convert(format!(
                "board follower can only play cell payloads, got {}",
                msg.payload.kind()
            )));
        };
        if msg.port >= self.ingress.len() {
            return Err(CastanetError::UnknownPort { port: msg.port });
        }
        let wire = cell.encode(self.format)?;
        let start = self
            .clock_at_or_after(msg.stamp)
            .max(self.ingress[msg.port].next_free_clock)
            .max(self.clocks_done);
        let ports = self.ingress[msg.port].ports;
        let map = &self.map;
        for (k, &byte) in wire.iter().enumerate() {
            let clock = start + k as u64;
            let frame = Self::frame_mut(&mut self.stimulus, self.clocks_done, clock);
            map.encode_inport(ports.data, u64::from(byte), frame)?;
            map.encode_inport(ports.sync, u64::from(k == 0), frame)?;
            map.encode_inport(ports.enable, 1, frame)?;
        }
        let line = &mut self.ingress[msg.port];
        line.next_free_clock = start + CELL_OCTETS as u64;
        line.cells += 1;
        Ok(())
    }

    fn advance_until(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        // Clocks whose edge `(k+1)·period` is strictly before `horizon`.
        let period = self.clock_period.as_picos();
        let target = horizon.as_picos().div_ceil(period).saturating_sub(1);
        let mut out = Vec::new();
        while self.clocks_done < target {
            let clocks = (target - self.clocks_done).min(self.cycle_len);
            out.extend(self.run_one_cycle(clocks)?);
            if !out.is_empty() {
                // Hand responses back immediately so the coupling can
                // re-evaluate; the follower's overshoot past a response is
                // bounded by one test cycle.
                break;
            }
        }
        Ok(out)
    }

    fn advance_batch(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        // Batched test-cycle scheduling: the whole grant window is played
        // as back-to-back board cycles with a single response sweep per
        // cycle. Every response is already stamped at its capture clock, so
        // there is no need to stop early — this is what the parallel
        // executor routes hwloop scheduling through.
        let period = self.clock_period.as_picos();
        let target = horizon.as_picos().div_ceil(period).saturating_sub(1);
        let mut out = Vec::new();
        while self.clocks_done < target {
            let clocks = (target - self.clocks_done).min(self.cycle_len);
            out.extend(self.run_one_cycle(clocks)?);
        }
        Ok(out)
    }

    fn now(&self) -> SimTime {
        SimTime::from_picos(self.clocks_done * self.clock_period.as_picos())
    }

    fn set_telemetry(&mut self, tel: &Telemetry) {
        self.obs_cycles = tel.counter("board.test_cycles");
        self.obs_clocks = tel.gauge("board.clocks_done");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;
    use castanet_atm::cell::AtmCell;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
    use castanet_testboard::dut::MappedCycleDut;

    /// Board fixture with a 2-port RTL switch as the "prototype chip":
    /// route 1/40 -> line 1 as 7/70. The chip exposes only its data-path
    /// pins (config is pre-loaded, counters internal), as real silicon
    /// would — and as the 128-pin board requires.
    fn board_fixture(cycle_len: u64) -> BoardCosim {
        use castanet_testboard::dut::PortSubsetDut;
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 32,
            table_capacity: 8,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        // Inputs 0..6 = rx triples of both lines; outputs 0..6 = tx triples.
        let chip = PortSubsetDut::new(Box::new(switch), (0..6).collect(), (0..6).collect());
        let (mapped, lanes) = MappedCycleDut::auto_mapped(Box::new(chip));
        let map = mapped.map().clone();
        let mut board = TestBoard::with_memory_depth(4096);
        board.configure(map.clone(), lanes, 20_000_000).unwrap();
        let mut cosim = BoardCosim::new(
            board,
            Box::new(mapped),
            map,
            ScsiBus::default(),
            cycle_len,
            MessageTypeId(5),
            HeaderFormat::Uni,
        );
        // Switch input ports: rx_data0, rx_sync0, rx_en0, rx_data1, ... =
        // inport numbers 0..; cfg ports 6..11 stay zero.
        cosim.add_ingress(IngressPorts {
            data: 0,
            sync: 1,
            enable: 2,
        });
        cosim.add_ingress(IngressPorts {
            data: 3,
            sync: 4,
            enable: 5,
        });
        // Outputs: tx_data0, tx_sync0, tx_valid0, tx_data1, tx_sync1,
        // tx_valid1, counters.
        cosim.add_egress(EgressPorts {
            data: 0,
            sync: 1,
            valid: 2,
        });
        cosim.add_egress(EgressPorts {
            data: 3,
            sync: 4,
            valid: 5,
        });
        cosim
    }

    fn cell(vci: u16) -> AtmCell {
        AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [0xC3; 48])
    }

    #[test]
    fn cell_travels_through_the_board_dut() {
        let mut cosim = board_fixture(256);
        let msg = Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40));
        cosim.deliver(msg).unwrap();
        // 53 ingress clocks + 53 egress clocks + slack.
        let horizon = SimTime::from_picos(200 * 50_000);
        let responses = cosim.advance_until(horizon).unwrap();
        assert_eq!(responses.len(), 1);
        let got = responses[0].as_cell().expect("decodable cell");
        assert_eq!(got.id(), VpiVci::uni(7, 70).unwrap());
        assert_eq!(got.payload, [0xC3; 48]);
        assert_eq!(responses[0].port, 1);
        assert!(responses[0].stamp < horizon);
        assert_eq!(cosim.undecodable(), 0);
    }

    #[test]
    fn time_advances_in_test_cycles() {
        let mut cosim = board_fixture(64);
        let horizon = SimTime::from_picos(300 * 50_000);
        cosim.advance_until(horizon).unwrap();
        // Edges strictly before horizon: clock k edge = (k+1)*50ns < 300*50ns
        // -> k <= 298 -> 299 clocks.
        assert_eq!(cosim.clocks_done(), 299);
        assert_eq!(cosim.now(), SimTime::from_picos(299 * 50_000));
        // 299 clocks at 64 per cycle = 5 cycles.
        assert_eq!(cosim.session_stats().cycles, 5);
    }

    #[test]
    fn session_time_splits_into_sw_and_hw() {
        let mut cosim = board_fixture(128);
        cosim
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40)))
            .unwrap();
        cosim
            .advance_until(SimTime::from_picos(200 * 50_000))
            .unwrap();
        let s = cosim.session_stats();
        assert!(s.hw_time > std::time::Duration::ZERO);
        assert!(s.sw_time > std::time::Duration::ZERO);
        assert!(s.efficiency() > 0.0 && s.efficiency() < 1.0);
        assert!(cosim.scsi_stats().transfers >= 2);
    }

    #[test]
    fn non_cell_payload_rejected() {
        let mut cosim = board_fixture(64);
        let msg = Message {
            stamp: SimTime::ZERO,
            type_id: MessageTypeId(0),
            port: 0,
            payload: MessagePayload::Control(3),
        };
        assert!(matches!(cosim.deliver(msg), Err(CastanetError::Convert(_))));
    }

    #[test]
    fn unknown_port_rejected() {
        let mut cosim = board_fixture(64);
        let msg = Message::cell(SimTime::ZERO, MessageTypeId(0), 9, cell(40));
        assert!(matches!(
            cosim.deliver(msg),
            Err(CastanetError::UnknownPort { port: 9 })
        ));
    }

    #[test]
    fn back_to_back_cells_queue_on_the_line() {
        let mut cosim = board_fixture(512);
        for _ in 0..3 {
            cosim
                .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40)))
                .unwrap();
        }
        let responses = cosim
            .advance_until(SimTime::from_picos(400 * 50_000))
            .unwrap();
        assert_eq!(responses.len(), 3);
        // Responses are time-ordered.
        assert!(responses.windows(2).all(|w| w[0].stamp <= w[1].stamp));
    }

    #[test]
    fn late_stamp_defers_to_future_clock() {
        let mut cosim = board_fixture(512);
        let stamp = SimTime::from_picos(100 * 50_000);
        cosim
            .deliver(Message::cell(stamp, MessageTypeId(0), 0, cell(40)))
            .unwrap();
        let responses = cosim
            .advance_until(SimTime::from_picos(400 * 50_000))
            .unwrap();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].stamp > stamp);
    }

    #[test]
    fn advance_batch_matches_chunked_advance_until() {
        // The batched test-cycle sweep used by the parallel executor must
        // produce exactly the responses the serial early-return loop does.
        let horizon = SimTime::from_picos(500 * 50_000);
        let stimulus: Vec<Message> = (0..3)
            .map(|k| {
                Message::cell(
                    SimTime::from_picos(k * 60 * 50_000),
                    MessageTypeId(0),
                    0,
                    cell(40),
                )
            })
            .collect();

        let mut serial = board_fixture(128);
        for m in &stimulus {
            serial.deliver(m.clone()).unwrap();
        }
        let mut chunked = Vec::new();
        loop {
            let r = serial.advance_until(horizon).unwrap();
            if r.is_empty() {
                break;
            }
            chunked.extend(r);
        }

        let mut batched = board_fixture(128);
        for m in &stimulus {
            batched.deliver(m.clone()).unwrap();
        }
        let swept = batched.advance_batch(horizon).unwrap();

        assert_eq!(chunked.len(), 3);
        assert_eq!(swept, chunked, "identical responses and stamps");
        assert_eq!(batched.clocks_done(), serial.clocks_done());
    }

    #[test]
    fn board_couples_through_the_parallel_executor() {
        // Hardware-in-the-loop test-cycle scheduling routed through
        // ParallelCoupling: network model on the main thread, board session
        // on the follower thread.
        use crate::parallel::ParallelCoupling;
        use crate::sync::conservative::ConservativeSync;
        use castanet_atm::traffic::source::TrafficSourceProcess;
        use castanet_atm::traffic::Cbr;
        use castanet_netsim::event::PortId;
        use castanet_netsim::kernel::Kernel;
        use castanet_netsim::process::CollectorProcess;

        let board_clk = SimDuration::from_ns(50);
        let mut net = Kernel::new(5);
        let node = net.add_node("hwloop");
        let src = net.add_module(
            node,
            "src",
            Box::new(
                TrafficSourceProcess::new(
                    VpiVci::uni(1, 40).unwrap(),
                    Box::new(Cbr::new(SimDuration::from_us(10))),
                )
                .with_limit(4),
            ),
        );
        let mut sync = ConservativeSync::new();
        let cell_type = sync.register_type(board_clk * 53);
        let (iface_proc, outbox) = crate::interface::CastanetInterfaceProcess::new(cell_type);
        let iface = net.add_module(node, "castanet", Box::new(iface_proc));
        net.connect_stream(src, PortId(0), iface, PortId(0))
            .unwrap();
        let (collector, got) = CollectorProcess::new();
        let sink = net.add_module(node, "sink", Box::new(collector));
        net.connect_stream(iface, PortId(1), sink, PortId(0))
            .unwrap();

        let follower = board_fixture(128);
        let mut coupling = ParallelCoupling::new(net, follower, sync, cell_type, iface, outbox);
        let stats = coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(stats.messages_to_follower, 4);
        assert_eq!(stats.responses, 4);
        assert_eq!(got.len(), 4);
        for (_, pkt) in got.take() {
            let c = pkt.payload::<AtmCell>().expect("cell");
            assert_eq!(c.id(), VpiVci::uni(7, 70).unwrap());
        }
        assert!(coupling.sync().lag_invariant_holds());
        assert!(coupling.follower().session_stats().cycles > 0);
    }
}
