//! Co-verification session reporting.
//!
//! Assembles the quantities the paper reports — cells processed, simulated
//! DUT clock cycles, wall-clock time, and the resulting "clock cycles per
//! second" figure of §2 — together with the comparison verdict and the
//! synchronization statistics, into one displayable summary.

use crate::compare::ComparisonReport;
use crate::coupling::CouplingStats;
use crate::sync::conservative::SyncStats;
use castanet_netsim::time::{SimDuration, SimTime};
use std::fmt;
use std::time::{Duration, Instant};

/// Summary of one co-verification run.
#[derive(Debug, Clone)]
pub struct VerificationSummary {
    /// Descriptive label (e.g. "E1 co-simulation, 10000 cells").
    pub label: String,
    /// Cells offered to the DUT.
    pub cells_offered: u64,
    /// DUT clock cycles covered by the run.
    pub simulated_clocks: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Coupling counters.
    pub coupling: CouplingStats,
    /// Synchronization-protocol counters.
    pub sync: SyncStats,
    /// The reference-vs-DUT comparison.
    pub comparison: ComparisonReport,
}

impl VerificationSummary {
    /// The paper's throughput metric: simulated DUT clock cycles per
    /// wall-clock second.
    #[must_use]
    pub fn clock_cycles_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.simulated_clocks as f64 / self.wall.as_secs_f64()
    }

    /// `true` when the comparison passed and no protocol anomaly occurred.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.comparison.passed() && self.coupling.late_responses == 0
    }
}

impl fmt::Display for VerificationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.label)?;
        writeln!(
            f,
            "  cells: {} offered, {} responses ({} late)",
            self.cells_offered, self.coupling.responses, self.coupling.late_responses
        )?;
        writeln!(
            f,
            "  events: {} network, {} messages, {} null",
            self.coupling.net_events, self.sync.messages, self.sync.null_messages
        )?;
        writeln!(
            f,
            "  simulated {} DUT clocks in {:.3} s -> {:.0} clock cycles/s",
            self.simulated_clocks,
            self.wall.as_secs_f64(),
            self.clock_cycles_per_sec()
        )?;
        write!(f, "  {}", self.comparison)?;
        writeln!(
            f,
            "  verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )?;
        Ok(())
    }
}

/// Runs `f`, returning its result with the measured wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Converts a simulated time span into DUT clock cycles for a given clock
/// period (rounding down).
///
/// # Panics
///
/// Panics if `clock_period` is zero.
#[must_use]
pub fn clocks_in(span: SimTime, clock_period: SimDuration) -> u64 {
    assert!(!clock_period.is_zero(), "clock period must be non-zero");
    span.as_picos() / clock_period.as_picos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::StreamComparator;

    fn summary(wall_ms: u64, clocks: u64) -> VerificationSummary {
        VerificationSummary {
            label: "test".to_string(),
            cells_offered: 10,
            simulated_clocks: clocks,
            wall: Duration::from_millis(wall_ms),
            coupling: CouplingStats::default(),
            sync: SyncStats::default(),
            comparison: StreamComparator::new(None).finish(),
        }
    }

    #[test]
    fn cycles_per_second_metric() {
        let s = summary(500, 650);
        assert!((s.clock_cycles_per_sec() - 1300.0).abs() < 1e-9);
        assert_eq!(summary(0, 100).clock_cycles_per_sec(), 0.0);
    }

    #[test]
    fn pass_fail_verdict() {
        let mut s = summary(1, 1);
        assert!(s.passed());
        s.coupling.late_responses = 1;
        assert!(!s.passed());
    }

    #[test]
    fn display_contains_key_numbers() {
        let text = summary(1000, 1300).to_string();
        assert!(text.contains("1300 clock cycles/s"));
        assert!(text.contains("PASS"));
    }

    #[test]
    fn timed_measures_wall_clock() {
        let ((), wall) = timed(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(wall >= Duration::from_millis(5));
    }

    #[test]
    fn clocks_in_span() {
        assert_eq!(clocks_in(SimTime::from_us(1), SimDuration::from_ns(20)), 50);
        assert_eq!(clocks_in(SimTime::from_ns(19), SimDuration::from_ns(20)), 0);
    }
}
