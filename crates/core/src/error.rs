//! Error type of the CASTANET coupling layer.

use castanet_netsim::time::SimTime;
use std::fmt;

/// Errors surfaced by coupling, synchronization and conversion.
#[derive(Debug)]
#[non_exhaustive]
pub enum CastanetError {
    /// A message arrived with a time stamp in the receiver's past — the
    /// causality error of Fig. 3 that the conservative protocol must
    /// prevent.
    Causality {
        /// The offending message stamp.
        stamp: SimTime,
        /// The receiver's local time.
        local: SimTime,
    },
    /// A message referenced an unregistered message type.
    UnknownMessageType {
        /// The type id used.
        type_id: u32,
    },
    /// A message referenced an unknown co-simulation port.
    UnknownPort {
        /// The port index used.
        port: usize,
    },
    /// Conversion between abstract data and bit-level form failed.
    Convert(String),
    /// Framing/serialization of an IPC message failed.
    Codec(String),
    /// The underlying IPC transport failed.
    Transport(String),
    /// An error from the network-simulator side.
    Netsim(castanet_netsim::NetsimError),
    /// An error from the RTL-simulator side.
    Rtl(castanet_rtl::RtlError),
    /// An error from the test-board side.
    Board(castanet_testboard::BoardError),
    /// An error from the ATM model suite.
    Atm(castanet_atm::AtmError),
    /// The optimistic synchronizer exhausted its state-saving memory.
    OptimisticMemoryExhausted {
        /// Checkpoints held when the limit was hit.
        checkpoints: usize,
    },
    /// Static pre-flight analysis rejected the configuration before the
    /// run started (strict mode). Each entry is one finding, prefixed with
    /// its stable `CAST0xx` diagnostic code.
    Preflight(Vec<String>),
}

impl fmt::Display for CastanetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CastanetError::Causality { stamp, local } => {
                write!(
                    f,
                    "message stamped {stamp} arrived in the local past (now {local})"
                )
            }
            CastanetError::UnknownMessageType { type_id } => {
                write!(f, "message type {type_id} is not registered")
            }
            CastanetError::UnknownPort { port } => {
                write!(f, "co-simulation port {port} is not configured")
            }
            CastanetError::Convert(msg) => write!(f, "conversion failed: {msg}"),
            CastanetError::Codec(msg) => write!(f, "message codec failed: {msg}"),
            CastanetError::Transport(msg) => write!(f, "ipc transport failed: {msg}"),
            CastanetError::Netsim(e) => write!(f, "network simulator: {e}"),
            CastanetError::Rtl(e) => write!(f, "rtl simulator: {e}"),
            CastanetError::Board(e) => write!(f, "test board: {e}"),
            CastanetError::Atm(e) => write!(f, "atm model: {e}"),
            CastanetError::OptimisticMemoryExhausted { checkpoints } => {
                write!(
                    f,
                    "optimistic synchronizer out of checkpoint memory ({checkpoints} held)"
                )
            }
            CastanetError::Preflight(findings) => {
                write!(
                    f,
                    "pre-flight check rejected the configuration: {}",
                    findings.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for CastanetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CastanetError::Netsim(e) => Some(e),
            CastanetError::Rtl(e) => Some(e),
            CastanetError::Board(e) => Some(e),
            CastanetError::Atm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<castanet_netsim::NetsimError> for CastanetError {
    fn from(e: castanet_netsim::NetsimError) -> Self {
        CastanetError::Netsim(e)
    }
}

impl From<castanet_rtl::RtlError> for CastanetError {
    fn from(e: castanet_rtl::RtlError) -> Self {
        CastanetError::Rtl(e)
    }
}

impl From<castanet_testboard::BoardError> for CastanetError {
    fn from(e: castanet_testboard::BoardError) -> Self {
        CastanetError::Board(e)
    }
}

impl From<castanet_atm::AtmError> for CastanetError {
    fn from(e: castanet_atm::AtmError) -> Self {
        CastanetError::Atm(e)
    }
}

impl From<std::io::Error> for CastanetError {
    fn from(e: std::io::Error) -> Self {
        CastanetError::Transport(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CastanetError::Causality {
            stamp: SimTime::from_ns(5),
            local: SimTime::from_ns(9),
        };
        assert_eq!(
            e.to_string(),
            "message stamped 5 ns arrived in the local past (now 9 ns)"
        );
        assert!(CastanetError::UnknownMessageType { type_id: 7 }
            .to_string()
            .contains("type 7"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = CastanetError::from(castanet_netsim::NetsimError::TopologyFrozen);
        assert!(e.source().is_some());
        let e = CastanetError::from(castanet_atm::AtmError::HecMismatch);
        assert!(e.to_string().contains("hec"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CastanetError>();
    }
}
