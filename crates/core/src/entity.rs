//! The co-simulation entity instantiated inside the HDL simulation.
//!
//! "In the VSS simulation a C-language based co-simulation entity is
//! instantiated that receives messages from the OPNET-side interface
//! process. It also performs signal conditioning, e.g. mapping a data
//! structure to bit- or word-level signal streams and generation of
//! additional control signals. The responses from the device under test are
//! sent back to the CASTANET interface node." (§3)
//!
//! [`CosimEntity`] is that entity for byte-serial ATM DUT lines: incoming
//! cell messages are conditioned into 53 clock-aligned pokes of the
//! `atmdata`/`cellsync`/`enable` signals of an ingress line; egress lines
//! are watched by stream monitors whose completed cells become response
//! messages.

use crate::convert::{cell_to_byte_ops_into, ByteOp};
use crate::error::CastanetError;
use crate::message::{Message, MessagePayload, MessageTypeId};
use castanet_atm::addr::HeaderFormat;
use castanet_atm::cell::{AtmCell, CELL_OCTETS};
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::logic::Logic;
use castanet_rtl::signal::SignalId;
use castanet_rtl::sim::Simulator;
use castanet_rtl::testbench::{CellStreamMonitor, MonitorHandle};
use castanet_rtl::vector::LogicVector;

/// The ingress-side signals of one DUT line.
#[derive(Debug, Clone, Copy)]
pub struct IngressSignals {
    /// The byte-wide data port (`atmdata`).
    pub data: SignalId,
    /// Cell synchronization strobe.
    pub sync: SignalId,
    /// Byte-valid qualifier.
    pub enable: SignalId,
}

/// The egress-side signals of one DUT line.
#[derive(Debug, Clone, Copy)]
pub struct EgressSignals {
    /// The byte-wide data port.
    pub data: SignalId,
    /// Cell synchronization strobe.
    pub sync: SignalId,
    /// Byte-valid qualifier.
    pub valid: SignalId,
}

#[derive(Debug)]
struct IngressPort {
    signals: IngressSignals,
    /// Earliest time the next cell's first byte may be driven.
    next_free: SimTime,
    cells_driven: u64,
}

/// The co-simulation entity: signal conditioning between messages and the
/// DUT's pins.
pub struct CosimEntity {
    clock_period: SimDuration,
    /// Time of the first rising clock edge.
    first_edge: SimTime,
    /// Stimulus setup lead before an edge.
    setup: SimDuration,
    format: HeaderFormat,
    response_type: MessageTypeId,
    ingress: Vec<IngressPort>,
    egress: Vec<MonitorHandle>,
    /// Signal triples of each egress line, kept for introspection (the
    /// monitor itself owns the live tap). Indexed like `egress`.
    egress_signals: Vec<EgressSignals>,
    responses_sent: u64,
    /// Reused per-cell bus-operation buffer (53 entries after warm-up).
    ops_scratch: Vec<ByteOp>,
    /// Reused monitor-drain buffer for [`CosimEntity::collect_into`].
    captured_scratch: Vec<(SimTime, [u8; CELL_OCTETS])>,
}

impl std::fmt::Debug for CosimEntity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CosimEntity")
            .field("ingress", &self.ingress.len())
            .field("egress", &self.egress.len())
            .field("responses_sent", &self.responses_sent)
            .finish()
    }
}

impl CosimEntity {
    /// Creates an entity for a DUT clocked by a [`Simulator::add_clock`]
    /// clock of `clock_period` (first rising edge at `period / 2`).
    /// Cells arriving back from the DUT are stamped as `response_type`
    /// messages.
    ///
    /// # Panics
    ///
    /// Panics if `clock_period` is shorter than 4 ps (no setup margin).
    #[must_use]
    pub fn new(
        clock_period: SimDuration,
        format: HeaderFormat,
        response_type: MessageTypeId,
    ) -> Self {
        assert!(
            clock_period.as_picos() >= 4,
            "clock period too short for stimulus setup"
        );
        CosimEntity {
            clock_period,
            first_edge: SimTime::ZERO + clock_period / 2,
            setup: clock_period / 4,
            format,
            response_type,
            ingress: Vec::new(),
            egress: Vec::new(),
            egress_signals: Vec::new(),
            responses_sent: 0,
            ops_scratch: Vec::new(),
            captured_scratch: Vec::new(),
        }
    }

    /// Registers an ingress line (a DUT input port triple). Returns its
    /// co-simulation port index.
    pub fn add_ingress(&mut self, signals: IngressSignals) -> usize {
        self.ingress.push(IngressPort {
            signals,
            next_free: SimTime::ZERO,
            cells_driven: 0,
        });
        self.ingress.len() - 1
    }

    /// Registers an egress line: attaches a stream monitor to the given DUT
    /// output signals. Returns its co-simulation port index.
    pub fn add_egress(
        &mut self,
        sim: &mut Simulator,
        clk: SignalId,
        signals: EgressSignals,
    ) -> usize {
        let (monitor, handle) =
            CellStreamMonitor::new(clk, signals.data, signals.sync, signals.valid);
        // The monitor samples on rising edges only; a rising-filtered
        // subscription halves its clock wake-ups.
        sim.add_process_rising(Box::new(monitor), &[clk], &[]);
        self.egress.push(handle);
        self.egress_signals.push(signals);
        self.egress.len() - 1
    }

    /// The signal triples of every registered ingress line, in port order.
    pub fn ingress_signals(&self) -> impl Iterator<Item = IngressSignals> + '_ {
        self.ingress.iter().map(|p| p.signals)
    }

    /// The signal triples of every registered egress line, in port order.
    pub fn egress_signals(&self) -> impl Iterator<Item = EgressSignals> + '_ {
        self.egress_signals.iter().copied()
    }

    /// Number of registered ingress lines.
    #[must_use]
    pub fn ingress_count(&self) -> usize {
        self.ingress.len()
    }

    /// Number of registered egress lines.
    #[must_use]
    pub fn egress_count(&self) -> usize {
        self.egress.len()
    }

    /// The cell header format this entity drives and expects.
    #[must_use]
    pub fn format(&self) -> HeaderFormat {
        self.format
    }

    /// The message type responses are stamped with.
    #[must_use]
    pub fn response_type(&self) -> MessageTypeId {
        self.response_type
    }

    /// The first rising clock edge at or after `t`.
    #[must_use]
    pub fn edge_at_or_after(&self, t: SimTime) -> SimTime {
        edge_at_or_after_(self.first_edge, self.clock_period, t)
    }

    /// Delivers one message: conditions its cell onto the addressed ingress
    /// line, starting at the first free cell boundary at or after the
    /// message stamp. Returns the time of the last byte's clock edge.
    ///
    /// # Errors
    ///
    /// * [`CastanetError::UnknownPort`] for an unregistered port;
    /// * [`CastanetError::Convert`] for a payload that is not a cell;
    /// * scheduling errors from the RTL simulator.
    pub fn deliver(
        &mut self,
        sim: &mut Simulator,
        msg: &Message,
    ) -> Result<SimTime, CastanetError> {
        let MessagePayload::Cell(cell) = &msg.payload else {
            return Err(CastanetError::Convert(format!(
                "entity can only condition cell payloads, got {}",
                msg.payload.kind()
            )));
        };
        let (signals, next_free) = {
            let port = self
                .ingress
                .get(msg.port)
                .ok_or(CastanetError::UnknownPort { port: msg.port })?;
            (port.signals, port.next_free)
        };
        // First byte goes onto the first clock edge at or after the message
        // stamp once the line is free.
        let start = msg.stamp.max(next_free);
        cell_to_byte_ops_into(cell, self.format, &mut self.ops_scratch)?;
        let first_edge = edge_at_or_after_(self.first_edge, self.clock_period, start);
        let mut last_edge = first_edge;
        for op in &self.ops_scratch {
            let edge = first_edge + self.clock_period * op.cycle;
            let poke_at = edge - self.setup;
            sim.poke(
                signals.data,
                LogicVector::from_u64(u64::from(op.data), 8),
                poke_at,
            )?;
            last_edge = edge;
        }
        // Control signals only change at transitions (one event each, not
        // one per byte): sync pulses for the first octet, enable covers the
        // whole transfer.
        let first_poke = first_edge - self.setup;
        sim.poke_bit(signals.sync, Logic::One, first_poke)?;
        sim.poke_bit(
            signals.sync,
            Logic::Zero,
            first_edge + self.clock_period - self.setup,
        )?;
        sim.poke_bit(signals.enable, Logic::One, first_poke)?;
        sim.poke_bit(
            signals.enable,
            Logic::Zero,
            last_edge + self.clock_period - self.setup,
        )?;
        let port = &mut self.ingress[msg.port];
        port.next_free = last_edge + self.clock_period;
        port.cells_driven += 1;
        Ok(last_edge)
    }

    /// Drains completed DUT output cells from every egress monitor into
    /// response messages (stamped with their completion time).
    pub fn collect(&mut self) -> Vec<Message> {
        let mut out = Vec::new();
        self.collect_into(&mut out);
        out
    }

    /// Allocation-conscious form of [`CosimEntity::collect`]: appends the
    /// response messages to `out` and reuses the internal monitor-drain
    /// buffer, so polling with no pending cells touches no allocator.
    pub fn collect_into(&mut self, out: &mut Vec<Message>) {
        let mut captured = std::mem::take(&mut self.captured_scratch);
        for (port, handle) in self.egress.iter().enumerate() {
            captured.clear();
            handle.drain_into(&mut captured);
            for &(t, ref bytes) in &captured {
                // A cell that fails decoding is still reported — as a raw
                // payload — so the comparison stage can flag it instead of
                // silently losing it.
                let payload = match AtmCell::decode(bytes, self.format) {
                    Ok(cell) => MessagePayload::Cell(cell),
                    Err(_) => MessagePayload::Raw(bytes.to_vec()),
                };
                out.push(Message {
                    stamp: t,
                    type_id: self.response_type,
                    port,
                    payload,
                });
                self.responses_sent += 1;
            }
        }
        captured.clear();
        self.captured_scratch = captured;
    }

    /// Cells conditioned onto ingress line `port` so far.
    #[must_use]
    pub fn cells_driven(&self, port: usize) -> u64 {
        self.ingress.get(port).map_or(0, |p| p.cells_driven)
    }

    /// Responses collected so far.
    #[must_use]
    pub fn responses_sent(&self) -> u64 {
        self.responses_sent
    }

    /// The DUT clock period the entity conditions against.
    #[must_use]
    pub fn clock_period(&self) -> SimDuration {
        self.clock_period
    }
}

fn edge_at_or_after_(first_edge: SimTime, period: SimDuration, t: SimTime) -> SimTime {
    if t <= first_edge {
        return first_edge;
    }
    let offset = (t - first_edge).as_picos();
    let k = offset.div_ceil(period.as_picos());
    first_edge + SimDuration::from_picos(k * period.as_picos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;
    use castanet_rtl::cycle::attach_cycle_dut;
    use castanet_rtl::dut::CellReceiver;

    const PERIOD: SimDuration = SimDuration::from_ns(20);

    fn cell(vci: u16) -> AtmCell {
        AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [vci as u8; 48])
    }

    /// An RTL sim with a CellReceiver DUT wired to an entity ingress.
    fn receiver_fixture() -> (Simulator, CosimEntity, castanet_rtl::cycle::AttachedDut) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let dut = attach_cycle_dut(&mut sim, "rx", Box::new(CellReceiver::new()), clk);
        let mut entity = CosimEntity::new(PERIOD, HeaderFormat::Uni, MessageTypeId(9));
        entity.add_ingress(IngressSignals {
            data: dut.inputs[0],
            sync: dut.inputs[1],
            enable: dut.inputs[2],
        });
        (sim, entity, dut)
    }

    #[test]
    fn edge_computation() {
        let e = CosimEntity::new(PERIOD, HeaderFormat::Uni, MessageTypeId(0));
        assert_eq!(e.edge_at_or_after(SimTime::ZERO), SimTime::from_ns(10));
        assert_eq!(
            e.edge_at_or_after(SimTime::from_ns(10)),
            SimTime::from_ns(10)
        );
        assert_eq!(
            e.edge_at_or_after(SimTime::from_ns(11)),
            SimTime::from_ns(30)
        );
        assert_eq!(
            e.edge_at_or_after(SimTime::from_ns(30)),
            SimTime::from_ns(30)
        );
    }

    #[test]
    fn delivered_cell_reaches_the_dut_in_53_clocks() {
        let (mut sim, mut entity, dut) = receiver_fixture();
        let msg = Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(42));
        let last_edge = entity.deliver(&mut sim, &msg).unwrap();
        // 53 bytes, first at edge 10 ns, spaced 20 ns.
        assert_eq!(last_edge, SimTime::from_ns(10 + 52 * 20));
        sim.run_until(last_edge + SimDuration::from_ns(1)).unwrap();
        assert_eq!(sim.read_u64(dut.outputs[0]), Some(1), "cell_valid");
        assert_eq!(sim.read_u64(dut.outputs[1]), Some(1), "hec ok");
        assert_eq!(sim.read_u64(dut.outputs[3]), Some(42), "vci");
        assert_eq!(entity.cells_driven(0), 1);
    }

    #[test]
    fn back_to_back_cells_do_not_overlap() {
        let (mut sim, mut entity, dut) = receiver_fixture();
        let m1 = Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40));
        let m2 = Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(41));
        let e1 = entity.deliver(&mut sim, &m1).unwrap();
        let e2 = entity.deliver(&mut sim, &m2).unwrap();
        assert_eq!(
            e2 - e1,
            PERIOD * 53,
            "second cell starts right after the first"
        );
        sim.run_until(e2 + SimDuration::from_ns(1)).unwrap();
        assert_eq!(sim.read_u64(dut.outputs[7]), Some(2), "both cells received");
        assert_eq!(sim.read_u64(dut.outputs[3]), Some(41), "last vci");
    }

    #[test]
    fn late_stamp_defers_the_transfer() {
        let (mut sim, mut entity, _dut) = receiver_fixture();
        let msg = Message::cell(SimTime::from_us(5), MessageTypeId(0), 0, cell(40));
        let last_edge = entity.deliver(&mut sim, &msg).unwrap();
        assert!(last_edge >= SimTime::from_us(5));
    }

    #[test]
    fn unknown_port_rejected() {
        let (mut sim, mut entity, _dut) = receiver_fixture();
        let msg = Message::cell(SimTime::ZERO, MessageTypeId(0), 7, cell(40));
        assert!(matches!(
            entity.deliver(&mut sim, &msg),
            Err(CastanetError::UnknownPort { port: 7 })
        ));
    }

    #[test]
    fn non_cell_payload_rejected() {
        let (mut sim, mut entity, _dut) = receiver_fixture();
        let msg = Message {
            stamp: SimTime::ZERO,
            type_id: MessageTypeId(0),
            port: 0,
            payload: MessagePayload::Control(1),
        };
        assert!(matches!(
            entity.deliver(&mut sim, &msg),
            Err(CastanetError::Convert(_))
        ));
    }

    #[test]
    fn egress_monitor_produces_response_messages() {
        // Loop the entity's own stimulus back as "DUT output": wire an
        // egress monitor to the same signals the ingress drives.
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", PERIOD);
        let data = sim.add_signal("data", 8);
        let sync = sim.add_signal("sync", 1);
        let enable = sim.add_signal("enable", 1);
        let mut entity = CosimEntity::new(PERIOD, HeaderFormat::Uni, MessageTypeId(7));
        entity.add_ingress(IngressSignals { data, sync, enable });
        let port = entity.add_egress(
            &mut sim,
            clk,
            EgressSignals {
                data,
                sync,
                valid: enable,
            },
        );
        assert_eq!(port, 0);

        let msg = Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(77));
        let last_edge = entity.deliver(&mut sim, &msg).unwrap();
        sim.run_until(last_edge + PERIOD).unwrap();

        let responses = entity.collect();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].type_id, MessageTypeId(7));
        assert_eq!(responses[0].port, 0);
        assert_eq!(responses[0].as_cell(), Some(&cell(77)));
        assert_eq!(responses[0].stamp, last_edge);
        assert_eq!(entity.responses_sent(), 1);
    }
}
