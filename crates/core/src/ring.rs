//! Lock-free single-producer/single-consumer rings for the parallel
//! executor's command and reply transports.
//!
//! The v1 executor coupled its threads with `mpsc` channels: a bounded
//! `sync_channel` for commands and an unbounded channel for replies. Both
//! rendezvous through a mutex/condvar pair, and every window allocates —
//! the command carries a freshly drained `Vec<Message>`, the reply another.
//! At e8's workloads those per-window costs dominate the grant windows
//! themselves (ISSUE 10). This module replaces the transport with a
//! preallocated ring of cache-line-padded slots:
//!
//! * **Slot protocol** — every slot carries an atomic *sequence* word
//!   (Vyukov's bounded-queue discipline, degenerate SPSC form). The
//!   producer may fill slot `head % cap` exactly when `seq == head`; the
//!   consumer may take slot `tail % cap` exactly when `seq == tail + 1`.
//!   Publication is a single release store of the sequence word, so the
//!   fast path is one acquire load + one release store per side, with no
//!   shared mutex and no condvar on the hot path.
//! * **Zero-copy hand-off** — slots hold a caller-defined entry type and
//!   are accessed through `FnOnce(&mut T)` closures that `mem::swap`
//!   buffers in and out. Capacities circulate producer-scratch → slot →
//!   consumer-scratch and back, so the steady state allocates nothing.
//!   The workspace denies `unsafe_code`, so the payload sits behind a
//!   per-slot `Mutex` instead of an `UnsafeCell`; the sequence protocol
//!   guarantees each lock is uncontended (exactly one side may hold a
//!   slot), making it a plain compare-and-swap in practice — the
//!   safe-Rust equivalent of the usual `UnsafeCell` slot.
//! * **Spin-then-park waiting** — a side that cannot make progress spins
//!   briefly ([`SPIN_ITERS`] iterations of [`std::hint::spin_loop`]),
//!   then publishes a parked-thread handle and sleeps in
//!   [`std::thread::park_timeout`]. The opposite side wakes it with
//!   [`std::thread::Thread::unpark`] after every push/pop that changes
//!   the ring state. The timeout (and the re-check between publishing
//!   and parking) makes lost wakeups impossible to deadlock on.
//!
//! The ring is split into a [`RingProducer`] / [`RingConsumer`] pair via
//! [`SpscRing::split`]; the handles borrow the ring, so exclusivity of
//! each role is enforced by the borrow checker rather than by runtime
//! checks, and scoped threads can move one handle each without any `Arc`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::Thread;
use std::time::Duration;

/// Spin iterations per polling round of a blocked side's wait loop.
pub const SPIN_ITERS: u32 = 128;

/// Polling rounds (of [`SPIN_ITERS`] each) a blocked side burns before it
/// publishes a park handle and sleeps, on a machine with more than one
/// core. Parking costs a futex wake plus scheduler latency (tens of
/// microseconds) on the *waker's* critical path, so a waiter should stay
/// hot across the window-sized gaps the executor produces (~50-250 µs on
/// the cycle engine) and only park when the wait is genuinely long — an
/// idle follower between runs, or the originator behind a slow
/// event-driven window. See [`spin_rounds`] for the budget actually used.
pub const SPIN_ROUNDS: u32 = 1024;

/// The effective spin budget: [`SPIN_ROUNDS`] when the machine can run
/// both executor threads at once, `0` on a single hardware thread — there
/// spinning *starves the peer that must make the awaited progress* until
/// the scheduler preempts, inflating every wait into a full timeslice.
#[must_use]
pub fn spin_rounds() -> u32 {
    static ROUNDS: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *ROUNDS.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_ROUNDS,
        _ => 0,
    })
}

/// One polling round of a blocked side's wait loop: busy-spins
/// [`SPIN_ITERS`] iterations on multi-core machines, yields the core on
/// single-core machines (where the awaited progress can only happen once
/// the peer thread gets the CPU).
pub fn spin_round() {
    if spin_rounds() > 0 {
        for _ in 0..SPIN_ITERS {
            std::hint::spin_loop();
        }
    } else {
        std::thread::yield_now();
    }
}

/// Park timeout: a safety net against lost wakeups, not a pacing knob —
/// the waker's `unpark` ends the sleep immediately in the common case.
pub const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Pads (and aligns) a value to a cache line so the producer's and
/// consumer's hot words never share one.
#[repr(align(64))]
struct CachePadded<T>(T);

/// One ring slot: the sequence word of the Vyukov hand-off protocol plus
/// the entry payload. The mutex is uncontended by construction (see the
/// module docs); it exists only to satisfy the no-`unsafe` rule.
struct Slot<T> {
    seq: AtomicU64,
    entry: Mutex<T>,
}

/// One side's parked-thread handle: `parked` is the fast-path flag the
/// waker checks, `thread` the handle it unparks.
struct Waiter {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    fn new() -> Self {
        Waiter {
            parked: AtomicBool::new(false),
            thread: Mutex::new(None),
        }
    }

    /// Publishes the calling thread as parked. The caller MUST re-check
    /// its progress condition after this and before [`Waiter::park`], or
    /// a wakeup raced between check and publish is lost until the
    /// timeout.
    fn prepare(&self) {
        *self.thread.lock().expect("waiter poisoned") = Some(std::thread::current());
        self.parked.store(true, Ordering::SeqCst);
    }

    /// Clears a published park without sleeping (progress reappeared).
    fn cancel(&self) {
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Sleeps until unparked or `timeout` elapses.
    fn park(&self, timeout: Duration) {
        std::thread::park_timeout(timeout);
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Wakes the parked thread, if any. Cheap when nobody is parked: one
    /// fence plus one relaxed load.
    ///
    /// The fence closes the Dekker race with [`Waiter::prepare`]: the
    /// caller has just published ring state (a release store), and without
    /// a StoreLoad barrier that store may still sit in the store buffer
    /// when `parked` is read — the waiter then re-checks too early, sees
    /// no progress, and sleeps through the whole park timeout.
    fn wake(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) && self.parked.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("waiter poisoned").take() {
                t.unpark();
            }
        }
    }
}

/// Cumulative wait-loop statistics, readable from either handle (and from
/// the ring owner after the run): how often each side exhausted its spin
/// budget and actually parked.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RingWaitStats {
    /// Times the producer parked on a full ring.
    pub producer_parks: u64,
    /// Times the consumer parked on an empty ring.
    pub consumer_parks: u64,
}

/// The shared ring state. Build one per direction, [`SpscRing::split`]
/// it, and move the two handles onto their threads.
pub struct SpscRing<T> {
    slots: Box<[CachePadded<Slot<T>>]>,
    /// Producer position, published after every push (for occupancy).
    head: CachePadded<AtomicU64>,
    /// Consumer position, published after every pop (for occupancy).
    tail: CachePadded<AtomicU64>,
    producer_waiter: Waiter,
    consumer_waiter: Waiter,
    /// Either side closes the ring on exit (or error); blocked waits on
    /// both sides abort once they observe it.
    closed: AtomicBool,
    producer_parks: AtomicU64,
    consumer_parks: AtomicU64,
}

impl<T> std::fmt::Debug for SpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &self.slots.len())
            .field("occupancy", &self.occupancy())
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for RingProducer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer")
            .field("head", &self.head)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for RingConsumer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingConsumer")
            .field("tail", &self.tail)
            .finish_non_exhaustive()
    }
}

impl<T: Default> SpscRing<T> {
    /// Allocates a ring of `capacity` default-initialized slots.
    ///
    /// Capacities below 2 are raised to 2: the slot protocol needs the
    /// producer's revisit position (`pos + capacity`) to differ from the
    /// just-pushed sequence (`pos + 1`), otherwise a full, unconsumed
    /// slot is indistinguishable from a free one and gets overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|i| {
                CachePadded(Slot {
                    seq: AtomicU64::new(i as u64),
                    entry: Mutex::new(T::default()),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            slots,
            head: CachePadded(AtomicU64::new(0)),
            tail: CachePadded(AtomicU64::new(0)),
            producer_waiter: Waiter::new(),
            consumer_waiter: Waiter::new(),
            closed: AtomicBool::new(false),
            producer_parks: AtomicU64::new(0),
            consumer_parks: AtomicU64::new(0),
        }
    }
}

impl<T> SpscRing<T> {
    /// Splits the ring into its producer and consumer handles. Taking
    /// `&mut self` guarantees at most one live handle pair.
    pub fn split(&mut self) -> (RingProducer<'_, T>, RingConsumer<'_, T>) {
        // Resume from the published positions so a ring survives being
        // split more than once (each `run()` splits afresh).
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        let ring: &SpscRing<T> = self;
        (RingProducer { ring, head }, RingConsumer { ring, tail })
    }

    /// Entries currently in the ring (approximate under concurrency).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        head.saturating_sub(tail) as usize
    }

    /// The slot count chosen at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether either side has closed the ring.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Park counters accumulated so far.
    #[must_use]
    pub fn wait_stats(&self) -> RingWaitStats {
        RingWaitStats {
            producer_parks: self.producer_parks.load(Ordering::Relaxed),
            consumer_parks: self.consumer_parks.load(Ordering::Relaxed),
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.producer_waiter.wake();
        self.consumer_waiter.wake();
    }
}

/// The pushing half of a split ring.
pub struct RingProducer<'a, T> {
    ring: &'a SpscRing<T>,
    /// Local (unshared) producer position.
    head: u64,
}

impl<T: Default> RingProducer<'_, T> {
    /// Attempts to fill the next slot through `fill` (typically a
    /// `mem::swap` of the caller's scratch buffers into the entry).
    /// Returns `false` — without invoking `fill` — when the ring is full.
    pub fn try_push_with(&mut self, fill: impl FnOnce(&mut T)) -> bool {
        let cap = self.ring.slots.len() as u64;
        let slot = &self.ring.slots[(self.head % cap) as usize].0;
        if slot.seq.load(Ordering::Acquire) != self.head {
            return false;
        }
        fill(&mut slot.entry.lock().expect("slot poisoned"));
        slot.seq.store(self.head + 1, Ordering::Release);
        self.head += 1;
        self.ring.head.0.store(self.head, Ordering::Release);
        self.ring.consumer_waiter.wake();
        true
    }

    /// Whether a `try_push_with` would currently succeed.
    #[must_use]
    pub fn can_push(&self) -> bool {
        let cap = self.ring.slots.len() as u64;
        self.ring.slots[(self.head % cap) as usize]
            .0
            .seq
            .load(Ordering::Acquire)
            == self.head
    }

    /// Parks the producer until the consumer frees a slot (or the
    /// timeout/close fires). Returns immediately — without parking — if
    /// the ring became pushable or closed in the meantime.
    pub fn park_while_full(&self) {
        self.ring.producer_waiter.prepare();
        if self.can_push() || self.ring.is_closed() {
            self.ring.producer_waiter.cancel();
            return;
        }
        self.ring.producer_parks.fetch_add(1, Ordering::Relaxed);
        self.ring.producer_waiter.park(PARK_TIMEOUT);
    }

    /// Closes the ring (idempotent; wakes both sides).
    pub fn close(&self) {
        self.ring.close();
    }

    /// Whether either side has closed the ring.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.ring.is_closed()
    }

    /// Entries currently queued (approximate).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.ring.occupancy()
    }

    /// The ring's slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

/// The popping half of a split ring.
pub struct RingConsumer<'a, T> {
    ring: &'a SpscRing<T>,
    /// Local (unshared) consumer position.
    tail: u64,
}

impl<T: Default> RingConsumer<'_, T> {
    /// Attempts to take the next slot through `drain` (typically a
    /// `mem::swap` of the entry into the caller's scratch buffers).
    /// Returns `false` — without invoking `drain` — when the ring is
    /// empty.
    pub fn try_pop_with(&mut self, drain: impl FnOnce(&mut T)) -> bool {
        let cap = self.ring.slots.len() as u64;
        let slot = &self.ring.slots[(self.tail % cap) as usize].0;
        if slot.seq.load(Ordering::Acquire) != self.tail + 1 {
            return false;
        }
        drain(&mut slot.entry.lock().expect("slot poisoned"));
        slot.seq.store(self.tail + cap, Ordering::Release);
        self.tail += 1;
        self.ring.tail.0.store(self.tail, Ordering::Release);
        self.ring.producer_waiter.wake();
        true
    }

    /// Whether a `try_pop_with` would currently succeed.
    #[must_use]
    pub fn can_pop(&self) -> bool {
        let cap = self.ring.slots.len() as u64;
        self.ring.slots[(self.tail % cap) as usize]
            .0
            .seq
            .load(Ordering::Acquire)
            == self.tail + 1
    }

    /// Parks the consumer until the producer publishes a slot (or the
    /// timeout/close fires). Returns immediately — without parking — if
    /// the ring became poppable or closed in the meantime.
    pub fn park_while_empty(&self) {
        self.ring.consumer_waiter.prepare();
        if self.can_pop() || self.ring.is_closed() {
            self.ring.consumer_waiter.cancel();
            return;
        }
        self.ring.consumer_parks.fetch_add(1, Ordering::Relaxed);
        self.ring.consumer_waiter.park(PARK_TIMEOUT);
    }

    /// Closes the ring (idempotent; wakes both sides).
    pub fn close(&self) {
        self.ring.close();
    }

    /// Whether either side has closed the ring.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.ring.is_closed()
    }

    /// Entries currently queued (approximate).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.ring.occupancy()
    }

    /// The ring's slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_round_trips_in_order() {
        let mut ring: SpscRing<u64> = SpscRing::new(4);
        let (mut tx, mut rx) = ring.split();
        for i in 0..4 {
            assert!(tx.try_push_with(|slot| *slot = i));
        }
        assert!(!tx.try_push_with(|_| panic!("fill on a full ring")));
        assert!(!tx.can_push());
        for i in 0..4 {
            let mut got = u64::MAX;
            assert!(rx.try_pop_with(|slot| got = *slot));
            assert_eq!(got, i);
        }
        assert!(!rx.try_pop_with(|_| panic!("drain on an empty ring")));
        assert!(!rx.can_pop());
    }

    #[test]
    fn occupancy_tracks_both_sides() {
        let mut ring: SpscRing<u64> = SpscRing::new(3);
        let (mut tx, mut rx) = ring.split();
        assert_eq!(tx.occupancy(), 0);
        assert!(tx.try_push_with(|s| *s = 1));
        assert!(tx.try_push_with(|s| *s = 2));
        assert_eq!(tx.occupancy(), 2);
        assert!(rx.try_pop_with(|_| {}));
        assert_eq!(rx.occupancy(), 1);
        let _ = (tx, rx);
        assert_eq!(ring.occupancy(), 1);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn buffers_circulate_without_reallocation() {
        let mut ring: SpscRing<Vec<u32>> = SpscRing::new(2);
        let (mut tx, mut rx) = ring.split();
        let mut scratch: Vec<u32> = Vec::with_capacity(64);
        let mut sink: Vec<u32> = Vec::new();
        // After one full lap every slot holds a previously used buffer, so
        // swapping retains capacity end to end.
        for round in 0..8u32 {
            scratch.clear();
            scratch.extend(round * 10..round * 10 + 3);
            assert!(tx.try_push_with(|slot| std::mem::swap(slot, &mut scratch)));
            assert!(rx.try_pop_with(|slot| std::mem::swap(slot, &mut sink)));
            assert_eq!(sink, vec![round * 10, round * 10 + 1, round * 10 + 2]);
            if round >= 3 {
                assert!(scratch.capacity() >= 3, "capacity recirculates");
            }
        }
    }

    #[test]
    fn close_is_visible_to_both_handles() {
        let mut ring: SpscRing<u64> = SpscRing::new(2);
        let (tx, rx) = ring.split();
        assert!(!tx.is_closed());
        rx.close();
        assert!(tx.is_closed());
        assert!(rx.is_closed());
    }

    #[test]
    fn park_helpers_return_when_progress_is_possible() {
        let mut ring: SpscRing<u64> = SpscRing::new(1);
        let (mut tx, rx) = ring.split();
        // Empty ring: the producer can push, so park_while_full is a no-op.
        tx.park_while_full();
        assert!(tx.try_push_with(|s| *s = 7));
        // Full ring: the consumer can pop, so park_while_empty is a no-op.
        rx.park_while_empty();
        assert_eq!(ring.wait_stats(), RingWaitStats::default());
    }

    #[test]
    fn cross_thread_stream_is_lossless() {
        const N: u64 = 10_000;
        let mut ring: SpscRing<Vec<u64>> = SpscRing::new(4);
        let (mut tx, mut rx) = ring.split();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut scratch = Vec::new();
                for i in 0..N {
                    scratch.clear();
                    scratch.push(i);
                    loop {
                        let pushed = tx.try_push_with(|slot| std::mem::swap(slot, &mut scratch));
                        if pushed {
                            break;
                        }
                        for _ in 0..SPIN_ITERS {
                            std::hint::spin_loop();
                        }
                        if !tx.can_push() {
                            tx.park_while_full();
                        }
                    }
                }
                tx.close();
            });
            let mut got = Vec::new();
            let mut sink = Vec::new();
            loop {
                if rx.try_pop_with(|slot| std::mem::swap(slot, &mut sink)) {
                    got.extend_from_slice(&sink);
                    continue;
                }
                if rx.is_closed() && !rx.can_pop() {
                    break;
                }
                rx.park_while_empty();
            }
            assert_eq!(got.len() as u64, N);
            assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64));
        });
    }

    #[test]
    fn parked_consumer_is_woken_by_a_push() {
        let mut ring: SpscRing<u64> = SpscRing::new(2);
        let (mut tx, mut rx) = ring.split();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // Give the consumer a moment to actually park.
                std::thread::sleep(Duration::from_millis(5));
                assert!(tx.try_push_with(|s| *s = 42));
                tx.close();
            });
            let mut got = 0u64;
            loop {
                if rx.try_pop_with(|slot| got = *slot) {
                    break;
                }
                if rx.is_closed() && !rx.can_pop() {
                    break;
                }
                rx.park_while_empty();
            }
            assert_eq!(got, 42);
        });
        assert!(ring.wait_stats().consumer_parks >= 1);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = SpscRing::<u64>::new(0);
    }

    #[test]
    fn capacity_one_is_clamped_and_never_overwrites() {
        // At capacity 1 the revisit position (pos + cap) collides with
        // the just-pushed sequence (pos + 1), so a full slot would look
        // free to the producer; `new` must round the capacity up to 2.
        let mut ring: SpscRing<u64> = SpscRing::new(1);
        assert_eq!(ring.capacity(), 2);
        let (mut tx, mut rx) = ring.split();
        assert!(tx.try_push_with(|s| *s = 1));
        assert!(tx.try_push_with(|s| *s = 2));
        assert!(!tx.try_push_with(|s| *s = 3), "full ring must refuse");
        let mut got = Vec::new();
        while rx.try_pop_with(|s| got.push(*s)) {}
        assert_eq!(got, vec![1, 2], "no entry may be overwritten");
    }
}
