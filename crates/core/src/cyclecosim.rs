//! The cycle-based follower — the paper's §5 conclusion, implemented.
//!
//! "Event-driven VHDL simulators are obviously a bottleneck in the
//! co-verification process. … Thus, the integration of cycle-based
//! simulation techniques is required." [`CycleCosim`] is that integration:
//! the same pin-level DUT runs under the cycle engine, one `clock_edge`
//! call per clock, with **idle skipping** — when no stimulus is pending and
//! the DUT reports quiescence ([`castanet_rtl::cycle::CycleDut::is_idle`]),
//! whole stretches of simulated time advance in O(1). The E1/E7 benches
//! compare this follower against the event-driven [`crate::RtlCosim`] on
//! identical workloads.

use crate::convert::ByteStreamAssembler;
use crate::coupling::CoupledSimulator;
use crate::error::CastanetError;
use crate::message::{Message, MessagePayload, MessageTypeId};
use castanet_atm::addr::HeaderFormat;
use castanet_atm::cell::CELL_OCTETS;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Gauge, Phase, Telemetry, Track};
use castanet_rtl::cycle::CycleSim;
use std::collections::VecDeque;

/// Indices (into the DUT's input port list) of one ingress line.
#[derive(Debug, Clone, Copy)]
pub struct IngressIndices {
    /// Byte-wide data input port.
    pub data: usize,
    /// Cellsync input port.
    pub sync: usize,
    /// Byte-valid input port.
    pub enable: usize,
}

/// Indices (into the DUT's output port list) of one egress line.
#[derive(Debug, Clone, Copy)]
pub struct EgressIndices {
    /// Byte-wide data output port.
    pub data: usize,
    /// Cellsync output port.
    pub sync: usize,
    /// Byte-valid output port.
    pub valid: usize,
}

#[derive(Clone)]
struct IngressLine {
    idx: IngressIndices,
    next_free_clock: u64,
}

#[derive(Clone)]
struct EgressLine {
    idx: EgressIndices,
    assembler: ByteStreamAssembler,
}

/// The cycle-based coupled follower with idle skipping.
pub struct CycleCosim {
    sim: CycleSim,
    clock_period: SimDuration,
    clocks_done: u64,
    /// Per-clock input words for clocks `clocks_done..`; `None` slots are
    /// all-zero (idle line).
    stimulus: VecDeque<Option<Vec<u64>>>,
    zero_inputs: Vec<u64>,
    ingress: Vec<IngressLine>,
    egress: Vec<EgressLine>,
    response_type: MessageTypeId,
    format: HeaderFormat,
    /// Clocks skipped thanks to idle detection.
    skipped: u64,
    undecodable: u64,
    /// Clocks-evaluated gauge (a no-op until telemetry is attached).
    obs_evaluated: Gauge,
    /// Clocks-skipped gauge (a no-op until telemetry is attached).
    obs_skipped: Gauge,
    /// Telemetry handle for the sampled `cycle.eval` micro-phase.
    tel: Telemetry,
    /// End stamp of the last `cycle.eval` span, reused as the next span's
    /// start when the very next clock is also sampled — halving the clock
    /// reads on back-to-back sampled clocks. `0` means "stale": anything
    /// that breaks clock adjacency (an unsampled clock, an idle skip, a
    /// delivery, a new advance sweep) resets it.
    phase_stamp: u64,
}

impl std::fmt::Debug for CycleCosim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleCosim")
            .field("clocks_done", &self.clocks_done)
            .field("skipped", &self.skipped)
            .finish()
    }
}

impl CycleCosim {
    /// Wraps a cycle-engine DUT as a follower clocked at `clock_period`.
    #[must_use]
    pub fn new(
        sim: CycleSim,
        clock_period: SimDuration,
        response_type: MessageTypeId,
        format: HeaderFormat,
    ) -> Self {
        let zero_inputs = vec![0u64; sim.input_ports().len()];
        CycleCosim {
            sim,
            clock_period,
            clocks_done: 0,
            stimulus: VecDeque::new(),
            zero_inputs,
            ingress: Vec::new(),
            egress: Vec::new(),
            response_type,
            format,
            skipped: 0,
            undecodable: 0,
            obs_evaluated: Gauge::default(),
            obs_skipped: Gauge::default(),
            tel: Telemetry::disabled(),
            phase_stamp: 0,
        }
    }

    /// Registers an ingress line; returns its co-simulation port index.
    pub fn add_ingress(&mut self, idx: IngressIndices) -> usize {
        self.ingress.push(IngressLine {
            idx,
            next_free_clock: 0,
        });
        self.ingress.len() - 1
    }

    /// Registers an egress line; returns its co-simulation port index.
    pub fn add_egress(&mut self, idx: EgressIndices) -> usize {
        self.egress.push(EgressLine {
            idx,
            assembler: ByteStreamAssembler::new(self.format),
        });
        self.egress.len() - 1
    }

    /// Clocks actually evaluated.
    #[must_use]
    pub fn clocks_evaluated(&self) -> u64 {
        self.sim.cycles()
    }

    /// Clocks skipped by idle detection.
    #[must_use]
    pub fn clocks_skipped(&self) -> u64 {
        self.skipped
    }

    /// DUT outputs that failed cell reassembly.
    #[must_use]
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    /// Read access to the cycle engine.
    #[must_use]
    pub fn sim(&self) -> &CycleSim {
        &self.sim
    }

    fn clock_at_or_after(&self, t: SimTime) -> u64 {
        let period = self.clock_period.as_picos();
        let ps = t.as_picos();
        if ps <= period {
            return 0;
        }
        ps.div_ceil(period) - 1
    }

    fn slot_mut(&mut self, clock: u64) -> &mut Vec<u64> {
        debug_assert!(clock >= self.clocks_done);
        let idx = (clock - self.clocks_done) as usize;
        while self.stimulus.len() <= idx {
            self.stimulus.push_back(None);
        }
        self.stimulus[idx].get_or_insert_with(|| self.zero_inputs.clone())
    }

    fn run_clock(&mut self) -> Result<Vec<Message>, CastanetError> {
        let inputs = match self.stimulus.pop_front().flatten() {
            Some(v) => v,
            None => self.zero_inputs.clone(),
        };
        // `cycle.eval` is a per-clock micro-phase: sampled 1-in-N, so the
        // two clock reads are paid once per stride, not per clock. Across
        // back-to-back sampled clocks the previous span's end stamp doubles
        // as this span's start, halving even that residual cost.
        let sampled = self.tel.micro_gate();
        let eval_start = if sampled {
            if self.phase_stamp != 0 {
                self.phase_stamp
            } else {
                self.tel.now_ns()
            }
        } else {
            self.phase_stamp = 0;
            0
        };
        let outs = self.sim.step(&inputs)?;
        self.clocks_done += 1;
        let stamp = SimTime::from_picos(self.clocks_done * self.clock_period.as_picos());
        if sampled {
            self.phase_stamp = self.tel.record_phase(
                Track::Follower,
                stamp.as_picos(),
                Phase::CycleEval,
                eval_start,
            );
        }
        let mut responses = Vec::new();
        for (port, line) in self.egress.iter_mut().enumerate() {
            if outs[line.idx.valid] != 1 {
                continue;
            }
            let data = outs[line.idx.data] as u8;
            let sync = outs[line.idx.sync] == 1;
            match line.assembler.push(data, sync) {
                Ok(Some(cell)) => responses.push(Message {
                    stamp,
                    type_id: self.response_type,
                    port,
                    payload: MessagePayload::Cell(cell),
                }),
                Ok(None) => {}
                Err(_) => {
                    self.undecodable += 1;
                    responses.push(Message {
                        stamp,
                        type_id: self.response_type,
                        port,
                        payload: MessagePayload::Raw(vec![data]),
                    });
                }
            }
        }
        Ok(responses)
    }

    fn advance_inner(
        &mut self,
        horizon: SimTime,
        stop_at_first: bool,
    ) -> Result<Vec<Message>, CastanetError> {
        let period = self.clock_period.as_picos();
        let target = horizon.as_picos().div_ceil(period).saturating_sub(1);
        // A new sweep starts from non-clock work (sync, delivery), so the
        // cached span stamp no longer abuts the next evaluation.
        self.phase_stamp = 0;
        let mut collected = Vec::new();
        while self.clocks_done < target {
            // Idle skip: no stimulus pending anywhere in the window and the
            // DUT quiescent — jump straight to the next stimulus clock (or
            // the horizon).
            if self.sim.dut().is_idle() {
                let next_stim = self
                    .stimulus
                    .iter()
                    .position(Option::is_some)
                    .map(|off| self.clocks_done + off as u64);
                match next_stim {
                    None => {
                        self.skipped += target - self.clocks_done;
                        self.stimulus.clear();
                        self.clocks_done = target;
                        break;
                    }
                    Some(c) if c > self.clocks_done => {
                        let jump = (c - self.clocks_done).min(target - self.clocks_done);
                        self.skipped += jump;
                        self.stimulus.drain(..jump as usize);
                        self.clocks_done += jump;
                        self.phase_stamp = 0;
                        continue;
                    }
                    Some(_) => {}
                }
            }
            let responses = self.run_clock()?;
            if !responses.is_empty() {
                if stop_at_first {
                    self.publish_clock_gauges();
                    return Ok(responses);
                }
                collected.extend(responses);
            }
        }
        self.publish_clock_gauges();
        Ok(collected)
    }

    fn publish_clock_gauges(&self) {
        self.obs_evaluated.set(self.sim.cycles());
        self.obs_skipped.set(self.skipped);
    }
}

impl CoupledSimulator for CycleCosim {
    fn deliver(&mut self, msg: Message) -> Result<(), CastanetError> {
        let MessagePayload::Cell(cell) = &msg.payload else {
            return Err(CastanetError::Convert(format!(
                "cycle follower can only play cell payloads, got {}",
                msg.payload.kind()
            )));
        };
        if msg.port >= self.ingress.len() {
            return Err(CastanetError::UnknownPort { port: msg.port });
        }
        let wire = cell.encode(self.format)?;
        let start = self
            .clock_at_or_after(msg.stamp)
            .max(self.ingress[msg.port].next_free_clock)
            .max(self.clocks_done);
        let idx = self.ingress[msg.port].idx;
        for (k, &byte) in wire.iter().enumerate() {
            let slot = self.slot_mut(start + k as u64);
            slot[idx.data] = u64::from(byte);
            slot[idx.sync] = u64::from(k == 0);
            slot[idx.enable] = 1;
        }
        self.ingress[msg.port].next_free_clock = start + CELL_OCTETS as u64;
        self.phase_stamp = 0;
        Ok(())
    }

    fn advance_until(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        self.advance_inner(horizon, true)
    }

    fn advance_batch(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
        // One uninterrupted sweep to the horizon: egress cells are stamped
        // at their capture clock inside `run_clock`, so collecting them at
        // the end of the window loses no timing information.
        self.advance_inner(horizon, false)
    }

    fn now(&self) -> SimTime {
        SimTime::from_picos(self.clocks_done * self.clock_period.as_picos())
    }

    fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.obs_evaluated = tel.gauge("follower.clocks_evaluated");
        self.obs_skipped = tel.gauge("follower.clocks_skipped");
    }

    fn fork(&self) -> Option<Self> {
        Some(CycleCosim {
            sim: self.sim.fork()?,
            clock_period: self.clock_period,
            clocks_done: self.clocks_done,
            stimulus: self.stimulus.clone(),
            zero_inputs: self.zero_inputs.clone(),
            ingress: self.ingress.clone(),
            egress: self.egress.clone(),
            response_type: self.response_type,
            format: self.format,
            skipped: self.skipped,
            undecodable: self.undecodable,
            obs_evaluated: self.obs_evaluated.clone(),
            obs_skipped: self.obs_skipped.clone(),
            tel: self.tel.clone(),
            phase_stamp: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;
    use castanet_atm::cell::AtmCell;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    const CLK: SimDuration = SimDuration::from_ns(20);

    fn fixture() -> CycleCosim {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 32,
            table_capacity: 8,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let sim = CycleSim::new(Box::new(switch));
        let mut cosim = CycleCosim::new(sim, CLK, MessageTypeId(9), HeaderFormat::Uni);
        cosim.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        cosim.add_ingress(IngressIndices {
            data: 3,
            sync: 4,
            enable: 5,
        });
        cosim.add_egress(EgressIndices {
            data: 0,
            sync: 1,
            valid: 2,
        });
        cosim.add_egress(EgressIndices {
            data: 3,
            sync: 4,
            valid: 5,
        });
        cosim
    }

    fn cell(vci: u16) -> AtmCell {
        AtmCell::user_data(VpiVci::uni(1, vci).unwrap(), [0x42; 48])
    }

    #[test]
    fn switches_a_cell_like_the_event_driven_follower() {
        let mut cosim = fixture();
        cosim
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40)))
            .unwrap();
        let responses = cosim.advance_until(SimTime::from_us(10)).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(
            responses[0].as_cell().unwrap().id(),
            VpiVci::uni(7, 70).unwrap()
        );
        assert_eq!(responses[0].as_cell().unwrap().payload, [0x42; 48]);
    }

    #[test]
    fn idle_clocks_are_skipped_not_evaluated() {
        let mut cosim = fixture();
        // A cell stamped far in the future: the gap must be skipped.
        let stamp = SimTime::from_us(100); // 5000 clocks at 20 ns
        cosim
            .deliver(Message::cell(stamp, MessageTypeId(0), 0, cell(40)))
            .unwrap();
        let responses = cosim.advance_until(SimTime::from_us(200)).unwrap();
        assert_eq!(responses.len(), 1);
        assert!(
            cosim.clocks_skipped() > 4000,
            "skipped only {}",
            cosim.clocks_skipped()
        );
        // Evaluated clocks: roughly the 2x53 transfer clocks plus slack.
        assert!(
            cosim.clocks_evaluated() < 400,
            "evaluated {}",
            cosim.clocks_evaluated()
        );
    }

    #[test]
    fn busy_dut_is_not_skipped() {
        let mut cosim = fixture();
        cosim
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell(40)))
            .unwrap();
        // While the cell drains through the switch the DUT is never idle,
        // so no clocks are skipped until the response is out.
        let responses = cosim.advance_until(SimTime::from_us(3)).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(cosim.clocks_skipped(), 0);
    }

    #[test]
    fn time_advances_even_when_fully_idle() {
        let mut cosim = fixture();
        let out = cosim.advance_until(SimTime::from_ms(1)).unwrap();
        assert!(out.is_empty());
        assert_eq!(cosim.now(), SimTime::from_picos(49_999 * 20_000));
        assert_eq!(
            cosim.clocks_evaluated(),
            0,
            "pure idle costs zero evaluations"
        );
    }

    #[test]
    fn unknown_port_and_payload_rejected() {
        let mut cosim = fixture();
        assert!(matches!(
            cosim.deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 5, cell(40))),
            Err(CastanetError::UnknownPort { port: 5 })
        ));
        let msg = Message {
            stamp: SimTime::ZERO,
            type_id: MessageTypeId(0),
            port: 0,
            payload: MessagePayload::Control(1),
        };
        assert!(matches!(cosim.deliver(msg), Err(CastanetError::Convert(_))));
    }

    #[test]
    fn matches_event_driven_follower_output() {
        use crate::coupling::RtlCosim;
        use crate::entity::{CosimEntity, EgressSignals, IngressSignals};
        use castanet_rtl::cycle::attach_cycle_dut;
        use castanet_rtl::sim::Simulator;

        // Same DUT, same three cells, both followers: identical cell
        // sequences must come out.
        let build_switch = || {
            let mut s = AtmSwitchRtl::new(SwitchRtlConfig {
                ports: 2,
                fifo_capacity: 32,
                table_capacity: 8,
            });
            assert!(s.install_route(1, 40, 1, 7, 70));
            s
        };
        let stimuli: Vec<Message> = (0..3)
            .map(|k| {
                Message::cell(
                    SimTime::from_us(5 * (k + 1)),
                    MessageTypeId(0),
                    0,
                    AtmCell::user_data(
                        VpiVci::uni(1, 40).unwrap(),
                        castanet_atm::traffic::source::sequenced_payload(k),
                    ),
                )
            })
            .collect();

        // Cycle follower.
        let mut cy = fixture();
        let mut cy_sim = CycleSim::new(Box::new(build_switch()));
        std::mem::swap(&mut cy.sim, &mut cy_sim);
        let mut cy_out = Vec::new();
        for m in &stimuli {
            cy.deliver(m.clone()).unwrap();
        }
        loop {
            let r = cy.advance_until(SimTime::from_us(60)).unwrap();
            if r.is_empty() {
                break;
            }
            cy_out.extend(r);
        }

        // Event-driven follower.
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", CLK);
        let dut = attach_cycle_dut(&mut sim, "sw", Box::new(build_switch()), clk);
        let mut entity = CosimEntity::new(CLK, HeaderFormat::Uni, MessageTypeId(9));
        entity.add_ingress(IngressSignals {
            data: dut.inputs[0],
            sync: dut.inputs[1],
            enable: dut.inputs[2],
        });
        entity.add_egress(
            &mut sim,
            clk,
            EgressSignals {
                data: dut.outputs[3],
                sync: dut.outputs[4],
                valid: dut.outputs[5],
            },
        );
        let mut ev = RtlCosim::new(sim, entity);
        let mut ev_out = Vec::new();
        for m in &stimuli {
            ev.deliver(m.clone()).unwrap();
        }
        loop {
            let r = ev.advance_until(SimTime::from_us(60)).unwrap();
            if r.is_empty() {
                break;
            }
            ev_out.extend(r);
        }

        let cy_cells: Vec<_> = cy_out
            .iter()
            .filter_map(Message::as_cell)
            .cloned()
            .collect();
        let ev_cells: Vec<_> = ev_out
            .iter()
            .filter(|m| m.port == 0) // the entity's single egress is line 1 mapped to port 0
            .filter_map(Message::as_cell)
            .cloned()
            .collect();
        let cy_line1: Vec<_> = cy_out
            .iter()
            .filter(|m| m.port == 1)
            .filter_map(Message::as_cell)
            .cloned()
            .collect();
        assert_eq!(
            cy_line1, ev_cells,
            "the two engines must agree cell-for-cell"
        );
        assert_eq!(cy_cells.len(), 3);
    }
}
