//! Inter-process message exchange — the "standard UNIX IPC" of Fig. 2.
//!
//! The real CASTANET runs OPNET and VSS as separate UNIX processes talking
//! over IPC. Both flavours are provided here: an in-process duplex channel
//! (the default for single-process co-simulation, zero-copy) and a real
//! Unix-domain-socket transport with length-prefixed frames (so the
//! two-process deployment of the paper remains exercised). Both carry the
//! same wire encoding, defined by [`encode_message`]/[`decode_message`].
//!
//! Wire format (little-endian):
//!
//! ```text
//! stamp:u64  type_id:u32  port:u32  tag:u8  payload…
//! tag 0: TimeOnly (no payload)
//! tag 1: Cell     (gfc:u8 vpi:u16 vci:u16 pt:u8 clp:u8 payload:48B)
//! tag 2: Raw      (len:u32 bytes)
//! tag 3: Control  (value:u64)
//! ```

use crate::error::CastanetError;
use crate::message::{Message, MessagePayload, MessageTypeId};
use castanet_atm::addr::{HeaderFormat, Vci, Vpi, VpiVci};
use castanet_atm::cell::{AtmCell, CellHeader, PayloadType, PAYLOAD_OCTETS};
use castanet_netsim::time::SimTime;
use std::io::{Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};

/// Encodes a message into its wire form.
#[must_use]
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + 55);
    out.extend_from_slice(&msg.stamp.as_picos().to_le_bytes());
    out.extend_from_slice(&msg.type_id.0.to_le_bytes());
    out.extend_from_slice(&(msg.port as u32).to_le_bytes());
    match &msg.payload {
        MessagePayload::TimeOnly => out.push(0),
        MessagePayload::Cell(cell) => {
            out.push(1);
            out.push(cell.header.gfc);
            out.extend_from_slice(&cell.header.id.vpi.value().to_le_bytes());
            out.extend_from_slice(&cell.header.id.vci.value().to_le_bytes());
            out.push(cell.header.pt.bits());
            out.push(u8::from(cell.header.clp));
            out.extend_from_slice(&cell.payload);
        }
        MessagePayload::Raw(bytes) => {
            out.push(2);
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        MessagePayload::Control(v) => {
            out.push(3);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn take<const N: usize>(buf: &[u8], at: &mut usize) -> Result<[u8; N], CastanetError> {
    let end = *at + N;
    let slice = buf
        .get(*at..end)
        .ok_or_else(|| CastanetError::Codec("truncated message frame".to_string()))?;
    *at = end;
    let mut arr = [0u8; N];
    arr.copy_from_slice(slice);
    Ok(arr)
}

/// Decodes a message from its wire form.
///
/// # Errors
///
/// Returns [`CastanetError::Codec`] on truncated or malformed frames.
pub fn decode_message(buf: &[u8]) -> Result<Message, CastanetError> {
    let mut at = 0usize;
    let stamp = SimTime::from_picos(u64::from_le_bytes(take::<8>(buf, &mut at)?));
    let type_id = MessageTypeId(u32::from_le_bytes(take::<4>(buf, &mut at)?));
    let port = u32::from_le_bytes(take::<4>(buf, &mut at)?) as usize;
    let tag = take::<1>(buf, &mut at)?[0];
    let payload = match tag {
        0 => MessagePayload::TimeOnly,
        1 => {
            let gfc = take::<1>(buf, &mut at)?[0];
            let vpi = u16::from_le_bytes(take::<2>(buf, &mut at)?);
            let vci = u16::from_le_bytes(take::<2>(buf, &mut at)?);
            let pt = take::<1>(buf, &mut at)?[0];
            let clp = take::<1>(buf, &mut at)?[0];
            if pt > 7 {
                return Err(CastanetError::Codec(format!(
                    "payload type {pt} out of range"
                )));
            }
            let payload = take::<PAYLOAD_OCTETS>(buf, &mut at)?;
            let vpi = Vpi::new(vpi, HeaderFormat::Nni)
                .map_err(|e| CastanetError::Codec(e.to_string()))?;
            MessagePayload::Cell(AtmCell::with_header(
                CellHeader {
                    gfc,
                    id: VpiVci::new(vpi, Vci::new(vci)),
                    pt: PayloadType::from_bits(pt),
                    clp: clp != 0,
                },
                payload,
            ))
        }
        2 => {
            let len = u32::from_le_bytes(take::<4>(buf, &mut at)?) as usize;
            let bytes = buf
                .get(at..at + len)
                .ok_or_else(|| CastanetError::Codec("truncated raw payload".to_string()))?
                .to_vec();
            at += len;
            MessagePayload::Raw(bytes)
        }
        3 => MessagePayload::Control(u64::from_le_bytes(take::<8>(buf, &mut at)?)),
        other => {
            return Err(CastanetError::Codec(format!("unknown payload tag {other}")));
        }
    };
    if at != buf.len() {
        return Err(CastanetError::Codec(format!(
            "{} trailing bytes after message",
            buf.len() - at
        )));
    }
    Ok(Message {
        stamp,
        type_id,
        port,
        payload,
    })
}

/// A bidirectional message transport.
pub trait MessageTransport: Send {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Transport`] when the peer is gone.
    fn send(&mut self, msg: &Message) -> Result<(), CastanetError>;

    /// Receives the next message, blocking.
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Transport`] when the peer is gone.
    fn recv(&mut self) -> Result<Message, CastanetError>;

    /// Receives without blocking; `None` when no message is waiting.
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Transport`] when the peer is gone.
    fn try_recv(&mut self) -> Result<Option<Message>, CastanetError>;
}

/// One end of an in-process duplex channel.
#[derive(Debug)]
pub struct InProcessEndpoint {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected pair of in-process endpoints.
#[must_use]
pub fn in_process_pair() -> (InProcessEndpoint, InProcessEndpoint) {
    let (tx_a, rx_b) = channel();
    let (tx_b, rx_a) = channel();
    (
        InProcessEndpoint { tx: tx_a, rx: rx_a },
        InProcessEndpoint { tx: tx_b, rx: rx_b },
    )
}

impl MessageTransport for InProcessEndpoint {
    fn send(&mut self, msg: &Message) -> Result<(), CastanetError> {
        self.tx
            .send(encode_message(msg))
            .map_err(|_| CastanetError::Transport("peer endpoint dropped".to_string()))
    }

    fn recv(&mut self) -> Result<Message, CastanetError> {
        let frame = self
            .rx
            .recv()
            .map_err(|_| CastanetError::Transport("peer endpoint dropped".to_string()))?;
        decode_message(&frame)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, CastanetError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(decode_message(&frame)?)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CastanetError::Transport(
                "peer endpoint dropped".to_string(),
            )),
        }
    }
}

/// A Unix-domain-socket transport with `u32` length-prefixed frames —
/// the literal "message exchange via standard UNIX inter-process
/// communication" of the paper, for two-process deployments.
#[derive(Debug)]
pub struct UnixSocketTransport {
    stream: std::os::unix::net::UnixStream,
}

impl UnixSocketTransport {
    /// Wraps a connected stream.
    #[must_use]
    pub fn new(stream: std::os::unix::net::UnixStream) -> Self {
        UnixSocketTransport { stream }
    }

    /// Creates a connected socket pair in one process (useful for tests
    /// and threaded deployments).
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures.
    pub fn pair() -> Result<(Self, Self), CastanetError> {
        let (a, b) = std::os::unix::net::UnixStream::pair()?;
        Ok((UnixSocketTransport::new(a), UnixSocketTransport::new(b)))
    }
}

impl MessageTransport for UnixSocketTransport {
    fn send(&mut self, msg: &Message) -> Result<(), CastanetError> {
        let frame = encode_message(msg);
        let len = u32::try_from(frame.len())
            .map_err(|_| CastanetError::Codec("frame exceeds u32 length".to_string()))?;
        self.stream.write_all(&len.to_le_bytes())?;
        self.stream.write_all(&frame)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Message, CastanetError> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut frame = vec![0u8; len];
        self.stream.read_exact(&mut frame)?;
        decode_message(&frame)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, CastanetError> {
        self.stream.set_nonblocking(true)?;
        let mut len_buf = [0u8; 4];
        let result = match self.stream.read_exact(&mut len_buf) {
            Ok(()) => {
                // Frame body may still be in flight: block for it.
                self.stream.set_nonblocking(false)?;
                let len = u32::from_le_bytes(len_buf) as usize;
                let mut frame = vec![0u8; len];
                self.stream.read_exact(&mut frame)?;
                Ok(Some(decode_message(&frame)?))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(CastanetError::from(e)),
        };
        self.stream.set_nonblocking(false)?;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::time_update(SimTime::from_us(5), MessageTypeId(0)),
            Message::cell(
                SimTime::from_ns(123),
                MessageTypeId(1),
                3,
                AtmCell::user_data(VpiVci::uni(9, 4000).unwrap(), [0xA5; 48]),
            ),
            Message {
                stamp: SimTime::ZERO,
                type_id: MessageTypeId(2),
                port: 0,
                payload: MessagePayload::Raw(vec![1, 2, 3, 4, 5]),
            },
            Message {
                stamp: SimTime::MAX,
                type_id: MessageTypeId(u32::MAX),
                port: 65_000,
                payload: MessagePayload::Control(0xDEAD_BEEF_CAFE),
            },
        ]
    }

    #[test]
    fn codec_roundtrips_every_payload_kind() {
        for msg in sample_messages() {
            let encoded = encode_message(&msg);
            let decoded = decode_message(&encoded).unwrap();
            assert_eq!(decoded, msg, "{msg}");
        }
    }

    #[test]
    fn codec_rejects_truncation_anywhere() {
        for msg in sample_messages() {
            let encoded = encode_message(&msg);
            for cut in 0..encoded.len() {
                assert!(
                    decode_message(&encoded[..cut]).is_err(),
                    "cut at {cut} of {} must fail",
                    encoded.len()
                );
            }
        }
    }

    #[test]
    fn codec_rejects_trailing_garbage_and_bad_tags() {
        let mut encoded = encode_message(&sample_messages()[0]);
        encoded.push(0xFF);
        assert!(decode_message(&encoded).is_err());

        let mut bad_tag = encode_message(&sample_messages()[0]);
        let last = bad_tag.len() - 1;
        bad_tag[last] = 9;
        assert!(matches!(
            decode_message(&bad_tag),
            Err(CastanetError::Codec(_))
        ));
    }

    #[test]
    fn in_process_transport_roundtrip() {
        let (mut a, mut b) = in_process_pair();
        for msg in sample_messages() {
            a.send(&msg).unwrap();
            assert_eq!(b.recv().unwrap(), msg);
        }
        // And the reverse direction.
        let msg = sample_messages().remove(1);
        b.send(&msg).unwrap();
        assert_eq!(a.recv().unwrap(), msg);
    }

    #[test]
    fn in_process_try_recv() {
        let (mut a, mut b) = in_process_pair();
        assert!(b.try_recv().unwrap().is_none());
        a.send(&sample_messages()[0]).unwrap();
        assert!(b.try_recv().unwrap().is_some());
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn dropped_peer_is_a_transport_error() {
        let (mut a, b) = in_process_pair();
        drop(b);
        assert!(matches!(
            a.send(&sample_messages()[0]),
            Err(CastanetError::Transport(_))
        ));
    }

    #[test]
    fn unix_socket_transport_roundtrip() {
        let (mut a, mut b) = UnixSocketTransport::pair().unwrap();
        for msg in sample_messages() {
            a.send(&msg).unwrap();
            assert_eq!(b.recv().unwrap(), msg);
        }
        let msg = sample_messages().remove(0);
        b.send(&msg).unwrap();
        assert_eq!(a.recv().unwrap(), msg);
    }

    #[test]
    fn unix_socket_try_recv() {
        let (mut a, mut b) = UnixSocketTransport::pair().unwrap();
        assert!(b.try_recv().unwrap().is_none());
        a.send(&sample_messages()[1]).unwrap();
        // The frame is in the socket buffer by now (same process).
        assert_eq!(b.try_recv().unwrap(), Some(sample_messages()[1].clone()));
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn unix_socket_across_threads() {
        let (mut a, mut b) = UnixSocketTransport::pair().unwrap();
        let msgs = sample_messages();
        let expected = msgs.clone();
        let handle = std::thread::spawn(move || {
            for msg in &msgs {
                a.send(msg).unwrap();
            }
        });
        for expect in &expected {
            assert_eq!(&b.recv().unwrap(), expect);
        }
        handle.join().unwrap();
    }
}
