//! The parallel coupled-engine executor: originator and follower engines on
//! separate threads, coupled by lock-free SPSC rings.
//!
//! The serial [`Coupling`](crate::coupling::Coupling) interleaves both
//! simulators on one thread, so §3.1's protocol — designed so the HDL side
//! can run *while* the network side keeps going — is never exercised as
//! actual parallelism. This module is the concurrent executive:
//!
//! * the **network kernel stays on the calling thread** (it owns the
//!   interface outbox, which is deliberately thread-local);
//! * the **follower and its [`ConservativeSync`] run on a spawned scoped
//!   thread**; they receive *timing windows* — the per-message-type input
//!   queue contents `I_j` plus a grant horizon — through a preallocated
//!   [`SpscRing`] of command slots and answer through a second ring of
//!   reply slots. Slot payloads are `mem::swap`ped in and out, so the
//!   steady state moves **no allocations across the thread boundary**,
//!   and a side that cannot make progress spins briefly and then parks
//!   (see the [`ring`](crate::ring) module docs for the slot protocol);
//! * **cell batching** amortizes the ~1:400 cell-to-clock time-scale gap:
//!   instead of one rendezvous per network event, the originator executes a
//!   whole window of events, drains the abstraction interface once, and
//!   ships the batch together with one grant. The follower plays the batch
//!   with a single [`CoupledSimulator::advance_batch`] sweep;
//! * **adaptive grant windows** ([`AdaptiveWindow`]) tune the batch length
//!   at run time: when the window pipeline runs deep (the follower is the
//!   bottleneck) the window widens toward the per-type δ_j headroom the
//!   synchronizer already knows, so each rendezvous carries more work;
//!   when the pipeline idles the window shrinks so responses pipeline back
//!   sooner. The controller observes the in-flight window count, not the
//!   raw ring occupancy — a deterministic input, so widths (and the
//!   network kernel's whole time trajectory) are reproducible run to run;
//! * **time-warp** ([`ExecMode::TimeWarp`]) speculates through stimulus
//!   silence: after a stimulus-free window the follower checkpoints itself
//!   ([`CoupledSimulator::fork`]), runs ahead of the granted horizon, and
//!   buffers the speculative responses. If the grant later catches up
//!   before new stimulus arrives, the buffered work commits for free; if
//!   stimulus invalidates it, the follower rolls back to the checkpoint
//!   and replays conservatively — so the observable trace is identical to
//!   conservative execution by construction.
//!
//! Protocol → thread/ring mapping (Fig. 3): every non-null message of the
//! window raises the originator time on the follower's synchronizer; the
//! window's grant is the time-stamped null message; the follower advances to
//! the grant and never past it (speculation runs past it only on forked
//! state that is discarded unless the grant catches up), so the lag
//! invariant `t_local ≤ grant` holds exactly as in the serial executive.
//! Responses produced while the originator has already raced ahead arrive
//! "behind" the network clock — that pipeline lag is counted in
//! [`CouplingStats::deferred_responses`] and injected at the network's
//! current time through the same [`inject_responses`] path the serial
//! executive uses, which is sound under the feedforward assumption
//! (responses feed monitors, never new stimulus). Because "the network's
//! current time" depends on *where* in the stream a reply is absorbed,
//! the originator absorbs replies only at deterministic pipeline
//! positions (pipeline-full, and the end-of-stream barrier): injected
//! timestamps, window widths, and `deferred_responses` counts are all
//! pure functions of the scenario and configuration, never of how the OS
//! happened to interleave the two threads.

use crate::coupling::{
    inject_responses, preflight_checks, CoupledSimulator, CouplingStats, SyncCounters,
};
use crate::error::CastanetError;
use crate::interface::OutboxHandle;
use crate::message::{Message, MessageTypeId};
use crate::ring::{spin_round, spin_rounds, RingConsumer, RingProducer, SpscRing};
use crate::sync::conservative::{ConservativeSync, SyncStats};
use castanet_netsim::event::ModuleId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Counter, EventKind, Gauge, Histogram, Phase, Telemetry, Track};
use std::collections::VecDeque;

/// How the executor schedules the follower relative to the grant horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// §3.1's conservative protocol: the follower never runs past the
    /// granted horizon. Always safe, no checkpointing required.
    #[default]
    Conservative,
    /// Optimistic execution with rollback: after stimulus-free windows the
    /// follower forks a checkpoint and speculates past the grant; buffered
    /// speculative responses commit when the grant catches up and roll
    /// back when stimulus invalidates them. Requires a follower whose
    /// [`CoupledSimulator::fork`] returns `Some`; the observable trace is
    /// identical to [`ExecMode::Conservative`] by construction.
    TimeWarp,
}

/// Run-time controller for the batch-window length, bounded below by an
/// eighth of the configured base window and above by the base window plus
/// the per-type processing-delay headroom δ_j (so a widened window never
/// promises further ahead than the synchronizer's own lookahead allows).
///
/// The policy is multiplicative-increase/multiplicative-decrease on the
/// pipeline occupancy (windows in flight over pipeline capacity): a
/// pipeline at least half full means the follower is the bottleneck and
/// each rendezvous should carry more simulated time; an empty pipeline
/// means the follower is starved and narrower windows pipeline responses
/// back sooner. The executor feeds it the in-flight window count — a pure
/// function of the scenario, never of wall-clock thread scheduling — so
/// the width sequence, and with it the whole simulated-time trajectory,
/// is reproducible run to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveWindow {
    base: SimDuration,
    headroom: SimDuration,
    floor: SimDuration,
    current: SimDuration,
}

impl AdaptiveWindow {
    /// A controller starting at `base` with widening headroom `headroom`
    /// (typically the δ_j of the stimulus message type).
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero.
    #[must_use]
    pub fn new(base: SimDuration, headroom: SimDuration) -> Self {
        assert!(!base.is_zero(), "adaptive window base must be non-zero");
        let floor = (base / 8).max(SimDuration::from_picos(1));
        AdaptiveWindow {
            base,
            headroom,
            floor,
            current: base,
        }
    }

    /// Feeds one pipeline-occupancy observation to the controller and
    /// returns the window length to use for the next batch. The result
    /// always satisfies `floor() ≤ width ≤ bound()`.
    pub fn observe(&mut self, occupancy: usize, capacity: usize) -> SimDuration {
        if occupancy * 2 >= capacity {
            self.current = (self.current * 2).min(self.bound());
        } else if occupancy == 0 {
            self.current = (self.current / 2).max(self.floor);
        }
        self.current
    }

    /// The width the next window will use.
    #[must_use]
    pub fn current(&self) -> SimDuration {
        self.current
    }

    /// The upper bound: base window plus the δ_j headroom.
    #[must_use]
    pub fn bound(&self) -> SimDuration {
        self.base + self.headroom
    }

    /// The lower bound: an eighth of the base window (at least 1 ps).
    #[must_use]
    pub fn floor(&self) -> SimDuration {
        self.floor
    }
}

/// What a command slot currently holds. Slots are preallocated, so an
/// explicit `Empty` state marks recycled entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum CmdKind {
    #[default]
    Empty,
    Window,
    Drain,
}

/// One preallocated command-ring slot: a timing window (stimulus batch in
/// stamp order plus the grant horizon) or a drain request. The `msgs`
/// buffer is `mem::swap`ped with the producer's scratch on push and the
/// follower's scratch on pop, so its capacity circulates instead of being
/// reallocated per window.
#[derive(Debug, Default)]
struct CmdEntry {
    kind: CmdKind,
    msgs: Vec<Message>,
    grant: SimTime,
    quantum: SimDuration,
    quiet_chunks: u32,
    until: SimTime,
}

/// What a reply slot currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum RepKind {
    #[default]
    Empty,
    /// All responses of one window (exactly one per `CmdKind::Window`).
    Window,
    /// Responses produced during a drain chunk (zero or more per drain).
    Drained,
    /// The drain completed quietly (exactly one per `CmdKind::Drain`).
    DrainDone,
    /// The follower hit an unrecoverable error and exits its loop.
    Fatal,
}

/// One preallocated reply-ring slot.
#[derive(Debug, Default)]
struct RepEntry {
    kind: RepKind,
    msgs: Vec<Message>,
    error: Option<CastanetError>,
}

/// The parallel coupling executive — same API shape as
/// [`Coupling`](crate::coupling::Coupling), but [`ParallelCoupling::run`]
/// executes the two engines concurrently.
///
/// Construction recipe is identical to the serial coupling; an existing
/// serial coupling converts with
/// [`Coupling::into_parallel`](crate::coupling::Coupling::into_parallel).
pub struct ParallelCoupling<S: CoupledSimulator + Send> {
    net: Kernel,
    follower: S,
    sync: ConservativeSync,
    cell_type: MessageTypeId,
    outbox: OutboxHandle,
    iface: ModuleId,
    stats: CouplingStats,
    /// Largest grant promised to the follower; promises are monotone (see
    /// the serial coupling's field of the same name).
    promised: SimTime,
    drain_quantum: SimDuration,
    drain_quiet_chunks: u32,
    strict: bool,
    /// Simulated-time length of one batched timing window (the adaptive
    /// controller's base when [`ParallelCoupling::with_adaptive_window`]
    /// is on).
    batch_window: SimDuration,
    /// Command-ring capacity: how many windows the originator may run
    /// ahead of the follower before its pushes block (bounded pipeline
    /// lag).
    channel_depth: usize,
    exec_mode: ExecMode,
    adaptive: bool,
    /// Speculation lookahead for [`ExecMode::TimeWarp`]; defaults to the
    /// batch window when unset.
    spec_window: Option<SimDuration>,
    /// Telemetry handle; disabled (all recording a no-op) by default.
    tel: Telemetry,
}

impl<S: CoupledSimulator + Send> std::fmt::Debug for ParallelCoupling<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelCoupling")
            .field("net_now", &self.net.now())
            .field("follower_now", &self.follower.now())
            .field("batch_window", &self.batch_window)
            .field("channel_depth", &self.channel_depth)
            .field("exec_mode", &self.exec_mode)
            .field("adaptive", &self.adaptive)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<S: CoupledSimulator + Send> ParallelCoupling<S> {
    /// Assembles a parallel coupling. Arguments are identical to
    /// [`Coupling::new`](crate::coupling::Coupling::new).
    #[must_use]
    pub fn new(
        net: Kernel,
        follower: S,
        sync: ConservativeSync,
        cell_type: MessageTypeId,
        iface: ModuleId,
        outbox: OutboxHandle,
    ) -> Self {
        ParallelCoupling {
            net,
            follower,
            sync,
            cell_type,
            outbox,
            iface,
            stats: CouplingStats::default(),
            promised: SimTime::ZERO,
            drain_quantum: SimDuration::from_us(50),
            drain_quiet_chunks: 2,
            strict: false,
            batch_window: SimDuration::from_us(100),
            channel_depth: 4,
            exec_mode: ExecMode::Conservative,
            adaptive: true,
            spec_window: None,
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle to every layer — as
    /// [`Coupling::with_telemetry`](crate::coupling::Coupling::with_telemetry),
    /// plus the executor's own transport metrics: `channel.in_flight`
    /// occupancy, `channel.grant_latency_ns`, `channel.window_msgs`,
    /// `channel.backpressure_stalls`, the ring gauges
    /// `ring.grant_width_ps` / `ring.cmd_occupancy` and the park counters
    /// `ring.originator_parks` / `ring.follower_parks` (plus
    /// `timewarp.commits` / `timewarp.rollbacks` under
    /// [`ExecMode::TimeWarp`]). Both threads record into the shared trace
    /// sink, each on its own track.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self.net.set_telemetry(tel);
        self.sync.set_telemetry(tel);
        self.follower.set_telemetry(tel);
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`ParallelCoupling::with_telemetry`] was called).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Enables (or disables) strict mode — as
    /// [`Coupling::with_strict`](crate::coupling::Coupling::with_strict).
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Whether strict pre-flight mode is enabled.
    #[must_use]
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Selects the execution mode (conservative by default).
    #[must_use]
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// The configured execution mode.
    #[must_use]
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Enables (default) or disables the [`AdaptiveWindow`] controller.
    /// When disabled every window uses the fixed batch window from
    /// [`ParallelCoupling::with_batching`].
    #[must_use]
    pub fn with_adaptive_window(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Whether the adaptive grant-window controller is enabled.
    #[must_use]
    pub fn adaptive_window(&self) -> bool {
        self.adaptive
    }

    /// Sets the [`ExecMode::TimeWarp`] speculation lookahead (how far past
    /// the granted horizon the follower runs ahead on forked state). The
    /// default is the batch window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_speculation(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "speculation window must be non-zero");
        self.spec_window = Some(window);
        self
    }

    /// The configured speculation lookahead, if any.
    #[must_use]
    pub fn speculation_window(&self) -> Option<SimDuration> {
        self.spec_window
    }

    /// Tunes the final drain — as
    /// [`Coupling::with_drain`](crate::coupling::Coupling::with_drain).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or `quiet_chunks` is zero.
    #[must_use]
    pub fn with_drain(mut self, quantum: SimDuration, quiet_chunks: u32) -> Self {
        assert!(!quantum.is_zero(), "drain quantum must be non-zero");
        assert!(quiet_chunks > 0, "need at least one quiet chunk");
        self.drain_quantum = quantum;
        self.drain_quiet_chunks = quiet_chunks;
        self
    }

    /// Tunes the batching: `batch_window` of simulated time per timing
    /// window (larger windows = fewer thread rendezvous but coarser
    /// response pipelining), `channel_depth` windows of bounded run-ahead
    /// (the command-ring capacity).
    ///
    /// # Panics
    ///
    /// Panics if `batch_window` is zero or `channel_depth` is zero.
    #[must_use]
    pub fn with_batching(mut self, batch_window: SimDuration, channel_depth: usize) -> Self {
        assert!(!batch_window.is_zero(), "batch window must be non-zero");
        assert!(channel_depth > 0, "need at least one ring slot");
        self.batch_window = batch_window;
        self.channel_depth = channel_depth;
        self
    }

    /// Static pre-flight verification — the same error-level checks as
    /// [`Coupling::preflight`](crate::coupling::Coupling::preflight),
    /// including the follower's own
    /// [`structural_preflight`](CoupledSimulator::structural_preflight).
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Preflight`] listing every finding.
    pub fn preflight(&self) -> Result<(), CastanetError> {
        let mut findings = preflight_checks(&self.net, &self.sync, self.cell_type, self.iface);
        findings.extend(self.follower.structural_preflight());
        if findings.is_empty() {
            Ok(())
        } else {
            Err(CastanetError::Preflight(findings))
        }
    }

    /// Runs the coupled simulation until no activity remains before
    /// `until` on either side, with the two engines on separate threads.
    ///
    /// # Errors
    ///
    /// Propagates simulator, conversion and synchronization errors from
    /// either thread; [`CastanetError::Transport`] when
    /// [`ExecMode::TimeWarp`] is selected but the follower's
    /// [`CoupledSimulator::fork`] returns `None`.
    pub fn run(&mut self, until: SimTime) -> Result<CouplingStats, CastanetError> {
        if self.strict {
            self.preflight()?;
        }
        if self.exec_mode == ExecMode::TimeWarp && self.follower.fork().is_none() {
            return Err(CastanetError::Transport(
                "ExecMode::TimeWarp needs a checkpointable follower \
                 (CoupledSimulator::fork returned None)"
                    .into(),
            ));
        }
        let batch_window = self.batch_window;
        let channel_depth = self.channel_depth;
        let drain_quantum = self.drain_quantum;
        let drain_quiet_chunks = self.drain_quiet_chunks;
        let cell_type = self.cell_type;
        let iface = self.iface;
        let exec_mode = self.exec_mode;
        let spec_window = self.spec_window.unwrap_or(batch_window);
        // δ_j headroom for the adaptive controller, read before the &mut
        // borrows below freeze `self`.
        let headroom = self.sync.type_delta(cell_type).unwrap_or(SimDuration::ZERO);
        let mut window_ctl = self
            .adaptive
            .then(|| AdaptiveWindow::new(batch_window, headroom));
        let net = &mut self.net;
        let stats = &mut self.stats;
        let outbox = &self.outbox;
        let follower = &mut self.follower;
        let sync = &mut self.sync;
        let promised = &mut self.promised;
        let follower_tel = self.tel.clone();
        // Separate handle for the originator's phase spans: `SpanGuard`
        // borrows its `Telemetry`, and borrowing it out of `obs` would
        // freeze the `&mut obs` every reply needs.
        let phase_tel = self.tel.clone();
        let mut obs = OriginatorObs::new(&self.tel);

        let mut cmd_ring = SpscRing::<CmdEntry>::new(channel_depth);
        // One reply per in-flight window plus headroom, so the follower
        // can always post a DrainDone or Fatal without waiting on the
        // originator.
        let mut rep_ring = SpscRing::<RepEntry>::new(channel_depth + 2);
        let run_result = {
            let (mut cmd_tx, cmd_rx) = cmd_ring.split();
            let (rep_tx, mut rep_rx) = rep_ring.split();
            std::thread::scope(|scope| -> Result<(), CastanetError> {
                scope.spawn(move || {
                    let mut cmd_rx = cmd_rx;
                    let mut rep_tx = rep_tx;
                    // Close the rings even if the worker panics (debug
                    // asserts), or the originator blocks forever on a
                    // reply that will never come.
                    let worker = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        follower_worker(
                            follower,
                            sync,
                            promised,
                            cell_type,
                            exec_mode,
                            spec_window,
                            &mut cmd_rx,
                            &mut rep_tx,
                            &follower_tel,
                        );
                    }));
                    rep_tx.close();
                    cmd_rx.close();
                    if let Err(panic) = worker {
                        std::panic::resume_unwind(panic);
                    }
                });
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    originator_loop(
                        &mut cmd_tx,
                        &mut rep_rx,
                        net,
                        stats,
                        outbox,
                        iface,
                        until,
                        batch_window,
                        &mut window_ctl,
                        drain_quantum,
                        drain_quiet_chunks,
                        &phase_tel,
                        &mut obs,
                    )
                }));
                // Closing both rings (on success, error, *and* unwind)
                // wakes a parked follower so the scope's implicit join
                // returns.
                cmd_tx.close();
                rep_rx.close();
                match result {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            })
        };
        let cmd_waits = cmd_ring.wait_stats();
        let rep_waits = rep_ring.wait_stats();
        self.tel
            .counter("ring.originator_parks")
            .add(cmd_waits.producer_parks + rep_waits.consumer_parks);
        self.tel
            .counter("ring.follower_parks")
            .add(cmd_waits.consumer_parks + rep_waits.producer_parks);
        run_result?;
        Ok(self.stats)
    }

    /// The network kernel (e.g. for statistics after the run).
    #[must_use]
    pub fn net(&self) -> &Kernel {
        &self.net
    }

    /// The follower (e.g. for RTL counters after the run).
    #[must_use]
    pub fn follower(&self) -> &S {
        &self.follower
    }

    /// Mutable follower access.
    pub fn follower_mut(&mut self) -> &mut S {
        &mut self.follower
    }

    /// The conservative synchronizer.
    #[must_use]
    pub fn sync(&self) -> &ConservativeSync {
        &self.sync
    }

    /// The interface process's module id inside the network kernel.
    #[must_use]
    pub fn iface_module(&self) -> ModuleId {
        self.iface
    }

    /// The message type stimulus cells are sent as.
    #[must_use]
    pub fn cell_type(&self) -> MessageTypeId {
        self.cell_type
    }

    /// Coupling counters.
    #[must_use]
    pub fn stats(&self) -> CouplingStats {
        self.stats
    }

    /// Synchronization-protocol statistics.
    #[must_use]
    pub fn sync_stats(&self) -> SyncStats {
        self.sync.stats()
    }

    /// A clone of the interface outbox handle.
    #[must_use]
    pub fn outbox(&self) -> OutboxHandle {
        self.outbox.clone()
    }

    /// Dismantles the coupling, returning the network kernel and follower.
    #[must_use]
    pub fn into_parts(self) -> (Kernel, S) {
        (self.net, self.follower)
    }
}

/// The originator's three-phase loop: stream timing windows, barrier on
/// outstanding replies, drain the follower's pipeline. Factored out of
/// [`ParallelCoupling::run`] so every early return funnels through the
/// ring-closing epilogue there.
///
/// Replies are absorbed only at deterministic points — one blocking pop
/// when the pipeline is full, the rest at the barrier — because the
/// absorption point fixes the network time deferred responses are
/// injected at (see the module docs on reproducibility).
#[allow(clippy::too_many_arguments)]
fn originator_loop(
    cmd_tx: &mut RingProducer<'_, CmdEntry>,
    rep_rx: &mut RingConsumer<'_, RepEntry>,
    net: &mut Kernel,
    stats: &mut CouplingStats,
    outbox: &OutboxHandle,
    iface: ModuleId,
    until: SimTime,
    batch_window: SimDuration,
    window_ctl: &mut Option<AdaptiveWindow>,
    drain_quantum: SimDuration,
    drain_quiet_chunks: u32,
    phase_tel: &Telemetry,
    obs: &mut OriginatorObs,
) -> Result<(), CastanetError> {
    // Producer-side stimulus scratch: swapped into command slots, slot
    // leftovers swap back out, so capacities circulate across the ring.
    let mut scratch: Vec<Message> = Vec::new();
    // Consumer-side reply scratch, same circulation on the reply ring.
    let mut reply_buf: Vec<Message> = Vec::new();
    // Windows sent but not yet answered.
    let mut in_flight = 0usize;
    // Stimulus delivered as of the last completed drain: if no new
    // message reached the follower since, its pipeline is untouched
    // and provably still quiet — re-draining would only burn
    // simulated (and wall-clock) time on an idle DUT.
    let mut drained_at: Option<u64> = None;
    // Originator-side mirror of the largest grant shipped this run;
    // windows that carry neither stimulus nor a new grant are
    // no-ops on the follower and need not rendezvous at all.
    let mut sent_grant = SimTime::ZERO;
    loop {
        // ---- phase 1: stream timing windows -------------------
        let mut grant_span = phase_tel.span(
            Track::Originator,
            net.now().as_picos(),
            Phase::ParallelGrant,
        );
        while let Some(t0) = net.next_event_time().filter(|t| *t < until) {
            let width = match window_ctl.as_mut() {
                Some(ctl) => {
                    let w = ctl.observe(in_flight, cmd_tx.capacity());
                    obs.grant_width.set(w.as_picos());
                    w
                }
                None => batch_window,
            };
            let w = until.min(t0 + width);
            let window_start = obs.tel.now_ns();
            let executed = net.run_grant_window(w)?;
            stats.net_events += executed;
            obs.tel.record_span(
                Track::Originator,
                w.as_picos(),
                window_start,
                EventKind::NetWindow { events: executed },
            );
            debug_assert!(
                scratch.is_empty(),
                "originator stimulus scratch held {} leftover message(s) (first stamp {:?})",
                scratch.len(),
                scratch.first().map(|m| m.stamp)
            );
            outbox.drain_into(&mut scratch);
            stats.messages_to_follower += scratch.len() as u64;
            // Maximal-information grant: every event strictly before
            // `w` has run, and source processes schedule their
            // successors as they execute, so the next pending event
            // bounds all future stimulus from below (injected
            // response events are feedforward — they never produce
            // stimulus). With nothing pending, promise only up to
            // the executed front: granting the rest of the batch
            // window would make the follower simulate an idle tail
            // the drain phase handles far more cheaply.
            let grant = match net.next_event_time() {
                Some(t1) => w.max(t1.min(until)),
                None => net.now().min(w),
            };
            if scratch.is_empty() && grant <= sent_grant {
                continue;
            }
            sent_grant = sent_grant.max(grant);
            // Deterministic absorption: replies are taken only at fixed
            // pipeline positions — exactly one here when the pipeline is
            // full, the rest at the phase-2 barrier — never
            // opportunistically. Which window boundary a reply lands on
            // decides the network time its deferred responses are
            // injected at, so absorbing whenever a reply happens to be
            // available would let wall-clock thread scheduling leak into
            // simulated timestamps and break run-to-run reproducibility
            // (replay traces assert bit- *and* cycle-exact responses).
            if in_flight == cmd_tx.capacity() {
                let stall_start = obs.tel.now_ns();
                obs.stalls.inc();
                let mut error = None;
                match pop_reply_blocking(rep_rx, &mut reply_buf, &mut error) {
                    Some(kind) => handle_reply(
                        kind,
                        &mut reply_buf,
                        error,
                        net,
                        stats,
                        iface,
                        &mut in_flight,
                        obs,
                    )?,
                    None => return Err(fatal_from(rep_rx, &mut reply_buf)),
                }
                obs.tel.record_span(
                    Track::Originator,
                    net.now().as_picos(),
                    stall_start,
                    EventKind::BackpressureStall {
                        in_flight: in_flight as u64,
                    },
                );
            }
            obs.window_msgs.record(scratch.len() as u64);
            obs.tel.record(
                Track::Originator,
                net.now().as_picos(),
                EventKind::WindowGranted {
                    grant_ps: grant.as_picos(),
                    msgs: scratch.len() as u64,
                },
            );
            push_cmd(
                cmd_tx,
                rep_rx,
                &mut reply_buf,
                net,
                stats,
                iface,
                &mut in_flight,
                obs,
                |entry| {
                    entry.kind = CmdKind::Window;
                    entry.grant = grant;
                    std::mem::swap(&mut entry.msgs, &mut scratch);
                },
            )?;
            in_flight += 1;
            obs.occupancy.set(in_flight as u64);
            obs.cmd_occupancy.set(cmd_tx.occupancy() as u64);
            if obs.tel.is_enabled() {
                obs.pending.push_back(obs.tel.now_ns());
            }
        }
        // ---- phase 2: barrier — answer every window ------------
        grant_span.set_t_ps(net.now().as_picos());
        drop(grant_span);
        {
            let _wait_span =
                phase_tel.span(Track::Originator, net.now().as_picos(), Phase::ParallelWait);
            while in_flight > 0 {
                let mut error = None;
                match pop_reply_blocking(rep_rx, &mut reply_buf, &mut error) {
                    Some(kind) => handle_reply(
                        kind,
                        &mut reply_buf,
                        error,
                        net,
                        stats,
                        iface,
                        &mut in_flight,
                        obs,
                    )?,
                    None => return Err(fatal_from(rep_rx, &mut reply_buf)),
                }
            }
        }
        if net.next_event_time().is_some_and(|t| t < until) {
            // Injected responses created fresh network work.
            continue;
        }
        // ---- phase 3: drain the follower's pipeline ------------
        // The follower's state only changes when stimulus reaches
        // it; a drain that found the pipeline quiet stays valid
        // until the next delivery (responses injected after the
        // drain only touch the network side).
        if drained_at == Some(stats.messages_to_follower) {
            return Ok(());
        }
        {
            let _drain_span = phase_tel.span(
                Track::Originator,
                net.now().as_picos(),
                Phase::ParallelDrain,
            );
            push_cmd(
                cmd_tx,
                rep_rx,
                &mut reply_buf,
                net,
                stats,
                iface,
                &mut in_flight,
                obs,
                |entry| {
                    entry.kind = CmdKind::Drain;
                    entry.quantum = drain_quantum;
                    entry.quiet_chunks = drain_quiet_chunks;
                    entry.until = until;
                    entry.msgs.clear();
                },
            )?;
            loop {
                let mut error = None;
                match pop_reply_blocking(rep_rx, &mut reply_buf, &mut error) {
                    Some(RepKind::DrainDone) => break,
                    Some(kind) => handle_reply(
                        kind,
                        &mut reply_buf,
                        error,
                        net,
                        stats,
                        iface,
                        &mut in_flight,
                        obs,
                    )?,
                    None => return Err(fatal_from(rep_rx, &mut reply_buf)),
                }
            }
        }
        drained_at = Some(stats.messages_to_follower);
        if net.next_event_time().is_none_or(|t| t >= until) {
            return Ok(());
        }
    }
}

/// Originator-side observation state: cached metric handles plus the send
/// wall-times of windows still in flight (for the grant-latency histogram).
/// All handles are no-ops when the telemetry is disabled, and `pending`
/// stays empty then, so the disabled path costs one branch per use.
struct OriginatorObs {
    tel: Telemetry,
    occupancy: Gauge,
    grant_latency: Histogram,
    window_msgs: Histogram,
    stalls: Counter,
    grant_width: Gauge,
    cmd_occupancy: Gauge,
    sync_counters: SyncCounters,
    pending: VecDeque<u64>,
}

impl OriginatorObs {
    fn new(tel: &Telemetry) -> Self {
        OriginatorObs {
            tel: tel.clone(),
            occupancy: tel.gauge("channel.in_flight"),
            grant_latency: tel.histogram("channel.grant_latency_ns"),
            window_msgs: tel.histogram("channel.window_msgs"),
            stalls: tel.counter("channel.backpressure_stalls"),
            grant_width: tel.gauge("ring.grant_width_ps"),
            cmd_occupancy: tel.gauge("ring.cmd_occupancy"),
            sync_counters: SyncCounters::new(tel),
            pending: VecDeque::new(),
        }
    }
}

/// Pops one reply into the caller's scratch buffers (swapping the slot's
/// message buffer out, leaving the scratch's old — cleared — buffer in).
/// Returns the reply kind, or `None` when the ring is currently empty.
fn take_reply(
    rep_rx: &mut RingConsumer<'_, RepEntry>,
    msgs: &mut Vec<Message>,
    error: &mut Option<CastanetError>,
) -> Option<RepKind> {
    let mut kind = RepKind::Empty;
    msgs.clear();
    *error = None;
    let popped = rep_rx.try_pop_with(|entry| {
        kind = entry.kind;
        entry.kind = RepKind::Empty;
        std::mem::swap(msgs, &mut entry.msgs);
        *error = entry.error.take();
    });
    popped.then_some(kind)
}

/// Blocking reply pop: spin, then park, until a reply arrives or the ring
/// closes empty (`None` — the follower is gone).
fn pop_reply_blocking(
    rep_rx: &mut RingConsumer<'_, RepEntry>,
    msgs: &mut Vec<Message>,
    error: &mut Option<CastanetError>,
) -> Option<RepKind> {
    let mut rounds = 0u32;
    loop {
        if let Some(kind) = take_reply(rep_rx, msgs, error) {
            return Some(kind);
        }
        if rep_rx.is_closed() && !rep_rx.can_pop() {
            return None;
        }
        spin_round();
        rounds += 1;
        if rounds >= spin_rounds() && !rep_rx.can_pop() {
            rep_rx.park_while_empty();
        }
    }
}

/// Originator-side reply handling: inject responses into the network model
/// (through the executor-shared [`inject_responses`] path, in pipelined
/// mode), settle window accounting.
#[allow(clippy::too_many_arguments)]
fn handle_reply(
    kind: RepKind,
    msgs: &mut Vec<Message>,
    error: Option<CastanetError>,
    net: &mut Kernel,
    stats: &mut CouplingStats,
    iface: ModuleId,
    in_flight: &mut usize,
    obs: &mut OriginatorObs,
) -> Result<(), CastanetError> {
    match kind {
        RepKind::Window => {
            *in_flight = in_flight.saturating_sub(1);
            obs.occupancy.set(*in_flight as u64);
            if let Some(sent_ns) = obs.pending.pop_front() {
                obs.grant_latency
                    .record(obs.tel.now_ns().saturating_sub(sent_ns));
            }
            inject_responses(
                net,
                stats,
                iface,
                std::mem::take(msgs),
                true,
                &obs.tel,
                &obs.sync_counters,
            )
            .map(|_| ())
        }
        RepKind::Drained => inject_responses(
            net,
            stats,
            iface,
            std::mem::take(msgs),
            true,
            &obs.tel,
            &obs.sync_counters,
        )
        .map(|_| ()),
        RepKind::Fatal => Err(error.unwrap_or_else(|| {
            CastanetError::Transport("parallel follower reported an unspecified fatal error".into())
        })),
        RepKind::DrainDone | RepKind::Empty => Ok(()),
    }
}

/// Blocking command push. On a full ring the originator first absorbs any
/// queued replies (freeing the follower to make progress — this is what
/// makes the two blocking pushes deadlock-free), then spins, then parks.
/// `fill` is invoked exactly once, on the successful push.
///
/// Under the originator loop's pipeline discipline (`in_flight` is held
/// strictly below the command-ring capacity before every push, and ring
/// occupancy never exceeds `in_flight`) the full-ring path cannot engage;
/// it remains as the deadlock-free backstop for any other call pattern.
#[allow(clippy::too_many_arguments)]
fn push_cmd(
    cmd_tx: &mut RingProducer<'_, CmdEntry>,
    rep_rx: &mut RingConsumer<'_, RepEntry>,
    reply_buf: &mut Vec<Message>,
    net: &mut Kernel,
    stats: &mut CouplingStats,
    iface: ModuleId,
    in_flight: &mut usize,
    obs: &mut OriginatorObs,
    mut fill: impl FnMut(&mut CmdEntry),
) -> Result<(), CastanetError> {
    if cmd_tx.try_push_with(&mut fill) {
        return Ok(());
    }
    // The follower is the bottleneck: every pipeline slot is taken.
    // Record the blocked push as a stall span on the originator's track.
    let stall_start = obs.tel.now_ns();
    obs.stalls.inc();
    let mut rounds = 0u32;
    loop {
        if cmd_tx.is_closed() {
            return Err(fatal_from(rep_rx, reply_buf));
        }
        let mut progressed = false;
        loop {
            let mut error = None;
            let Some(kind) = take_reply(rep_rx, reply_buf, &mut error) else {
                break;
            };
            handle_reply(kind, reply_buf, error, net, stats, iface, in_flight, obs)?;
            progressed = true;
        }
        if cmd_tx.try_push_with(&mut fill) {
            break;
        }
        if progressed {
            rounds = 0;
            continue;
        }
        spin_round();
        rounds += 1;
        if rounds >= spin_rounds() && !cmd_tx.can_push() {
            cmd_tx.park_while_full();
        }
    }
    obs.tel.record_span(
        Track::Originator,
        net.now().as_picos(),
        stall_start,
        EventKind::BackpressureStall {
            in_flight: *in_flight as u64,
        },
    );
    Ok(())
}

/// Scans the reply ring for the fatal error that made the follower thread
/// exit; falls back to a transport error if none surfaced.
fn fatal_from(rep_rx: &mut RingConsumer<'_, RepEntry>, msgs: &mut Vec<Message>) -> CastanetError {
    let mut error = None;
    while let Some(kind) = pop_reply_blocking(rep_rx, msgs, &mut error) {
        if kind == RepKind::Fatal {
            return error.unwrap_or_else(|| {
                CastanetError::Transport(
                    "parallel follower reported an unspecified fatal error".into(),
                )
            });
        }
    }
    CastanetError::Transport("parallel follower thread terminated unexpectedly".into())
}

/// Per-run time-warp state, owned by the follower thread. Speculation is
/// *commit-at-grant*: the follower only runs ahead on forked state after a
/// stimulus-free window, and the buffered responses are revealed to the
/// originator only once a later grant covers the whole speculated stretch
/// — so every reply the originator sees is identical (stamps, order,
/// multiset) to what conservative execution would have produced.
struct WarpState<S> {
    /// How far past the current horizon a speculation runs.
    spec_window: SimDuration,
    /// The forked pre-speculation state; `Some` while a speculation is
    /// outstanding.
    checkpoint: Option<S>,
    /// Responses produced speculatively, withheld until commit.
    spec_buf: Vec<Message>,
    /// Local time the active speculation started from (rollback target).
    spec_from: SimTime,
    /// Local time the active speculation ran to (commit threshold).
    spec_to: SimTime,
    commits: Counter,
    rollbacks: Counter,
}

impl<S> WarpState<S> {
    fn new(spec_window: SimDuration, tel: &Telemetry) -> Self {
        WarpState {
            spec_window,
            checkpoint: None,
            spec_buf: Vec::new(),
            spec_from: SimTime::ZERO,
            spec_to: SimTime::ZERO,
            commits: tel.counter("timewarp.commits"),
            rollbacks: tel.counter("timewarp.rollbacks"),
        }
    }
}

/// Forks a checkpoint and speculatively advances `spec_window` past the
/// follower's current time, buffering the responses. A follower that
/// cannot fork (or errors while speculating) simply stays conservative —
/// speculation is an optimization, never a correctness requirement.
fn speculate<S: CoupledSimulator>(follower: &mut S, warp: &mut WarpState<S>) {
    debug_assert!(warp.checkpoint.is_none(), "speculation already active");
    let Some(checkpoint) = follower.fork() else {
        return;
    };
    let from = follower.now();
    let to = from + warp.spec_window;
    match follower.advance_batch(to) {
        Ok(buf) => {
            warp.checkpoint = Some(checkpoint);
            warp.spec_buf = buf;
            warp.spec_from = from;
            warp.spec_to = to;
        }
        Err(_) => {
            // A speculative failure is not a real failure: restore the
            // checkpoint and let conservative execution (re)discover any
            // genuine error inside the granted horizon.
            *follower = checkpoint;
        }
    }
}

/// Abandons the active speculation (if any): restores the checkpointed
/// follower state and discards the buffered responses, recording the
/// rollback on the follower's trace track.
fn rollback<S: CoupledSimulator>(follower: &mut S, warp: &mut WarpState<S>, tel: &Telemetry) {
    let Some(checkpoint) = warp.checkpoint.take() else {
        return;
    };
    warp.rollbacks.inc();
    tel.record(
        Track::Follower,
        warp.spec_from.as_picos(),
        EventKind::Rollback {
            to_ps: warp.spec_from.as_picos(),
            replayed: warp.spec_buf.len() as u64,
        },
    );
    warp.spec_buf.clear();
    *follower = checkpoint;
}

/// Resolves an active speculation against a freshly computed grant:
/// commits (returning the buffered responses) when the grant covers the
/// whole speculated stretch, rolls back otherwise. Returns an empty vec
/// when there was nothing to resolve.
fn settle_speculation<S: CoupledSimulator>(
    follower: &mut S,
    warp: &mut WarpState<S>,
    granted: SimTime,
    tel: &Telemetry,
) -> Vec<Message> {
    if warp.checkpoint.is_none() {
        return Vec::new();
    }
    if granted >= warp.spec_to {
        warp.commits.inc();
        warp.checkpoint = None;
        std::mem::take(&mut warp.spec_buf)
    } else {
        rollback(follower, warp, tel);
        Vec::new()
    }
}

/// The follower thread: pops commands off the ring (spin-then-park when
/// empty), plays timing windows and drain requests in order, and pushes
/// replies back. The spawn wrapper in [`ParallelCoupling::run`] closes
/// both rings after this returns — or unwinds — so a blocked peer wakes
/// and observes termination.
#[allow(clippy::too_many_arguments)]
fn follower_worker<S: CoupledSimulator>(
    follower: &mut S,
    sync: &mut ConservativeSync,
    promised: &mut SimTime,
    cell_type: MessageTypeId,
    exec_mode: ExecMode,
    spec_window: SimDuration,
    cmd_rx: &mut RingConsumer<'_, CmdEntry>,
    rep_tx: &mut RingProducer<'_, RepEntry>,
    tel: &Telemetry,
) {
    let mut warp = match exec_mode {
        ExecMode::TimeWarp => Some(WarpState::new(spec_window, tel)),
        ExecMode::Conservative => None,
    };
    // Consumer-side stimulus scratch: swapped with command slots, drained
    // by `window_step`, so one buffer serves the whole run.
    let mut msgs: Vec<Message> = Vec::new();
    let mut idle_rounds = 0u32;
    loop {
        let mut kind = CmdKind::Empty;
        let mut grant = SimTime::ZERO;
        let mut quantum = SimDuration::ZERO;
        let mut quiet_chunks = 0u32;
        let mut until = SimTime::ZERO;
        debug_assert!(
            msgs.is_empty(),
            "follower stimulus scratch leaked {} message(s)",
            msgs.len()
        );
        let popped = cmd_rx.try_pop_with(|entry| {
            kind = entry.kind;
            entry.kind = CmdKind::Empty;
            grant = entry.grant;
            quantum = entry.quantum;
            quiet_chunks = entry.quiet_chunks;
            until = entry.until;
            std::mem::swap(&mut msgs, &mut entry.msgs);
        });
        if !popped {
            if cmd_rx.is_closed() && !cmd_rx.can_pop() {
                break;
            }
            // An empty command ring is the time-warp opening: run ahead
            // speculatively instead of spinning while the originator
            // assembles the next window. The checkpoint guard makes this
            // one speculation per idle period, not one per poll.
            if let Some(w) = warp.as_mut() {
                if w.checkpoint.is_none() {
                    speculate(follower, w);
                    continue;
                }
            }
            spin_round();
            idle_rounds += 1;
            if idle_rounds >= spin_rounds() && !cmd_rx.can_pop() {
                cmd_rx.park_while_empty();
            }
            continue;
        }
        idle_rounds = 0;
        match kind {
            CmdKind::Empty => {}
            CmdKind::Window => {
                match window_step(
                    follower,
                    sync,
                    promised,
                    cell_type,
                    &mut msgs,
                    grant,
                    warp.as_mut(),
                    tel,
                ) {
                    Ok(responses) => {
                        if !push_reply(rep_tx, RepKind::Window, responses, None) {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = push_reply(rep_tx, RepKind::Fatal, Vec::new(), Some(e));
                        break;
                    }
                }
            }
            CmdKind::Drain => {
                match drain_step(
                    follower,
                    sync,
                    promised,
                    cell_type,
                    quantum,
                    quiet_chunks,
                    until,
                    warp.as_mut(),
                    rep_tx,
                    tel,
                ) {
                    Ok(true) => {
                        if !push_reply(rep_tx, RepKind::DrainDone, Vec::new(), None) {
                            break;
                        }
                    }
                    Ok(false) => break,
                    Err(e) => {
                        let _ = push_reply(rep_tx, RepKind::Fatal, Vec::new(), Some(e));
                        break;
                    }
                }
            }
        }
    }
}

/// Blocking reply push: spin, then park, until a slot frees up or the
/// ring closes (`false` — the originator is gone). The payload is moved
/// into the slot exactly once, on the successful push.
fn push_reply(
    rep_tx: &mut RingProducer<'_, RepEntry>,
    kind: RepKind,
    msgs: Vec<Message>,
    error: Option<CastanetError>,
) -> bool {
    let mut payload = Some((msgs, error));
    let mut rounds = 0u32;
    loop {
        let pushed = rep_tx.try_push_with(|entry| {
            let (m, e) = payload.take().expect("reply filled exactly once");
            entry.kind = kind;
            entry.msgs = m;
            entry.error = e;
        });
        if pushed {
            return true;
        }
        if rep_tx.is_closed() {
            return false;
        }
        spin_round();
        rounds += 1;
        if rounds >= spin_rounds() && !rep_tx.can_push() {
            rep_tx.park_while_full();
        }
    }
}

/// Plays one timing window on the follower. Conservative mode: queue the
/// stimulus (raising the originator clock per message), take the grant
/// (the null message), sweep the whole window in one batched advance, then
/// settle the local clock — never past the grant. Time-warp mode wraps
/// the same step with speculation bookkeeping: stimulus rolls an active
/// speculation back, a grant covering the speculated stretch commits it,
/// and stimulus-free windows start the next speculation.
#[allow(clippy::too_many_arguments)]
fn window_step<S: CoupledSimulator>(
    follower: &mut S,
    sync: &mut ConservativeSync,
    promised: &mut SimTime,
    cell_type: MessageTypeId,
    msgs: &mut Vec<Message>,
    grant: SimTime,
    warp: Option<&mut WarpState<S>>,
    tel: &Telemetry,
) -> Result<Vec<Message>, CastanetError> {
    let Some(warp) = warp else {
        return conservative_step(follower, sync, promised, cell_type, msgs, grant, tel);
    };
    if warp.checkpoint.is_some() && !msgs.is_empty() {
        // Stimulus invalidates the speculation: it must be delivered to
        // the pre-speculation state.
        rollback(follower, warp, tel);
    }
    if warp.checkpoint.is_some() {
        // Stimulus-free window over an active speculation: raise the
        // grant, then either commit the buffered stretch or (if the
        // grant still falls short of it) roll back and replay.
        if grant > *promised {
            sync.receive(cell_type, grant, true)?;
            *promised = grant;
        }
        let granted = sync.grant();
        let mut responses = settle_speculation(follower, warp, granted, tel);
        let advance_start = tel.now_ns();
        responses.extend(follower.advance_batch(granted)?);
        tel.record_span(
            Track::Follower,
            granted.as_picos(),
            advance_start,
            EventKind::FollowerAdvance {
                granted_ps: granted.as_picos(),
                responses: responses.len() as u64,
            },
        );
        let local = follower.now().max(sync.local_time()).min(granted);
        sync.advance_local(local)?;
        speculate(follower, warp);
        return Ok(responses);
    }
    let stimulus_free = msgs.is_empty();
    let responses = conservative_step(follower, sync, promised, cell_type, msgs, grant, tel)?;
    if stimulus_free {
        speculate(follower, warp);
    }
    Ok(responses)
}

/// The conservative window step shared by both execution modes; drains
/// the stimulus scratch so its capacity returns to the ring.
fn conservative_step<S: CoupledSimulator>(
    follower: &mut S,
    sync: &mut ConservativeSync,
    promised: &mut SimTime,
    cell_type: MessageTypeId,
    msgs: &mut Vec<Message>,
    grant: SimTime,
    tel: &Telemetry,
) -> Result<Vec<Message>, CastanetError> {
    for msg in msgs.iter() {
        sync.receive(msg.type_id, msg.stamp, false)?;
        tel.record(
            Track::Follower,
            msg.stamp.as_picos(),
            EventKind::StimulusEnqueued {
                type_id: msg.type_id.0,
                port: msg.port as u32,
                stamp_ps: msg.stamp.as_picos(),
            },
        );
    }
    if grant > *promised {
        sync.receive(cell_type, grant, true)?;
        *promised = grant;
    }
    let granted = sync.grant();
    let advance_start = tel.now_ns();
    let mut responses = Vec::new();
    // Play the batch lazily: advance to just before each stamp, then
    // deliver. Handing the whole window to the follower up front would
    // keep its pending-event set large for the window's entire span,
    // which prices every queue operation of an event-driven follower up
    // (and defeats idle skipping between cells); delivered one cell
    // ahead of the sweep, the follower's queue stays as small as under
    // the serial per-event rendezvous.
    for msg in msgs.drain(..) {
        let target = msg.stamp.min(granted);
        if target > follower.now() {
            // `target > now() ≥ 0`, so the 1 ps step back cannot
            // underflow; it keeps the clock edge at the stamp itself
            // ahead of the delivery.
            let play_from = target - SimDuration::from_picos(1);
            if play_from > follower.now() {
                responses.extend(follower.advance_batch(play_from)?);
            }
        }
        follower.deliver(msg)?;
    }
    responses.extend(follower.advance_batch(granted)?);
    tel.record_span(
        Track::Follower,
        granted.as_picos(),
        advance_start,
        EventKind::FollowerAdvance {
            granted_ps: granted.as_picos(),
            responses: responses.len() as u64,
        },
    );
    let local = follower.now().max(sync.local_time()).min(granted);
    sync.advance_local(local)?;
    Ok(responses)
}

/// Drains the follower's pipeline in `quantum`-sized chunks, forwarding
/// responses as they surface. An active speculation is resolved against
/// the first chunk's grant (committed when covered, rolled back and
/// replayed otherwise). Returns `Ok(true)` when quiet, `Ok(false)` when
/// the originator went away mid-drain.
#[allow(clippy::too_many_arguments)]
fn drain_step<S: CoupledSimulator>(
    follower: &mut S,
    sync: &mut ConservativeSync,
    promised: &mut SimTime,
    cell_type: MessageTypeId,
    quantum: SimDuration,
    quiet_chunks: u32,
    until: SimTime,
    mut warp: Option<&mut WarpState<S>>,
    rep_tx: &mut RingProducer<'_, RepEntry>,
    tel: &Telemetry,
) -> Result<bool, CastanetError> {
    let mut quiet = 0u32;
    // In time-warp mode the drain itself opens with a speculation when
    // none survived the window stream (a saturated command ring never
    // lets the follower speculate between windows), so the first chunk
    // below resolves it — usually as a commit, the drain horizon being
    // far wider than the speculation window.
    if let Some(w) = warp.as_mut() {
        if w.checkpoint.is_none() {
            speculate(follower, w);
        }
    }
    loop {
        let horizon = (follower.now().max(sync.local_time()) + quantum)
            .min(until)
            .max(*promised);
        if horizon > *promised {
            sync.receive(cell_type, horizon, true)?;
            *promised = horizon;
        }
        let granted = sync.grant();
        let chunk_start = tel.now_ns();
        let mut responses = match warp.as_mut() {
            Some(w) => settle_speculation(follower, w, granted, tel),
            None => Vec::new(),
        };
        responses.extend(follower.advance_batch(granted)?);
        tel.record_span(
            Track::Follower,
            granted.as_picos(),
            chunk_start,
            EventKind::DrainChunk {
                horizon_ps: granted.as_picos(),
                responses: responses.len() as u64,
            },
        );
        let local = follower.now().max(sync.local_time()).min(granted);
        sync.advance_local(local)?;
        if responses.is_empty() {
            quiet += 1;
            if quiet >= quiet_chunks || follower.now() >= until {
                return Ok(true);
            }
        } else {
            quiet = 0;
            if !push_reply(rep_tx, RepKind::Drained, responses, None) {
                return Ok(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::Coupling;
    use crate::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
    use crate::interface::CastanetInterfaceProcess;
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;
    use castanet_atm::traffic::source::{payload_seq, TrafficSourceProcess};
    use castanet_atm::traffic::Cbr;
    use castanet_netsim::event::PortId;
    use castanet_netsim::process::{CollectorHandle, CollectorProcess};
    use castanet_rtl::cycle::CycleSim;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    const CLK: SimDuration = SimDuration::from_ns(20);

    /// Full co-verification fixture (cycle-based follower): CBR source ->
    /// interface -> 2-port RTL switch (route 1/40 -> line 1 as 7/70) ->
    /// response -> collector. Same shape as the serial coupling's fixture.
    fn build(cells: u64, gap: SimDuration) -> (Coupling<CycleCosim>, CollectorHandle) {
        let mut net = Kernel::new(7);
        let node = net.add_node("coverify");
        let src = net.add_module(
            node,
            "src",
            Box::new(
                TrafficSourceProcess::new(VpiVci::uni(1, 40).unwrap(), Box::new(Cbr::new(gap)))
                    .with_limit(cells),
            ),
        );
        let mut sync = ConservativeSync::new();
        let cell_type = sync.register_type(CLK * 53);
        let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
        let iface = net.add_module(node, "castanet", Box::new(iface_proc));
        net.connect_stream(src, PortId(0), iface, PortId(0))
            .unwrap();
        let (collector, got) = CollectorProcess::new();
        let sink = net.add_module(node, "sink", Box::new(collector));
        net.connect_stream(iface, PortId(1), sink, PortId(0))
            .unwrap();

        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 64,
            table_capacity: 16,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let sim = CycleSim::new(Box::new(switch));
        let mut follower = CycleCosim::new(sim, CLK, cell_type, HeaderFormat::Uni);
        follower.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        follower.add_ingress(IngressIndices {
            data: 3,
            sync: 4,
            enable: 5,
        });
        follower.add_egress(EgressIndices {
            data: 0,
            sync: 1,
            valid: 2,
        });
        follower.add_egress(EgressIndices {
            data: 3,
            sync: 4,
            valid: 5,
        });
        (
            Coupling::new(net, follower, sync, cell_type, iface, outbox),
            got,
        )
    }

    fn collected_cells(got: &CollectorHandle) -> Vec<AtmCell> {
        got.take()
            .into_iter()
            .map(|(_, pkt)| pkt.payload::<AtmCell>().expect("cell payload").clone())
            .collect()
    }

    #[test]
    fn cells_flow_through_the_parallel_executor() {
        let (serial, got) = build(5, SimDuration::from_us(10));
        let mut coupling = serial.into_parallel();
        let stats = coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(stats.messages_to_follower, 5);
        assert_eq!(stats.responses, 5);
        assert_eq!(stats.late_responses, 0);
        assert_eq!(got.len(), 5);
        for (i, cell) in collected_cells(&got).iter().enumerate() {
            assert_eq!(cell.id(), VpiVci::uni(7, 70).unwrap(), "switch retagged");
            assert_eq!(payload_seq(&cell.payload), i as u64, "order preserved");
        }
        assert!(coupling.sync().lag_invariant_holds());
    }

    #[test]
    fn parallel_matches_serial_end_to_end() {
        let (mut serial, got_serial) = build(20, SimDuration::from_us(3));
        let s_stats = serial.run(SimTime::from_ms(2)).unwrap();

        let (parallel, got_parallel) = build(20, SimDuration::from_us(3));
        let mut parallel = parallel.into_parallel();
        let p_stats = parallel.run(SimTime::from_ms(2)).unwrap();

        assert_eq!(p_stats.messages_to_follower, s_stats.messages_to_follower);
        assert_eq!(p_stats.responses, s_stats.responses);
        assert_eq!(
            collected_cells(&got_serial),
            collected_cells(&got_parallel),
            "identical observable cell stream under both executors"
        );
    }

    #[test]
    fn batching_parameters_do_not_change_the_trace() {
        let mut reference: Option<Vec<AtmCell>> = None;
        for (window_us, depth) in [(10u64, 1usize), (50, 2), (100, 4), (500, 8)] {
            let (serial, got) = build(12, SimDuration::from_us(7));
            let mut coupling = serial
                .into_parallel()
                .with_batching(SimDuration::from_us(window_us), depth);
            coupling.run(SimTime::from_ms(2)).unwrap();
            let cells = collected_cells(&got);
            assert_eq!(cells.len(), 12, "window {window_us} us / depth {depth}");
            match &reference {
                None => reference = Some(cells),
                Some(r) => assert_eq!(&cells, r, "window {window_us} us / depth {depth}"),
            }
        }
    }

    #[test]
    fn adaptive_and_fixed_windows_produce_the_same_trace() {
        let (serial, got_fixed) = build(16, SimDuration::from_us(5));
        let mut fixed = serial.into_parallel().with_adaptive_window(false);
        fixed.run(SimTime::from_ms(2)).unwrap();

        let (serial, got_adaptive) = build(16, SimDuration::from_us(5));
        let mut adaptive = serial.into_parallel().with_adaptive_window(true);
        adaptive.run(SimTime::from_ms(2)).unwrap();

        assert_eq!(
            collected_cells(&got_fixed),
            collected_cells(&got_adaptive),
            "window sizing is a throughput knob, never a semantics knob"
        );
    }

    #[test]
    fn adaptive_window_respects_floor_and_delta_bound() {
        let base = SimDuration::from_us(100);
        let headroom = SimDuration::from_us(60);
        let mut ctl = AdaptiveWindow::new(base, headroom);
        assert_eq!(ctl.current(), base);
        // Deep ring: widen, capped at base + δ_j.
        for _ in 0..10 {
            let w = ctl.observe(4, 4);
            assert!(w <= ctl.bound());
        }
        assert_eq!(ctl.current(), ctl.bound());
        // Idle ring: shrink, floored at base / 8.
        for _ in 0..20 {
            let w = ctl.observe(0, 4);
            assert!(w >= ctl.floor());
        }
        assert_eq!(ctl.current(), ctl.floor());
        // Moderate occupancy holds steady.
        let w = ctl.observe(1, 4);
        assert_eq!(w, ctl.floor());
    }

    #[test]
    fn run_is_idempotent_after_completion() {
        let (serial, got) = build(2, SimDuration::from_us(10));
        let mut coupling = serial.into_parallel();
        coupling.run(SimTime::from_ms(1)).unwrap();
        let before = coupling.stats();
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(coupling.stats(), before);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_network_terminates_without_deadlock() {
        // No sources at all: the executor must drain and come back.
        let mut net = Kernel::new(3);
        let node = net.add_node("n");
        let mut sync = ConservativeSync::new();
        let cell_type = sync.register_type(CLK * 53);
        let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
        let iface = net.add_module(node, "castanet", Box::new(iface_proc));
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 8,
            table_capacity: 8,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let mut follower = CycleCosim::new(
            CycleSim::new(Box::new(switch)),
            CLK,
            cell_type,
            HeaderFormat::Uni,
        );
        follower.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        let mut coupling = ParallelCoupling::new(net, follower, sync, cell_type, iface, outbox);
        let stats = coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(stats.messages_to_follower, 0);
        assert_eq!(stats.responses, 0);
    }

    #[test]
    fn telemetry_captures_both_tracks_and_channel_metrics() {
        let (serial, got) = build(20, SimDuration::from_us(3));
        let tel = Telemetry::enabled();
        let mut coupling = serial.with_telemetry(&tel).into_parallel();
        coupling.run(SimTime::from_ms(2)).unwrap();
        assert_eq!(got.len(), 20);
        let events = tel.events();
        assert!(events.iter().any(|e| e.track == Track::Originator));
        assert!(events.iter().any(|e| e.track == Track::Follower));
        let names: std::collections::BTreeSet<&str> =
            events.iter().map(|e| e.kind.name()).collect();
        for expected in [
            "net_window",
            "window_granted",
            "stimulus_enqueued",
            "follower_advance",
            "drain_chunk",
            "response_injected",
        ] {
            assert!(names.contains(expected), "missing {expected}: {names:?}");
        }
        // Pipelined lag is deferred, never late.
        assert!(!names.contains("late_response"));
        let snap = tel.metrics_snapshot();
        assert!(snap.histogram("channel.window_msgs").unwrap().count > 0);
        assert!(snap.histogram("channel.grant_latency_ns").unwrap().count > 0);
        assert_eq!(
            snap.gauge("channel.in_flight"),
            Some(0),
            "every window answered by the end of the run"
        );
        assert_eq!(
            snap.counter("originator.net_events"),
            Some(coupling.stats().net_events)
        );
        // Ring instrumentation: the adaptive controller publishes its
        // width, and the park counters exist (zero on fast runs).
        assert!(snap.gauge("ring.grant_width_ps").is_some());
        assert!(snap.counter("ring.originator_parks").is_some());
        assert!(snap.counter("ring.follower_parks").is_some());
    }

    #[test]
    fn deferred_lag_is_not_counted_late() {
        let (serial, _got) = build(20, SimDuration::from_us(3));
        let mut coupling = serial.into_parallel();
        let stats = coupling.run(SimTime::from_ms(2)).unwrap();
        assert_eq!(stats.late_responses, 0, "pipeline lag is never 'late'");
    }

    #[test]
    fn preflight_accepts_the_fixture_and_strict_mode_runs() {
        let (serial, got) = build(3, SimDuration::from_us(10));
        let mut coupling = serial.into_parallel().with_strict(true);
        assert!(coupling.preflight().is_ok());
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn time_warp_matches_conservative_and_speculates() {
        let (serial, got_c) = build(12, SimDuration::from_us(50));
        let mut conservative = serial
            .into_parallel()
            .with_batching(SimDuration::from_us(5), 4)
            .with_adaptive_window(false);
        let c_stats = conservative.run(SimTime::from_ms(2)).unwrap();
        let c_cells = collected_cells(&got_c);

        let (serial, got_w) = build(12, SimDuration::from_us(50));
        let tel = Telemetry::enabled();
        let mut warp = serial
            .into_parallel()
            .with_batching(SimDuration::from_us(5), 4)
            .with_adaptive_window(false)
            .with_exec_mode(ExecMode::TimeWarp)
            .with_telemetry(&tel);
        let w_stats = warp.run(SimTime::from_ms(2)).unwrap();

        assert_eq!(collected_cells(&got_w), c_cells, "trace-identical");
        assert_eq!(w_stats.responses, c_stats.responses);
        assert_eq!(w_stats.messages_to_follower, c_stats.messages_to_follower);
        assert_eq!(w_stats.late_responses, 0);
        let snap = tel.metrics_snapshot();
        let commits = snap.counter("timewarp.commits").unwrap_or(0);
        let rollbacks = snap.counter("timewarp.rollbacks").unwrap_or(0);
        assert!(
            commits + rollbacks > 0,
            "speculation never ran: commits={commits} rollbacks={rollbacks}"
        );
    }

    #[test]
    fn time_warp_refuses_an_uncheckpointable_follower() {
        /// A follower with the default `fork` (`None`): time-warp must be
        /// rejected up front rather than silently degrade.
        struct NoFork(SimTime);
        impl CoupledSimulator for NoFork {
            fn deliver(&mut self, _msg: Message) -> Result<(), CastanetError> {
                Ok(())
            }
            fn advance_until(&mut self, horizon: SimTime) -> Result<Vec<Message>, CastanetError> {
                self.0 = horizon;
                Ok(Vec::new())
            }
            fn now(&self) -> SimTime {
                self.0
            }
        }

        let mut net = Kernel::new(1);
        let node = net.add_node("n");
        let mut sync = ConservativeSync::new();
        let cell_type = sync.register_type(CLK * 53);
        let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
        let iface = net.add_module(node, "castanet", Box::new(iface_proc));
        let mut coupling =
            ParallelCoupling::new(net, NoFork(SimTime::ZERO), sync, cell_type, iface, outbox)
                .with_exec_mode(ExecMode::TimeWarp);
        let err = coupling.run(SimTime::from_ms(1)).unwrap_err();
        assert!(matches!(err, CastanetError::Transport(_)), "{err:?}");
    }
}
