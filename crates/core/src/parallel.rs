//! The parallel coupled-engine executor: originator and follower engines on
//! separate threads, coupled by bounded channels.
//!
//! The serial [`Coupling`](crate::coupling::Coupling) interleaves both
//! simulators on one thread, so §3.1's protocol — designed so the HDL side
//! can run *while* the network side keeps going — is never exercised as
//! actual parallelism. This module is the concurrent executive:
//!
//! * the **network kernel stays on the calling thread** (it owns the
//!   interface outbox, which is deliberately thread-local);
//! * the **follower and its [`ConservativeSync`] run on a spawned scoped
//!   thread**; they receive *timing windows* — the per-message-type input
//!   queue contents `I_j` plus a grant horizon — over a **bounded** command
//!   channel, and return time-stamped responses over an unbounded reply
//!   channel (so neither side can block the other into a deadlock: the
//!   originator's sends are bounded by the channel depth, the follower's
//!   sends never block);
//! * **cell batching** amortizes the ~1:400 cell-to-clock time-scale gap:
//!   instead of one rendezvous per network event, the originator executes a
//!   whole window of events (default 100 µs of simulated time), drains the
//!   abstraction interface once, and ships the batch together with one
//!   grant. The follower plays the batch with a single
//!   [`CoupledSimulator::advance_batch`] sweep.
//!
//! Protocol → thread/channel mapping (Fig. 3): every non-null message of the
//! window raises the originator time on the follower's synchronizer; the
//! window's grant is the time-stamped null message; the follower advances to
//! the grant and never past it, so the lag invariant `t_local ≤ grant`
//! holds exactly as in the serial executive. Responses produced while the
//! originator has already raced ahead arrive "behind" the network clock —
//! that pipeline lag is counted in
//! [`CouplingStats::deferred_responses`] and injected at the network's
//! current time, which is sound under the feedforward assumption (responses
//! feed monitors, never new stimulus).

use crate::coupling::{
    inject_responses, preflight_checks, CoupledSimulator, CouplingStats, SyncCounters,
};
use crate::error::CastanetError;
use crate::interface::OutboxHandle;
use crate::message::{Message, MessageTypeId};
use crate::sync::conservative::{ConservativeSync, SyncStats};
use castanet_netsim::event::ModuleId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_obs::{Counter, EventKind, Gauge, Histogram, Phase, Telemetry, Track};
use std::collections::VecDeque;
use std::sync::mpsc;

/// One command from the originator thread to the follower thread.
enum Command {
    /// A timing window: the stimulus batch (in stamp order) plus the grant
    /// horizon promised by the originator ("no further stimulus before
    /// `grant`").
    Window {
        /// Stimulus messages crossing the abstraction interface.
        msgs: Vec<Message>,
        /// The window's grant horizon (exclusive).
        grant: SimTime,
    },
    /// The network side is out of events: let the follower's pipeline empty
    /// out in `quantum`-sized chunks until it has been quiet for
    /// `quiet_chunks` consecutive chunks (or reached `until`).
    Drain {
        quantum: SimDuration,
        quiet_chunks: u32,
        until: SimTime,
    },
}

/// One reply from the follower thread to the originator thread.
enum Reply {
    /// All responses of one window (exactly one per [`Command::Window`]).
    Window(Vec<Message>),
    /// Responses produced during a drain chunk (zero or more per
    /// [`Command::Drain`]).
    Drained(Vec<Message>),
    /// The drain completed quietly (exactly one per [`Command::Drain`]).
    DrainDone,
    /// The follower hit an unrecoverable error and exits its loop.
    Fatal(CastanetError),
}

/// The parallel coupling executive — same API shape as
/// [`Coupling`](crate::coupling::Coupling), but [`ParallelCoupling::run`]
/// executes the two engines concurrently.
///
/// Construction recipe is identical to the serial coupling; an existing
/// serial coupling converts with
/// [`Coupling::into_parallel`](crate::coupling::Coupling::into_parallel).
pub struct ParallelCoupling<S: CoupledSimulator + Send> {
    net: Kernel,
    follower: S,
    sync: ConservativeSync,
    cell_type: MessageTypeId,
    outbox: OutboxHandle,
    iface: ModuleId,
    stats: CouplingStats,
    /// Largest grant promised to the follower; promises are monotone (see
    /// the serial coupling's field of the same name).
    promised: SimTime,
    drain_quantum: SimDuration,
    drain_quiet_chunks: u32,
    strict: bool,
    /// Simulated-time length of one batched timing window.
    batch_window: SimDuration,
    /// Command-channel capacity: how many windows the originator may run
    /// ahead of the follower before its sends block (bounded pipeline lag).
    channel_depth: usize,
    /// Telemetry handle; disabled (all recording a no-op) by default.
    tel: Telemetry,
}

impl<S: CoupledSimulator + Send> std::fmt::Debug for ParallelCoupling<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelCoupling")
            .field("net_now", &self.net.now())
            .field("follower_now", &self.follower.now())
            .field("batch_window", &self.batch_window)
            .field("channel_depth", &self.channel_depth)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<S: CoupledSimulator + Send> ParallelCoupling<S> {
    /// Assembles a parallel coupling. Arguments are identical to
    /// [`Coupling::new`](crate::coupling::Coupling::new).
    #[must_use]
    pub fn new(
        net: Kernel,
        follower: S,
        sync: ConservativeSync,
        cell_type: MessageTypeId,
        iface: ModuleId,
        outbox: OutboxHandle,
    ) -> Self {
        ParallelCoupling {
            net,
            follower,
            sync,
            cell_type,
            outbox,
            iface,
            stats: CouplingStats::default(),
            promised: SimTime::ZERO,
            drain_quantum: SimDuration::from_us(50),
            drain_quiet_chunks: 2,
            strict: false,
            batch_window: SimDuration::from_us(100),
            channel_depth: 4,
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle to every layer — as
    /// [`Coupling::with_telemetry`](crate::coupling::Coupling::with_telemetry),
    /// plus the executor's own channel metrics (`channel.in_flight`
    /// occupancy, `channel.grant_latency_ns`, `channel.window_msgs`,
    /// `channel.backpressure_stalls`). Both threads record into the shared
    /// trace sink, each on its own track.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.tel = tel.clone();
        self.net.set_telemetry(tel);
        self.sync.set_telemetry(tel);
        self.follower.set_telemetry(tel);
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`ParallelCoupling::with_telemetry`] was called).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Enables (or disables) strict mode — as
    /// [`Coupling::with_strict`](crate::coupling::Coupling::with_strict).
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Whether strict pre-flight mode is enabled.
    #[must_use]
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Tunes the final drain — as
    /// [`Coupling::with_drain`](crate::coupling::Coupling::with_drain).
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or `quiet_chunks` is zero.
    #[must_use]
    pub fn with_drain(mut self, quantum: SimDuration, quiet_chunks: u32) -> Self {
        assert!(!quantum.is_zero(), "drain quantum must be non-zero");
        assert!(quiet_chunks > 0, "need at least one quiet chunk");
        self.drain_quantum = quantum;
        self.drain_quiet_chunks = quiet_chunks;
        self
    }

    /// Tunes the batching: `batch_window` of simulated time per timing
    /// window (larger windows = fewer thread rendezvous but coarser
    /// response pipelining), `channel_depth` windows of bounded run-ahead.
    ///
    /// # Panics
    ///
    /// Panics if `batch_window` is zero or `channel_depth` is zero.
    #[must_use]
    pub fn with_batching(mut self, batch_window: SimDuration, channel_depth: usize) -> Self {
        assert!(!batch_window.is_zero(), "batch window must be non-zero");
        assert!(channel_depth > 0, "need at least one channel slot");
        self.batch_window = batch_window;
        self.channel_depth = channel_depth;
        self
    }

    /// Static pre-flight verification — the same error-level checks as
    /// [`Coupling::preflight`](crate::coupling::Coupling::preflight),
    /// including the follower's own
    /// [`structural_preflight`](CoupledSimulator::structural_preflight).
    ///
    /// # Errors
    ///
    /// Returns [`CastanetError::Preflight`] listing every finding.
    pub fn preflight(&self) -> Result<(), CastanetError> {
        let mut findings = preflight_checks(&self.net, &self.sync, self.cell_type, self.iface);
        findings.extend(self.follower.structural_preflight());
        if findings.is_empty() {
            Ok(())
        } else {
            Err(CastanetError::Preflight(findings))
        }
    }

    /// Runs the coupled simulation until no activity remains before
    /// `until` on either side, with the two engines on separate threads.
    ///
    /// # Errors
    ///
    /// Propagates simulator, conversion and synchronization errors from
    /// either thread.
    pub fn run(&mut self, until: SimTime) -> Result<CouplingStats, CastanetError> {
        if self.strict {
            self.preflight()?;
        }
        let batch_window = self.batch_window;
        let channel_depth = self.channel_depth;
        let drain_quantum = self.drain_quantum;
        let drain_quiet_chunks = self.drain_quiet_chunks;
        let cell_type = self.cell_type;
        let iface = self.iface;
        let net = &mut self.net;
        let stats = &mut self.stats;
        let outbox = &self.outbox;
        let follower = &mut self.follower;
        let sync = &mut self.sync;
        let promised = &mut self.promised;
        let follower_tel = self.tel.clone();
        // Separate handle for the originator's phase spans: `SpanGuard`
        // borrows its `Telemetry`, and borrowing it out of `obs` would
        // freeze the `&mut obs` every reply needs.
        let phase_tel = self.tel.clone();
        let mut obs = OriginatorObs::new(&self.tel);

        std::thread::scope(|scope| -> Result<(), CastanetError> {
            let (cmd_tx, cmd_rx) = mpsc::sync_channel::<Command>(channel_depth);
            let (rep_tx, rep_rx) = mpsc::channel::<Reply>();
            scope.spawn(move || {
                follower_loop(
                    follower,
                    sync,
                    promised,
                    cell_type,
                    &cmd_rx,
                    &rep_tx,
                    &follower_tel,
                );
            });

            // Windows sent but not yet answered.
            let mut in_flight = 0usize;
            // Stimulus delivered as of the last completed drain: if no new
            // message reached the follower since, its pipeline is untouched
            // and provably still quiet — re-draining would only burn
            // simulated (and wall-clock) time on an idle DUT.
            let mut drained_at: Option<u64> = None;
            // Originator-side mirror of the largest grant shipped this run;
            // windows that carry neither stimulus nor a new grant are
            // no-ops on the follower and need not rendezvous at all.
            let mut sent_grant = SimTime::ZERO;
            loop {
                // ---- phase 1: stream timing windows -------------------
                let mut grant_span = phase_tel.span(
                    Track::Originator,
                    net.now().as_picos(),
                    Phase::ParallelGrant,
                );
                while let Some(t0) = net.next_event_time().filter(|t| *t < until) {
                    let w = until.min(t0 + batch_window);
                    let window_start = obs.tel.now_ns();
                    let executed = net.run_grant_window(w)?;
                    stats.net_events += executed;
                    obs.tel.record_span(
                        Track::Originator,
                        w.as_picos(),
                        window_start,
                        EventKind::NetWindow { events: executed },
                    );
                    // Ownership of the batch moves into `Command::Window`
                    // and across the thread boundary, so the take-style
                    // `drain` (no copy) is the right call here — a reused
                    // scratch buffer would force a clone per window.
                    let msgs = outbox.drain();
                    stats.messages_to_follower += msgs.len() as u64;
                    // Maximal-information grant: every event strictly before
                    // `w` has run, and source processes schedule their
                    // successors as they execute, so the next pending event
                    // bounds all future stimulus from below (injected
                    // response events are feedforward — they never produce
                    // stimulus). With nothing pending, promise only up to
                    // the executed front: granting the rest of the batch
                    // window would make the follower simulate an idle tail
                    // the drain phase handles far more cheaply.
                    let grant = match net.next_event_time() {
                        Some(t1) => w.max(t1.min(until)),
                        None => net.now().min(w),
                    };
                    // Opportunistically absorb replies before a potentially
                    // blocking send — keeps response injection overlapped
                    // with window production.
                    while let Ok(reply) = rep_rx.try_recv() {
                        handle_reply(reply, net, stats, iface, &mut in_flight, &mut obs)?;
                    }
                    if msgs.is_empty() && grant <= sent_grant {
                        continue;
                    }
                    sent_grant = sent_grant.max(grant);
                    obs.window_msgs.record(msgs.len() as u64);
                    obs.tel.record(
                        Track::Originator,
                        net.now().as_picos(),
                        EventKind::WindowGranted {
                            grant_ps: grant.as_picos(),
                            msgs: msgs.len() as u64,
                        },
                    );
                    match cmd_tx.try_send(Command::Window { msgs, grant }) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(cmd)) => {
                            // The follower is the bottleneck: every pipeline
                            // slot is taken. Record the blocked send as a
                            // stall span on the originator's track.
                            let stall_start = obs.tel.now_ns();
                            obs.stalls.inc();
                            if cmd_tx.send(cmd).is_err() {
                                return Err(fatal_from(&rep_rx));
                            }
                            obs.tel.record_span(
                                Track::Originator,
                                net.now().as_picos(),
                                stall_start,
                                EventKind::BackpressureStall {
                                    in_flight: in_flight as u64,
                                },
                            );
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            return Err(fatal_from(&rep_rx));
                        }
                    }
                    in_flight += 1;
                    obs.occupancy.set(in_flight as u64);
                    if obs.tel.is_enabled() {
                        obs.pending.push_back(obs.tel.now_ns());
                    }
                }
                // ---- phase 2: barrier — answer every window ------------
                grant_span.set_t_ps(net.now().as_picos());
                drop(grant_span);
                {
                    let _wait_span = phase_tel.span(
                        Track::Originator,
                        net.now().as_picos(),
                        Phase::ParallelWait,
                    );
                    while in_flight > 0 {
                        match rep_rx.recv() {
                            Ok(reply) => {
                                handle_reply(reply, net, stats, iface, &mut in_flight, &mut obs)?;
                            }
                            Err(_) => return Err(fatal_from(&rep_rx)),
                        }
                    }
                }
                if net.next_event_time().is_some_and(|t| t < until) {
                    // Injected responses created fresh network work.
                    continue;
                }
                // ---- phase 3: drain the follower's pipeline ------------
                // The follower's state only changes when stimulus reaches
                // it; a drain that found the pipeline quiet stays valid
                // until the next delivery (responses injected after the
                // drain only touch the network side).
                if drained_at == Some(stats.messages_to_follower) {
                    return Ok(());
                }
                let drain = Command::Drain {
                    quantum: drain_quantum,
                    quiet_chunks: drain_quiet_chunks,
                    until,
                };
                {
                    let _drain_span = phase_tel.span(
                        Track::Originator,
                        net.now().as_picos(),
                        Phase::ParallelDrain,
                    );
                    if cmd_tx.send(drain).is_err() {
                        return Err(fatal_from(&rep_rx));
                    }
                    loop {
                        match rep_rx.recv() {
                            Ok(Reply::DrainDone) => break,
                            Ok(reply) => {
                                handle_reply(reply, net, stats, iface, &mut in_flight, &mut obs)?;
                            }
                            Err(_) => return Err(fatal_from(&rep_rx)),
                        }
                    }
                }
                drained_at = Some(stats.messages_to_follower);
                if net.next_event_time().is_none_or(|t| t >= until) {
                    return Ok(());
                }
            }
        })?;
        Ok(self.stats)
    }

    /// The network kernel (e.g. for statistics after the run).
    #[must_use]
    pub fn net(&self) -> &Kernel {
        &self.net
    }

    /// The follower (e.g. for RTL counters after the run).
    #[must_use]
    pub fn follower(&self) -> &S {
        &self.follower
    }

    /// Mutable follower access.
    pub fn follower_mut(&mut self) -> &mut S {
        &mut self.follower
    }

    /// The conservative synchronizer.
    #[must_use]
    pub fn sync(&self) -> &ConservativeSync {
        &self.sync
    }

    /// The interface process's module id inside the network kernel.
    #[must_use]
    pub fn iface_module(&self) -> ModuleId {
        self.iface
    }

    /// The message type stimulus cells are sent as.
    #[must_use]
    pub fn cell_type(&self) -> MessageTypeId {
        self.cell_type
    }

    /// Coupling counters.
    #[must_use]
    pub fn stats(&self) -> CouplingStats {
        self.stats
    }

    /// Synchronization-protocol statistics.
    #[must_use]
    pub fn sync_stats(&self) -> SyncStats {
        self.sync.stats()
    }

    /// A clone of the interface outbox handle.
    #[must_use]
    pub fn outbox(&self) -> OutboxHandle {
        self.outbox.clone()
    }

    /// Dismantles the coupling, returning the network kernel and follower.
    #[must_use]
    pub fn into_parts(self) -> (Kernel, S) {
        (self.net, self.follower)
    }
}

/// Originator-side observation state: cached metric handles plus the send
/// wall-times of windows still in flight (for the grant-latency histogram).
/// All handles are no-ops when the telemetry is disabled, and `pending`
/// stays empty then, so the disabled path costs one branch per use.
struct OriginatorObs {
    tel: Telemetry,
    occupancy: Gauge,
    grant_latency: Histogram,
    window_msgs: Histogram,
    stalls: Counter,
    sync_counters: SyncCounters,
    pending: VecDeque<u64>,
}

impl OriginatorObs {
    fn new(tel: &Telemetry) -> Self {
        OriginatorObs {
            tel: tel.clone(),
            occupancy: tel.gauge("channel.in_flight"),
            grant_latency: tel.histogram("channel.grant_latency_ns"),
            window_msgs: tel.histogram("channel.window_msgs"),
            stalls: tel.counter("channel.backpressure_stalls"),
            sync_counters: SyncCounters::new(tel),
            pending: VecDeque::new(),
        }
    }
}

/// Originator-side reply handling: inject responses into the network model
/// (through the executor-shared [`inject_responses`] path, in pipelined
/// mode), settle window accounting.
fn handle_reply(
    reply: Reply,
    net: &mut Kernel,
    stats: &mut CouplingStats,
    iface: ModuleId,
    in_flight: &mut usize,
    obs: &mut OriginatorObs,
) -> Result<(), CastanetError> {
    match reply {
        Reply::Window(msgs) => {
            *in_flight -= 1;
            obs.occupancy.set(*in_flight as u64);
            if let Some(sent_ns) = obs.pending.pop_front() {
                obs.grant_latency
                    .record(obs.tel.now_ns().saturating_sub(sent_ns));
            }
            inject_responses(net, stats, iface, msgs, true, &obs.tel, &obs.sync_counters)
                .map(|_| ())
        }
        Reply::Drained(msgs) => {
            inject_responses(net, stats, iface, msgs, true, &obs.tel, &obs.sync_counters)
                .map(|_| ())
        }
        Reply::DrainDone => Ok(()),
        Reply::Fatal(e) => Err(e),
    }
}

/// The follower thread: plays timing windows and drain commands in order
/// until the command channel closes (normal termination) or a fatal error
/// is reported.
fn follower_loop<S: CoupledSimulator>(
    follower: &mut S,
    sync: &mut ConservativeSync,
    promised: &mut SimTime,
    cell_type: MessageTypeId,
    cmd_rx: &mpsc::Receiver<Command>,
    reply: &mpsc::Sender<Reply>,
    tel: &Telemetry,
) {
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            Command::Window { msgs, grant } => {
                match window_step(follower, sync, promised, cell_type, msgs, grant, tel) {
                    Ok(responses) => {
                        if reply.send(Reply::Window(responses)).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = reply.send(Reply::Fatal(e));
                        return;
                    }
                }
            }
            Command::Drain {
                quantum,
                quiet_chunks,
                until,
            } => match drain_step(
                follower,
                sync,
                promised,
                cell_type,
                quantum,
                quiet_chunks,
                until,
                reply,
                tel,
            ) {
                Ok(true) => {
                    if reply.send(Reply::DrainDone).is_err() {
                        return;
                    }
                }
                Ok(false) => return,
                Err(e) => {
                    let _ = reply.send(Reply::Fatal(e));
                    return;
                }
            },
        }
    }
}

/// Plays one timing window on the follower: queue the stimulus (raising
/// the originator clock per message), take the grant (the null message),
/// sweep the whole window in one batched advance, then settle the local
/// clock — never past the grant.
fn window_step<S: CoupledSimulator>(
    follower: &mut S,
    sync: &mut ConservativeSync,
    promised: &mut SimTime,
    cell_type: MessageTypeId,
    msgs: Vec<Message>,
    grant: SimTime,
    tel: &Telemetry,
) -> Result<Vec<Message>, CastanetError> {
    for msg in msgs {
        sync.receive(msg.type_id, msg.stamp, false)?;
        tel.record(
            Track::Follower,
            msg.stamp.as_picos(),
            EventKind::StimulusEnqueued {
                type_id: msg.type_id.0,
                port: msg.port as u32,
                stamp_ps: msg.stamp.as_picos(),
            },
        );
        follower.deliver(msg)?;
    }
    if grant > *promised {
        sync.receive(cell_type, grant, true)?;
        *promised = grant;
    }
    let granted = sync.grant();
    let advance_start = tel.now_ns();
    let responses = follower.advance_batch(granted)?;
    tel.record_span(
        Track::Follower,
        granted.as_picos(),
        advance_start,
        EventKind::FollowerAdvance {
            granted_ps: granted.as_picos(),
            responses: responses.len() as u64,
        },
    );
    let local = follower.now().max(sync.local_time()).min(granted);
    sync.advance_local(local)?;
    Ok(responses)
}

/// Drains the follower's pipeline in `quantum`-sized chunks, forwarding
/// responses as they surface. Returns `Ok(true)` when quiet, `Ok(false)`
/// when the originator went away mid-drain.
#[allow(clippy::too_many_arguments)]
fn drain_step<S: CoupledSimulator>(
    follower: &mut S,
    sync: &mut ConservativeSync,
    promised: &mut SimTime,
    cell_type: MessageTypeId,
    quantum: SimDuration,
    quiet_chunks: u32,
    until: SimTime,
    reply: &mpsc::Sender<Reply>,
    tel: &Telemetry,
) -> Result<bool, CastanetError> {
    let mut quiet = 0u32;
    loop {
        let horizon = (follower.now().max(sync.local_time()) + quantum)
            .min(until)
            .max(*promised);
        if horizon > *promised {
            sync.receive(cell_type, horizon, true)?;
            *promised = horizon;
        }
        let granted = sync.grant();
        let chunk_start = tel.now_ns();
        let responses = follower.advance_batch(granted)?;
        tel.record_span(
            Track::Follower,
            granted.as_picos(),
            chunk_start,
            EventKind::DrainChunk {
                horizon_ps: granted.as_picos(),
                responses: responses.len() as u64,
            },
        );
        let local = follower.now().max(sync.local_time()).min(granted);
        sync.advance_local(local)?;
        if responses.is_empty() {
            quiet += 1;
            if quiet >= quiet_chunks || follower.now() >= until {
                return Ok(true);
            }
        } else {
            quiet = 0;
            if reply.send(Reply::Drained(responses)).is_err() {
                return Ok(false);
            }
        }
    }
}

/// Scans the reply channel for the fatal error that made the follower
/// thread exit; falls back to a transport error if none surfaced.
fn fatal_from(rep_rx: &mpsc::Receiver<Reply>) -> CastanetError {
    while let Ok(reply) = rep_rx.recv() {
        if let Reply::Fatal(e) = reply {
            return e;
        }
    }
    CastanetError::Transport("parallel follower thread terminated unexpectedly".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::Coupling;
    use crate::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
    use crate::interface::CastanetInterfaceProcess;
    use castanet_atm::addr::{HeaderFormat, VpiVci};
    use castanet_atm::cell::AtmCell;
    use castanet_atm::traffic::source::{payload_seq, TrafficSourceProcess};
    use castanet_atm::traffic::Cbr;
    use castanet_netsim::event::PortId;
    use castanet_netsim::process::{CollectorHandle, CollectorProcess};
    use castanet_rtl::cycle::CycleSim;
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};

    const CLK: SimDuration = SimDuration::from_ns(20);

    /// Full co-verification fixture (cycle-based follower): CBR source ->
    /// interface -> 2-port RTL switch (route 1/40 -> line 1 as 7/70) ->
    /// response -> collector. Same shape as the serial coupling's fixture.
    fn build(cells: u64, gap: SimDuration) -> (Coupling<CycleCosim>, CollectorHandle) {
        let mut net = Kernel::new(7);
        let node = net.add_node("coverify");
        let src = net.add_module(
            node,
            "src",
            Box::new(
                TrafficSourceProcess::new(VpiVci::uni(1, 40).unwrap(), Box::new(Cbr::new(gap)))
                    .with_limit(cells),
            ),
        );
        let mut sync = ConservativeSync::new();
        let cell_type = sync.register_type(CLK * 53);
        let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
        let iface = net.add_module(node, "castanet", Box::new(iface_proc));
        net.connect_stream(src, PortId(0), iface, PortId(0))
            .unwrap();
        let (collector, got) = CollectorProcess::new();
        let sink = net.add_module(node, "sink", Box::new(collector));
        net.connect_stream(iface, PortId(1), sink, PortId(0))
            .unwrap();

        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 64,
            table_capacity: 16,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let sim = CycleSim::new(Box::new(switch));
        let mut follower = CycleCosim::new(sim, CLK, cell_type, HeaderFormat::Uni);
        follower.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        follower.add_ingress(IngressIndices {
            data: 3,
            sync: 4,
            enable: 5,
        });
        follower.add_egress(EgressIndices {
            data: 0,
            sync: 1,
            valid: 2,
        });
        follower.add_egress(EgressIndices {
            data: 3,
            sync: 4,
            valid: 5,
        });
        (
            Coupling::new(net, follower, sync, cell_type, iface, outbox),
            got,
        )
    }

    fn collected_cells(got: &CollectorHandle) -> Vec<AtmCell> {
        got.take()
            .into_iter()
            .map(|(_, pkt)| pkt.payload::<AtmCell>().expect("cell payload").clone())
            .collect()
    }

    #[test]
    fn cells_flow_through_the_parallel_executor() {
        let (serial, got) = build(5, SimDuration::from_us(10));
        let mut coupling = serial.into_parallel();
        let stats = coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(stats.messages_to_follower, 5);
        assert_eq!(stats.responses, 5);
        assert_eq!(stats.late_responses, 0);
        assert_eq!(got.len(), 5);
        for (i, cell) in collected_cells(&got).iter().enumerate() {
            assert_eq!(cell.id(), VpiVci::uni(7, 70).unwrap(), "switch retagged");
            assert_eq!(payload_seq(&cell.payload), i as u64, "order preserved");
        }
        assert!(coupling.sync().lag_invariant_holds());
    }

    #[test]
    fn parallel_matches_serial_end_to_end() {
        let (mut serial, got_serial) = build(20, SimDuration::from_us(3));
        let s_stats = serial.run(SimTime::from_ms(2)).unwrap();

        let (parallel, got_parallel) = build(20, SimDuration::from_us(3));
        let mut parallel = parallel.into_parallel();
        let p_stats = parallel.run(SimTime::from_ms(2)).unwrap();

        assert_eq!(p_stats.messages_to_follower, s_stats.messages_to_follower);
        assert_eq!(p_stats.responses, s_stats.responses);
        assert_eq!(
            collected_cells(&got_serial),
            collected_cells(&got_parallel),
            "identical observable cell stream under both executors"
        );
    }

    #[test]
    fn batching_parameters_do_not_change_the_trace() {
        let mut reference: Option<Vec<AtmCell>> = None;
        for (window_us, depth) in [(10u64, 1usize), (50, 2), (100, 4), (500, 8)] {
            let (serial, got) = build(12, SimDuration::from_us(7));
            let mut coupling = serial
                .into_parallel()
                .with_batching(SimDuration::from_us(window_us), depth);
            coupling.run(SimTime::from_ms(2)).unwrap();
            let cells = collected_cells(&got);
            assert_eq!(cells.len(), 12, "window {window_us} us / depth {depth}");
            match &reference {
                None => reference = Some(cells),
                Some(r) => assert_eq!(&cells, r, "window {window_us} us / depth {depth}"),
            }
        }
    }

    #[test]
    fn run_is_idempotent_after_completion() {
        let (serial, got) = build(2, SimDuration::from_us(10));
        let mut coupling = serial.into_parallel();
        coupling.run(SimTime::from_ms(1)).unwrap();
        let before = coupling.stats();
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(coupling.stats(), before);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_network_terminates_without_deadlock() {
        // No sources at all: the executor must drain and come back.
        let mut net = Kernel::new(3);
        let node = net.add_node("n");
        let mut sync = ConservativeSync::new();
        let cell_type = sync.register_type(CLK * 53);
        let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
        let iface = net.add_module(node, "castanet", Box::new(iface_proc));
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 8,
            table_capacity: 8,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        let mut follower = CycleCosim::new(
            CycleSim::new(Box::new(switch)),
            CLK,
            cell_type,
            HeaderFormat::Uni,
        );
        follower.add_ingress(IngressIndices {
            data: 0,
            sync: 1,
            enable: 2,
        });
        let mut coupling = ParallelCoupling::new(net, follower, sync, cell_type, iface, outbox);
        let stats = coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(stats.messages_to_follower, 0);
        assert_eq!(stats.responses, 0);
    }

    #[test]
    fn telemetry_captures_both_tracks_and_channel_metrics() {
        let (serial, got) = build(20, SimDuration::from_us(3));
        let tel = Telemetry::enabled();
        let mut coupling = serial.with_telemetry(&tel).into_parallel();
        coupling.run(SimTime::from_ms(2)).unwrap();
        assert_eq!(got.len(), 20);
        let events = tel.events();
        assert!(events.iter().any(|e| e.track == Track::Originator));
        assert!(events.iter().any(|e| e.track == Track::Follower));
        let names: std::collections::BTreeSet<&str> =
            events.iter().map(|e| e.kind.name()).collect();
        for expected in [
            "net_window",
            "window_granted",
            "stimulus_enqueued",
            "follower_advance",
            "drain_chunk",
            "response_injected",
        ] {
            assert!(names.contains(expected), "missing {expected}: {names:?}");
        }
        // Pipelined lag is deferred, never late.
        assert!(!names.contains("late_response"));
        let snap = tel.metrics_snapshot();
        assert!(snap.histogram("channel.window_msgs").unwrap().count > 0);
        assert!(snap.histogram("channel.grant_latency_ns").unwrap().count > 0);
        assert_eq!(
            snap.gauge("channel.in_flight"),
            Some(0),
            "every window answered by the end of the run"
        );
        assert_eq!(
            snap.counter("originator.net_events"),
            Some(coupling.stats().net_events)
        );
    }

    #[test]
    fn deferred_lag_is_not_counted_late() {
        let (serial, _got) = build(20, SimDuration::from_us(3));
        let mut coupling = serial.into_parallel();
        let stats = coupling.run(SimTime::from_ms(2)).unwrap();
        assert_eq!(stats.late_responses, 0, "pipeline lag is never 'late'");
    }

    #[test]
    fn preflight_accepts_the_fixture_and_strict_mode_runs() {
        let (serial, got) = build(3, SimDuration::from_us(10));
        let mut coupling = serial.into_parallel().with_strict(true);
        assert!(coupling.preflight().is_ok());
        coupling.run(SimTime::from_ms(1)).unwrap();
        assert_eq!(got.len(), 3);
    }
}
