//! Conformance test vectors.
//!
//! Fig. 1 names a stimulus class "targeted towards testing of hardware
//! properties through customized or standardized conformance test vectors".
//! These generators produce the classical deterministic coverage patterns
//! for ATM interface hardware:
//!
//! * header walking bits — every header bit position exercised in both
//!   polarities;
//! * boundary connection identifiers — minimum/maximum VPI and VCI;
//! * payload patterns — all-zeros, all-ones, alternating, sliding byte;
//! * HEC error vectors — wire images with each single header bit flipped
//!   (must be *corrected* by a receiver in correction mode) and selected
//!   double flips (must be *discarded*).

use castanet_atm::addr::{HeaderFormat, Vci, Vpi, VpiVci};
use castanet_atm::cell::{AtmCell, CellHeader, PayloadType, CELL_OCTETS, PAYLOAD_OCTETS};
use castanet_atm::error::AtmError;

/// Cells whose header walks a single `1` bit through GFC/VPI/VCI/PT/CLP
/// (UNI layout). The payload tags each vector with its bit index.
///
/// # Errors
///
/// Propagates encoding errors (cannot occur for the generated values).
pub fn header_walking_ones() -> Result<Vec<AtmCell>, AtmError> {
    let mut out = Vec::new();
    // 4 GFC + 8 VPI + 16 VCI + 3 PT + 1 CLP = 32 walkable header bits.
    for bit in 0..32u32 {
        let gfc = if bit < 4 { 1u8 << bit } else { 0 };
        let vpi = if (4..12).contains(&bit) {
            1u16 << (bit - 4)
        } else {
            0
        };
        let vci = if (12..28).contains(&bit) {
            1u16 << (bit - 12)
        } else {
            0
        };
        let pt = if (28..31).contains(&bit) {
            PayloadType::from_bits(1 << (bit - 28))
        } else {
            PayloadType::User0
        };
        let clp = bit == 31;
        let mut payload = [0u8; PAYLOAD_OCTETS];
        payload[0] = bit as u8;
        out.push(AtmCell::with_header(
            CellHeader {
                gfc,
                id: VpiVci::new(Vpi::new(vpi, HeaderFormat::Uni)?, Vci::new(vci)),
                pt,
                clp,
            },
            payload,
        ));
    }
    Ok(out)
}

/// Boundary connection identifiers: min/max VPI and VCI combinations.
///
/// # Errors
///
/// Propagates encoding errors (cannot occur for the generated values).
pub fn boundary_connections() -> Result<Vec<AtmCell>, AtmError> {
    let mut out = Vec::new();
    for vpi in [0u16, 1, 0xFE, 0xFF] {
        for vci in [0u16, 1, Vci::FIRST_USER, 0xFFFE, 0xFFFF] {
            out.push(AtmCell::user_data(
                VpiVci::uni(vpi, vci)?,
                [0u8; PAYLOAD_OCTETS],
            ));
        }
    }
    Ok(out)
}

/// The classical payload coverage patterns on one connection.
#[must_use]
pub fn payload_patterns(conn: VpiVci) -> Vec<AtmCell> {
    let mut patterns: Vec<[u8; PAYLOAD_OCTETS]> = vec![
        [0x00; PAYLOAD_OCTETS],
        [0xFF; PAYLOAD_OCTETS],
        [0x55; PAYLOAD_OCTETS],
        [0xAA; PAYLOAD_OCTETS],
    ];
    // Sliding byte: payload[i] = i, then payload[i] = 255 - i.
    let mut inc = [0u8; PAYLOAD_OCTETS];
    let mut dec = [0u8; PAYLOAD_OCTETS];
    for i in 0..PAYLOAD_OCTETS {
        inc[i] = i as u8;
        dec[i] = 255 - i as u8;
    }
    patterns.push(inc);
    patterns.push(dec);
    patterns
        .into_iter()
        .map(|p| AtmCell::user_data(conn, p))
        .collect()
}

/// Wire images with every single header bit flipped — each must be
/// corrected by an I.432 receiver in correction mode. Returns
/// `(flipped bit index, corrupted wire image, original cell)`.
///
/// # Errors
///
/// Propagates encoding errors from the base cell.
pub fn single_bit_hec_errors(
    base: &AtmCell,
    format: HeaderFormat,
) -> Result<Vec<(usize, [u8; CELL_OCTETS], AtmCell)>, AtmError> {
    let wire = base.encode(format)?;
    let mut out = Vec::with_capacity(40);
    for bit in 0..40 {
        let mut bad = wire;
        bad[bit / 8] ^= 0x80 >> (bit % 8);
        out.push((bit, bad, base.clone()));
    }
    Ok(out)
}

/// Wire images with two header bits flipped — each must be *discarded*
/// (never silently accepted) by a receiver.
///
/// # Errors
///
/// Propagates encoding errors from the base cell.
pub fn double_bit_hec_errors(
    base: &AtmCell,
    format: HeaderFormat,
) -> Result<Vec<[u8; CELL_OCTETS]>, AtmError> {
    let wire = base.encode(format)?;
    let mut out = Vec::new();
    // A representative selection: adjacent pairs and byte-spanning pairs.
    for first in (0..39).step_by(3) {
        let second = first + 1;
        let mut bad = wire;
        bad[first / 8] ^= 0x80 >> (first % 8);
        bad[second / 8] ^= 0x80 >> (second % 8);
        out.push(bad);
    }
    Ok(out)
}

/// The complete standard conformance suite on one connection, as
/// ready-to-send cells (error vectors excluded — those are wire-level).
///
/// # Errors
///
/// Propagates generation errors.
pub fn standard_suite(conn: VpiVci) -> Result<Vec<AtmCell>, AtmError> {
    let mut out = header_walking_ones()?;
    out.extend(boundary_connections()?);
    out.extend(payload_patterns(conn));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::hec::{HecOutcome, HecReceiver};

    #[test]
    fn walking_ones_cover_32_bits_uniquely() {
        let cells = header_walking_ones().unwrap();
        assert_eq!(cells.len(), 32);
        // All encode successfully with distinct headers.
        let mut wires = std::collections::HashSet::new();
        for c in &cells {
            let w = c.encode(HeaderFormat::Uni).unwrap();
            assert!(wires.insert(w[..4].to_vec()), "duplicate header {c}");
        }
    }

    #[test]
    fn walking_ones_roundtrip_through_codec() {
        for c in header_walking_ones().unwrap() {
            let wire = c.encode(HeaderFormat::Uni).unwrap();
            assert_eq!(AtmCell::decode(&wire, HeaderFormat::Uni).unwrap(), c);
        }
    }

    #[test]
    fn boundary_connections_cover_extremes() {
        let cells = boundary_connections().unwrap();
        assert_eq!(cells.len(), 20);
        assert!(cells.iter().any(|c| c.id().vpi.value() == 0xFF));
        assert!(cells.iter().any(|c| c.id().vci.value() == 0xFFFF));
        assert!(cells.iter().any(|c| c.id().vci.value() == 0));
    }

    #[test]
    fn payload_patterns_include_classics() {
        let conn = VpiVci::uni(1, 40).unwrap();
        let cells = payload_patterns(conn);
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().any(|c| c.payload == [0x55; 48]));
        assert!(cells.iter().any(|c| c.payload[10] == 10));
        assert!(cells.iter().all(|c| c.id() == conn));
    }

    #[test]
    fn single_bit_errors_are_all_correctable() {
        let base = AtmCell::user_data(VpiVci::uni(3, 99).unwrap(), [7; 48]);
        let vectors = single_bit_hec_errors(&base, HeaderFormat::Uni).unwrap();
        assert_eq!(vectors.len(), 40);
        for (bit, bad, original) in vectors {
            let mut rx = HecReceiver::new();
            let mut hdr = [0u8; 5];
            hdr.copy_from_slice(&bad[..5]);
            match rx.receive(&hdr) {
                HecOutcome::Corrected(fixed) => {
                    let expect = original.encode(HeaderFormat::Uni).unwrap();
                    assert_eq!(fixed, expect[..5], "bit {bit}");
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn double_bit_errors_are_never_accepted() {
        let base = AtmCell::user_data(VpiVci::uni(3, 99).unwrap(), [7; 48]);
        for bad in double_bit_hec_errors(&base, HeaderFormat::Uni).unwrap() {
            let mut rx = HecReceiver::new();
            let mut hdr = [0u8; 5];
            hdr.copy_from_slice(&bad[..5]);
            assert_ne!(rx.receive(&hdr), HecOutcome::Valid);
        }
    }

    #[test]
    fn standard_suite_aggregates_everything() {
        let conn = VpiVci::uni(1, 40).unwrap();
        let suite = standard_suite(conn).unwrap();
        assert_eq!(suite.len(), 32 + 20 + 6);
    }
}
