//! Time-stamped inter-simulator messages.
//!
//! "Communication between both simulators is based on the exchange of
//! time-stamped messages updating the receiving simulator with the current
//! simulation time of the originator" (§3.1). A message carries its
//! originator's time stamp, a *message type* (the unit the conservative
//! protocol's per-type queues `I_j` and processing delays `δ_j` attach to),
//! a co-simulation port index, and a payload.

use castanet_atm::cell::AtmCell;
use castanet_netsim::time::SimTime;
use std::fmt;

/// Identifies a message type. The conservative synchronizer maintains one
/// input queue and one processing delay per type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageTypeId(pub u32);

impl fmt::Display for MessageTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

/// The content of a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessagePayload {
    /// An ATM cell (the dominant traffic of the environment).
    Cell(AtmCell),
    /// Raw bytes for custom test vectors.
    Raw(Vec<u8>),
    /// A scalar control/configuration word.
    Control(u64),
    /// A pure time update ("null message"): no content, only the stamp.
    TimeOnly,
}

impl MessagePayload {
    /// Short label for diagnostics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MessagePayload::Cell(_) => "cell",
            MessagePayload::Raw(_) => "raw",
            MessagePayload::Control(_) => "control",
            MessagePayload::TimeOnly => "time",
        }
    }
}

/// One inter-simulator message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The originator's simulation time when the message was produced.
    pub stamp: SimTime,
    /// The type the synchronizer queues it under.
    pub type_id: MessageTypeId,
    /// The co-simulation port (e.g. which DUT line) it addresses.
    pub port: usize,
    /// The content.
    pub payload: MessagePayload,
}

impl Message {
    /// Builds a cell message.
    #[must_use]
    pub fn cell(stamp: SimTime, type_id: MessageTypeId, port: usize, cell: AtmCell) -> Self {
        Message {
            stamp,
            type_id,
            port,
            payload: MessagePayload::Cell(cell),
        }
    }

    /// Builds a null (time-update) message.
    #[must_use]
    pub fn time_update(stamp: SimTime, type_id: MessageTypeId) -> Self {
        Message {
            stamp,
            type_id,
            port: 0,
            payload: MessagePayload::TimeOnly,
        }
    }

    /// The cell payload, if this is a cell message.
    #[must_use]
    pub fn as_cell(&self) -> Option<&AtmCell> {
        match &self.payload {
            MessagePayload::Cell(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} port{} {}]",
            self.stamp,
            self.type_id,
            self.port,
            self.payload.kind()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_atm::addr::VpiVci;

    #[test]
    fn constructors_and_accessors() {
        let cell = AtmCell::user_data(VpiVci::uni(1, 40).unwrap(), [0; 48]);
        let m = Message::cell(SimTime::from_us(3), MessageTypeId(1), 2, cell.clone());
        assert_eq!(m.as_cell(), Some(&cell));
        assert_eq!(m.port, 2);
        assert_eq!(m.payload.kind(), "cell");

        let t = Message::time_update(SimTime::from_us(9), MessageTypeId(0));
        assert_eq!(t.as_cell(), None);
        assert_eq!(t.payload.kind(), "time");
    }

    #[test]
    fn display_is_compact() {
        let m = Message::time_update(SimTime::from_ns(5), MessageTypeId(3));
        assert_eq!(m.to_string(), "[5 ns type#3 port0 time]");
    }

    #[test]
    fn payload_kinds() {
        assert_eq!(MessagePayload::Raw(vec![1]).kind(), "raw");
        assert_eq!(MessagePayload::Control(7).kind(), "control");
    }
}
