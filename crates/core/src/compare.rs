//! The "=?" stage of Fig. 1: comparing DUT responses against the reference
//! model.
//!
//! "The responses from the device under test are sent back to the CASTANET
//! interface node and can be compared to the reference model's responses at
//! the system level." Comparison is per connection and in-order: cells of
//! one VPI/VCI must arrive in the same order with identical payloads;
//! cross-connection interleaving is free (switches do not guarantee it).
//! An optional latency bound flags responses that took unreasonably long.

use castanet_atm::addr::VpiVci;
use castanet_atm::cell::AtmCell;
use castanet_netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// One detected discrepancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// Payloads differ for the n-th cell of a connection.
    Payload {
        /// The connection.
        conn: VpiVci,
        /// Index within the connection's stream.
        index: u64,
        /// Time the DUT cell arrived.
        at: SimTime,
    },
    /// The DUT produced a cell on a connection with no reference cell
    /// outstanding.
    Extra {
        /// The connection.
        conn: VpiVci,
        /// Time the unexpected cell arrived.
        at: SimTime,
    },
    /// Reference cells that never appeared from the DUT (reported by
    /// [`StreamComparator::finish`]).
    Missing {
        /// The connection.
        conn: VpiVci,
        /// How many cells never arrived.
        count: u64,
    },
    /// A response exceeded the latency bound.
    LatencyExceeded {
        /// The connection.
        conn: VpiVci,
        /// Index within the connection's stream.
        index: u64,
        /// The measured latency.
        latency: SimDuration,
    },
    /// The DUT emitted bytes that did not decode as a cell.
    Undecodable {
        /// Time of arrival.
        at: SimTime,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::Payload { conn, index, at } => {
                write!(f, "payload mismatch on {conn} cell #{index} at {at}")
            }
            Mismatch::Extra { conn, at } => write!(f, "unexpected cell on {conn} at {at}"),
            Mismatch::Missing { conn, count } => {
                write!(f, "{count} cells missing on {conn}")
            }
            Mismatch::LatencyExceeded {
                conn,
                index,
                latency,
            } => {
                write!(f, "latency {latency} exceeded on {conn} cell #{index}")
            }
            Mismatch::Undecodable { at } => write!(f, "undecodable dut output at {at}"),
        }
    }
}

/// Summary of a comparison run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComparisonReport {
    /// Cells that matched.
    pub matched: u64,
    /// All discrepancies, in detection order.
    pub mismatches: Vec<Mismatch>,
    /// Largest observed response latency among matched cells.
    pub max_latency: SimDuration,
}

impl ComparisonReport {
    /// `true` when no discrepancy was detected.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "comparison: {} matched, {} mismatches, max latency {}",
            self.matched,
            self.mismatches.len(),
            self.max_latency
        )?;
        for m in &self.mismatches {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

struct PendingRef {
    payload: [u8; 48],
    sent_at: SimTime,
    index: u64,
}

/// In-order, per-connection stream comparator.
///
/// Feed reference cells (what the algorithm model emitted toward the DUT's
/// egress, *after* any expected translation) with
/// [`StreamComparator::expect`] and DUT cells with
/// [`StreamComparator::observe`]; call [`StreamComparator::finish`] at the
/// end of the run.
///
/// # Examples
///
/// ```
/// use castanet::compare::StreamComparator;
/// use castanet_atm::addr::VpiVci;
/// use castanet_atm::cell::AtmCell;
/// use castanet_netsim::time::SimTime;
///
/// let conn = VpiVci::uni(7, 70)?;
/// let cell = AtmCell::user_data(conn, [9; 48]);
/// let mut cmp = StreamComparator::new(None);
/// cmp.expect(&cell, SimTime::from_us(1));
/// cmp.observe(&cell, SimTime::from_us(3));
/// let report = cmp.finish();
/// assert!(report.passed());
/// assert_eq!(report.matched, 1);
/// # Ok::<(), castanet_atm::error::AtmError>(())
/// ```
pub struct StreamComparator {
    pending: HashMap<VpiVci, VecDeque<PendingRef>>,
    counts: HashMap<VpiVci, u64>,
    latency_bound: Option<SimDuration>,
    report: ComparisonReport,
}

impl std::fmt::Debug for StreamComparator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamComparator")
            .field("connections", &self.pending.len())
            .field("matched", &self.report.matched)
            .field("mismatches", &self.report.mismatches.len())
            .finish()
    }
}

impl StreamComparator {
    /// Creates a comparator; `latency_bound` (if given) flags responses
    /// slower than the bound.
    #[must_use]
    pub fn new(latency_bound: Option<SimDuration>) -> Self {
        StreamComparator {
            pending: HashMap::new(),
            counts: HashMap::new(),
            latency_bound,
            report: ComparisonReport::default(),
        }
    }

    /// Registers a reference cell expected to appear from the DUT.
    pub fn expect(&mut self, cell: &AtmCell, sent_at: SimTime) {
        let count = self.counts.entry(cell.id()).or_insert(0);
        let index = *count;
        *count += 1;
        self.pending
            .entry(cell.id())
            .or_default()
            .push_back(PendingRef {
                payload: cell.payload,
                sent_at,
                index,
            });
    }

    /// Feeds one observed DUT cell.
    pub fn observe(&mut self, cell: &AtmCell, at: SimTime) {
        let Some(queue) = self.pending.get_mut(&cell.id()) else {
            self.report.mismatches.push(Mismatch::Extra {
                conn: cell.id(),
                at,
            });
            return;
        };
        let Some(expected) = queue.pop_front() else {
            self.report.mismatches.push(Mismatch::Extra {
                conn: cell.id(),
                at,
            });
            return;
        };
        if expected.payload != cell.payload {
            self.report.mismatches.push(Mismatch::Payload {
                conn: cell.id(),
                index: expected.index,
                at,
            });
            return;
        }
        self.report.matched += 1;
        if let Some(latency) = at.checked_duration_since(expected.sent_at) {
            self.report.max_latency = self.report.max_latency.max(latency);
            if let Some(bound) = self.latency_bound {
                if latency > bound {
                    self.report.mismatches.push(Mismatch::LatencyExceeded {
                        conn: cell.id(),
                        index: expected.index,
                        latency,
                    });
                }
            }
        }
    }

    /// Records an undecodable DUT output (raw bytes that were not a cell).
    pub fn observe_undecodable(&mut self, at: SimTime) {
        self.report.mismatches.push(Mismatch::Undecodable { at });
    }

    /// Closes the comparison: outstanding reference cells become
    /// [`Mismatch::Missing`] entries.
    #[must_use]
    pub fn finish(mut self) -> ComparisonReport {
        let mut conns: Vec<(VpiVci, u64)> = self
            .pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(c, q)| (*c, q.len() as u64))
            .collect();
        conns.sort();
        for (conn, count) in conns {
            self.report
                .mismatches
                .push(Mismatch::Missing { conn, count });
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn(vci: u16) -> VpiVci {
        VpiVci::uni(1, vci).unwrap()
    }

    fn cell(vci: u16, fill: u8) -> AtmCell {
        AtmCell::user_data(conn(vci), [fill; 48])
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn matching_streams_pass() {
        let mut cmp = StreamComparator::new(None);
        for i in 0..5u8 {
            cmp.expect(&cell(40, i), us(u64::from(i)));
        }
        for i in 0..5u8 {
            cmp.observe(&cell(40, i), us(u64::from(i) + 10));
        }
        let r = cmp.finish();
        assert!(r.passed());
        assert_eq!(r.matched, 5);
        assert_eq!(r.max_latency, SimDuration::from_us(10));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut cmp = StreamComparator::new(None);
        cmp.expect(&cell(40, 1), us(0));
        cmp.observe(&cell(40, 2), us(1));
        let r = cmp.finish();
        assert_eq!(r.matched, 0);
        assert_eq!(
            r.mismatches,
            vec![Mismatch::Payload {
                conn: conn(40),
                index: 0,
                at: us(1)
            }]
        );
    }

    #[test]
    fn missing_cells_reported_at_finish() {
        let mut cmp = StreamComparator::new(None);
        cmp.expect(&cell(40, 1), us(0));
        cmp.expect(&cell(40, 2), us(1));
        cmp.expect(&cell(50, 3), us(2));
        cmp.observe(&cell(40, 1), us(5));
        let r = cmp.finish();
        assert_eq!(r.matched, 1);
        assert!(r.mismatches.contains(&Mismatch::Missing {
            conn: conn(40),
            count: 1
        }));
        assert!(r.mismatches.contains(&Mismatch::Missing {
            conn: conn(50),
            count: 1
        }));
    }

    #[test]
    fn extra_cells_detected() {
        let mut cmp = StreamComparator::new(None);
        cmp.observe(&cell(40, 1), us(1));
        cmp.expect(&cell(50, 1), us(0));
        cmp.observe(&cell(50, 1), us(2));
        cmp.observe(&cell(50, 1), us(3)); // duplicate
        let r = cmp.finish();
        assert_eq!(r.matched, 1);
        assert_eq!(
            r.mismatches,
            vec![
                Mismatch::Extra {
                    conn: conn(40),
                    at: us(1)
                },
                Mismatch::Extra {
                    conn: conn(50),
                    at: us(3)
                },
            ]
        );
    }

    #[test]
    fn per_connection_order_is_enforced_but_interleaving_is_free() {
        let mut cmp = StreamComparator::new(None);
        cmp.expect(&cell(40, 1), us(0));
        cmp.expect(&cell(50, 9), us(1));
        cmp.expect(&cell(40, 2), us(2));
        // Observed with connections interleaved differently: fine.
        cmp.observe(&cell(50, 9), us(10));
        cmp.observe(&cell(40, 1), us(11));
        cmp.observe(&cell(40, 2), us(12));
        assert!(cmp.finish().passed());
    }

    #[test]
    fn reordering_within_a_connection_fails() {
        let mut cmp = StreamComparator::new(None);
        cmp.expect(&cell(40, 1), us(0));
        cmp.expect(&cell(40, 2), us(1));
        cmp.observe(&cell(40, 2), us(10));
        cmp.observe(&cell(40, 1), us(11));
        let r = cmp.finish();
        assert_eq!(r.matched, 0);
        assert_eq!(
            r.mismatches.len(),
            2,
            "both cells mismatch under reordering"
        );
    }

    #[test]
    fn latency_bound_flags_slow_responses() {
        let mut cmp = StreamComparator::new(Some(SimDuration::from_us(5)));
        cmp.expect(&cell(40, 1), us(0));
        cmp.expect(&cell(40, 2), us(0));
        cmp.observe(&cell(40, 1), us(3));
        cmp.observe(&cell(40, 2), us(9));
        let r = cmp.finish();
        assert_eq!(r.matched, 2);
        assert_eq!(
            r.mismatches,
            vec![Mismatch::LatencyExceeded {
                conn: conn(40),
                index: 1,
                latency: SimDuration::from_us(9),
            }]
        );
    }

    #[test]
    fn undecodable_outputs_recorded() {
        let mut cmp = StreamComparator::new(None);
        cmp.observe_undecodable(us(4));
        let r = cmp.finish();
        assert_eq!(r.mismatches, vec![Mismatch::Undecodable { at: us(4) }]);
    }

    #[test]
    fn report_display_lists_mismatches() {
        let mut cmp = StreamComparator::new(None);
        cmp.expect(&cell(40, 1), us(0));
        let r = cmp.finish();
        let text = r.to_string();
        assert!(text.contains("0 matched"));
        assert!(text.contains("cells missing on VPI=1/VCI=40"));
    }
}
