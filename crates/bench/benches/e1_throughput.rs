//! E1 — the paper's §2 throughput comparison: CASTANET co-simulation vs
//! the pure-RTL regression test bench, on the 4-port-switch + GCU workload.
//!
//! Paper numbers (UltraSparc, 1997): co-simulation ≈ 1300 DUT clock
//! cycles/s, pure RTL ≈ 300 — a ≈4.3× advantage for moving the test bench
//! to the system level. This bench reports wall time per workload for all
//! three set-ups (event-driven coupling, pure-RTL bench, cycle-based
//! coupling); convert with the clock counts printed by `repro e1` to get
//! cycles/s.

use castanet_bench::small_switch_config;
use castanet_netsim::time::SimTime;
use coverify::scenarios::{pure_rtl_clocks, switch_cosim, switch_cosim_cycle, switch_pure_rtl};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_throughput");
    group.sample_size(10);

    for &cells_per_source in &[25u64, 100] {
        let total = cells_per_source * 4;
        group.bench_with_input(
            BenchmarkId::new("cosim_event_driven", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let scenario = switch_cosim(small_switch_config(n));
                    let mut coupling = scenario.coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pure_rtl_bench", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let config = small_switch_config(n);
                    let mut tb = switch_pure_rtl(config);
                    tb.run_clocks(pure_rtl_clocks(&config)).expect("run");
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cosim_cycle_based", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let scenario = switch_cosim_cycle(small_switch_config(n));
                    let mut coupling = scenario.coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
