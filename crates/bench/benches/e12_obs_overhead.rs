//! E12 — the telemetry v2 overhead budget, per trace policy.
//!
//! E9 priced the v1 handle on the cycle engine; this experiment prices the
//! v2 sharded-sink pipeline (per-thread seqlock rings, sampled
//! micro-phases, always-on counters) across its three policies on the
//! workload where the budget is enforceable: the event-driven kernel of
//! the E8 headline row, whose per-event work (~35 µs/cell end to end) is
//! large enough that a handful of clock reads per sampled micro-phase
//! stays inside a 5% envelope.
//!
//! * `event_telemetry_off` — disabled handle, the baseline every policy
//!   is judged against;
//! * `event_counters_only` — `TraceMode::CountersOnly`: metrics increment,
//!   `micro_gate()` refuses, nothing is pushed to the rings;
//! * `event_full_trace` — `TraceMode::Full`: every protocol event plus
//!   1-in-64-sampled kernel micro-phases through the sharded sink.
//!
//! CI guards `event_full_trace` at ≤ 5% over `event_telemetry_off`
//! (`check_bench_regression.py --overhead`, which compares the rows'
//! medians). The `cycle_*` rows measure the same three policies
//! on the ~10× faster cycle engine for context; they are *informational*
//! — at ~1.5 µs per clock batch, two `vdso` clock reads per sampled phase
//! are already a visible fraction, and the row documents that honestly
//! instead of guarding an unreachable bound.
//!
//! Measurement discipline: a single-digit-percent budget cannot be
//! enforced on rows measured in disjoint time windows — machine drift
//! between windows routinely exceeds the budget itself. So one pass
//! gathers every sample *interleaved*: each round builds and times all
//! six scenario×policy combinations back to back, scenario construction
//! and telemetry arena allocation/teardown excluded from the timed
//! window (the budget prices steady-state recording, not the one-time
//! cost of zeroing ring segments). The rows then replay their samples
//! through `Bencher::iter_custom`, and the guard compares medians —
//! drift hits every row's interleaved median equally and cancels out of
//! the ratio.

use castanet::coupling::Coupling;
use castanet::{CoupledSimulator, Telemetry};
use castanet_bench::small_switch_config;
use castanet_netsim::time::SimTime;
use coverify::scenarios::{switch_cosim, switch_cosim_cycle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Timed samples per row; one warmup round is gathered and discarded.
const ROUNDS: usize = 40;

/// Cells per traffic source; the switch scenarios drive four sources.
const CELLS_PER_SOURCE: u64 = 25;

/// Builds the telemetry handle for one trace policy.
type PolicyFactory = fn() -> Option<Telemetry>;

/// The three trace policies, as (row-name suffix, handle factory).
fn policies() -> [(&'static str, PolicyFactory); 3] {
    [
        ("telemetry_off", || None),
        ("counters_only", || Some(Telemetry::counters_only())),
        ("full_trace", || Some(Telemetry::enabled())),
    ]
}

/// Times one run: construction and teardown stay outside the window.
fn timed_run<S: CoupledSimulator>(mut coupling: Coupling<S>) -> Duration {
    let start = Instant::now();
    coupling.run(SimTime::from_secs(1)).expect("run");
    let took = start.elapsed();
    std::hint::black_box(coupling.stats().responses);
    drop(coupling);
    took
}

/// Per-policy samples for both engines, gathered in one interleaved pass.
struct Samples {
    event: [Vec<Duration>; 3],
    cycle: [Vec<Duration>; 3],
}

fn samples() -> &'static Samples {
    static SAMPLES: OnceLock<Samples> = OnceLock::new();
    SAMPLES.get_or_init(|| {
        let mut samples = Samples {
            event: [Vec::new(), Vec::new(), Vec::new()],
            cycle: [Vec::new(), Vec::new(), Vec::new()],
        };
        for round in 0..=ROUNDS {
            for (policy, (_, make_tel)) in policies().into_iter().enumerate() {
                let mut scenario = switch_cosim(small_switch_config(CELLS_PER_SOURCE));
                if let Some(tel) = make_tel() {
                    scenario = scenario.with_telemetry(&tel);
                }
                let took = timed_run(scenario.coupling);
                if round > 0 {
                    samples.event[policy].push(took);
                }

                let mut scenario = switch_cosim_cycle(small_switch_config(CELLS_PER_SOURCE));
                if let Some(tel) = make_tel() {
                    scenario = scenario.with_telemetry(&tel);
                }
                let took = timed_run(scenario.coupling);
                if round > 0 {
                    samples.cycle[policy].push(took);
                }
            }
        }
        samples
    })
}

fn bench_e12(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_obs_overhead");
    group.sample_size(ROUNDS);

    let total = CELLS_PER_SOURCE * 4;
    group.throughput(Throughput::Elements(total));

    for (engine, pick) in [
        (
            "event",
            (|s: &'static Samples, p: usize| &s.event[p]) as fn(_, _) -> _,
        ),
        ("cycle", |s: &'static Samples, p: usize| &s.cycle[p]),
    ] {
        for (policy, (name, _)) in policies().into_iter().enumerate() {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine}_{name}"), total),
                &policy,
                |b, &policy| {
                    let rounds = pick(samples(), policy);
                    let mut next = 0usize;
                    b.iter_custom(|_iters| {
                        let sample = rounds[next % rounds.len()];
                        next += 1;
                        sample
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e12);
criterion_main!(benches);
