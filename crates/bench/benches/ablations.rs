//! Ablations of the design choices DESIGN.md §7 calls out (beyond the
//! conservative/optimistic/lockstep study in `e2_sync` and the engine
//! study in `e7_engines`):
//!
//! * IPC transport: in-process channel vs real Unix-domain sockets under
//!   the remote-follower protocol;
//! * per-message-type δ granularity: how the number of registered message
//!   types affects the conservative synchronizer's per-message cost;
//! * the coupling's drain quantum: small quanta re-check quiescence often,
//!   large quanta simulate more idle time before stopping.

use castanet::coupling::CoupledSimulator;
use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
use castanet::ipc::{in_process_pair, MessageTransport, UnixSocketTransport};
use castanet::message::{Message, MessageTypeId};
use castanet::remote::{FollowerServer, RemoteFollower};
use castanet::sync::conservative::ConservativeSync;
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_bench::small_switch_config;
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::cycle::CycleSim;
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
use coverify::scenarios::switch_cosim;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn local_follower() -> CycleCosim {
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 32,
        table_capacity: 8,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    let sim = CycleSim::new(Box::new(switch));
    let mut f = CycleCosim::new(
        sim,
        SimDuration::from_ns(20),
        MessageTypeId(0),
        HeaderFormat::Uni,
    );
    f.add_ingress(IngressIndices {
        data: 0,
        sync: 1,
        enable: 2,
    });
    f.add_egress(EgressIndices {
        data: 3,
        sync: 4,
        valid: 5,
    });
    f
}

fn remote_session<T: MessageTransport + 'static>(client_t: T, server_t: T, cells: u64) -> u64 {
    let server = FollowerServer::new(server_t, local_follower());
    let handle = std::thread::spawn(move || server.serve());
    let mut remote = RemoteFollower::new(client_t);
    for k in 0..cells {
        remote
            .deliver(Message::cell(
                SimTime::from_us(5 * k),
                MessageTypeId(1),
                0,
                AtmCell::user_data(VpiVci::uni(1, 40).expect("id"), [k as u8; 48]),
            ))
            .expect("deliver");
    }
    let mut got = 0u64;
    loop {
        let r = remote
            .advance_until(SimTime::from_us(5 * cells + 100))
            .expect("advance");
        if r.is_empty() {
            break;
        }
        got += r.len() as u64;
    }
    remote.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve");
    got
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ipc_transport");
    group.sample_size(20);
    group.throughput(Throughput::Elements(16));
    group.bench_function("in_process_channel", |b| {
        b.iter(|| {
            let (a, s) = in_process_pair();
            remote_session(a, s, 16)
        });
    });
    group.bench_function("unix_socket", |b| {
        b.iter(|| {
            let (a, s) = UnixSocketTransport::pair().expect("socketpair");
            remote_session(a, s, 16)
        });
    });
    group.finish();
}

fn bench_delta_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delta_granularity");
    group.throughput(Throughput::Elements(10_000));
    for &types_n in &[1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("types", types_n), &types_n, |b, &n| {
            b.iter(|| {
                let mut sync = ConservativeSync::new();
                let types: Vec<_> = (0..n)
                    .map(|i| sync.register_type(SimDuration::from_us(1 + i as u64)))
                    .collect();
                let mut x: u64 = 0xABCD_EF01;
                let mut stamps = vec![SimTime::ZERO; n];
                let mut originator = SimTime::ZERO;
                let mut prev = SimTime::ZERO;
                for _ in 0..10_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let j = (x as usize) % n;
                    originator += SimDuration::from_ns(x % 700);
                    stamps[j] = stamps[j].max(originator);
                    sync.receive(types[j], stamps[j], false).expect("receive");
                    sync.advance_local(prev).expect("advance");
                    prev = sync.originator_time();
                    while sync.pop_ready(types[j]).is_some() {}
                }
                sync.stats().messages
            });
        });
    }
    group.finish();
}

fn bench_drain_quantum(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_drain_quantum");
    group.sample_size(10);
    for &quantum_us in &[5u64, 50, 500] {
        group.bench_with_input(
            BenchmarkId::new("quantum_us", quantum_us),
            &quantum_us,
            |b, &q| {
                b.iter(|| {
                    let scenario = switch_cosim(small_switch_config(25));
                    let mut coupling = scenario.coupling.with_drain(SimDuration::from_us(q), 2);
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transports,
    bench_delta_granularity,
    bench_drain_quantum
);
criterion_main!(benches);
