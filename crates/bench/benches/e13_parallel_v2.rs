//! E13 — the lock-free parallel executor v2 against the serial coupling,
//! on both engines.
//!
//! This is the acceptance bench for the SPSC-ring transport rewrite: the
//! same four set-ups as E8 (identical E1-shaped workload), but the gate is
//! stricter — the parallel executor must now beat its *like-for-like*
//! serial baseline on **both** engines, not just amortize against the
//! slowest one:
//!
//! * `serial_event_driven`   — serial `Coupling::run`, event-driven RTL
//!   follower (one rendezvous per network event);
//! * `serial_cycle_based`    — serial coupling, cycle engine with idle
//!   skipping;
//! * `parallel_event_driven` — `ParallelCoupling` v2 over the event-driven
//!   follower: SPSC rings, zero-copy batch grants, adaptive windows;
//! * `parallel_cycle_based`  — the same executor over the cycle engine,
//!   where the old channel transport *lost* to serial (E8 measured 0.87×)
//!   because per-window allocations and mutex rendezvous cost more than
//!   the overlap bought back;
//! * `timewarp_cycle_based`  — informational: `ExecMode::TimeWarp` with
//!   checkpointed speculation on the cycle engine, to price the safety
//!   net against the conservative rows.
//!
//! CI enforces `parallel_event_driven > serial_event_driven` and
//! `parallel_cycle_based > serial_cycle_based` per workload size via
//! `check_bench_regression.py --require-faster`.
//!
//! Measurement discipline: the cycle-engine margin is single-digit
//! percent on a single-hardware-thread host (every microsecond of it is
//! removed coupling overhead, there being no second core to overlap on),
//! and a sub-10% verdict cannot be trusted across disjoint measurement
//! windows — machine drift between windows routinely exceeds the margin
//! itself. So, exactly like E12's overhead budget, one pass gathers all
//! five configurations' samples *interleaved*: each round builds and
//! times every configuration back to back (construction and teardown
//! outside the timed window), the rows replay their samples through
//! `iter_custom`, and the `--require-faster` guard compares medians —
//! drift hits every row's interleaved median equally and cancels out of
//! the comparison.
//!
//! Tuning notes: the event-driven follower is ~9× slower than the network
//! kernel, so its row gains mostly from window batching (fewer grant
//! rendezvous, larger uninterrupted advance spans, lazy batch playback
//! keeping its event queue serial-sized); the cycle follower clears a
//! window in tens of microseconds, so its row goes wide (400 µs × depth
//! 8) to trade run-ahead depth for fewer thread handoffs. Workload sizes
//! start at 800 cells: much below that the cycle-engine run is well
//! under a millisecond of work, the per-run thread spawn plus the
//! handful of mandatory handoffs is the same order as the overhead
//! removed, and the comparison degenerates to a coin flip.

use castanet::coupling::Coupling;
use castanet::parallel::{ExecMode, ParallelCoupling};
use castanet::CoupledSimulator;
use castanet_bench::small_switch_config;
use castanet_netsim::time::{SimDuration, SimTime};
use coverify::scenarios::{switch_cosim, switch_cosim_cycle, switch_cosim_parallel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Timed samples per row; one warmup round is gathered and discarded.
const ROUNDS: usize = 20;

/// Cells per traffic source (the switch drives four sources).
const SIZES: [u64; 2] = [200, 400];

/// Row names, in the order each round gathers them.
const ROWS: [&str; 5] = [
    "serial_event_driven",
    "serial_cycle_based",
    "parallel_event_driven",
    "parallel_cycle_based",
    "timewarp_cycle_based",
];

fn timed_serial<S: CoupledSimulator>(mut coupling: Coupling<S>) -> Duration {
    let start = Instant::now();
    coupling.run(SimTime::from_secs(1)).expect("run");
    let took = start.elapsed();
    std::hint::black_box(coupling.stats().responses);
    took
}

fn timed_parallel<S: CoupledSimulator + Send>(mut coupling: ParallelCoupling<S>) -> Duration {
    let start = Instant::now();
    coupling.run(SimTime::from_secs(1)).expect("run");
    let took = start.elapsed();
    std::hint::black_box(coupling.stats().responses);
    took
}

/// One interleaved round: every configuration timed back to back, with
/// each gated serial/parallel pair *adjacent* — the `--require-faster`
/// verdicts compare exactly these pairs, and a multi-millisecond run
/// between a pair's two samples would reintroduce the within-round
/// drift the interleaving exists to cancel.
fn one_round(n: u64) -> [Duration; 5] {
    let serial_event = timed_serial(switch_cosim(small_switch_config(n)).coupling);
    let parallel_event = timed_parallel(
        switch_cosim(small_switch_config(n))
            .coupling
            .into_parallel()
            .with_batching(SimDuration::from_us(100), 4),
    );
    let serial_cycle = timed_serial(switch_cosim_cycle(small_switch_config(n)).coupling);
    let parallel_cycle = timed_parallel(
        switch_cosim_parallel(small_switch_config(n))
            .coupling
            .with_batching(SimDuration::from_us(400), 8),
    );
    let timewarp_cycle = timed_parallel(
        switch_cosim_parallel(small_switch_config(n))
            .coupling
            .with_batching(SimDuration::from_us(400), 8)
            .with_exec_mode(ExecMode::TimeWarp),
    );
    [
        serial_event,
        serial_cycle,
        parallel_event,
        parallel_cycle,
        timewarp_cycle,
    ]
}

/// `samples()[size_index][row][round]`, gathered once for every row.
fn samples() -> &'static Vec<[Vec<Duration>; 5]> {
    static SAMPLES: OnceLock<Vec<[Vec<Duration>; 5]>> = OnceLock::new();
    SAMPLES.get_or_init(|| {
        SIZES
            .iter()
            .map(|&n| {
                let mut rows: [Vec<Duration>; 5] = Default::default();
                for round in 0..=ROUNDS {
                    let took = one_round(n);
                    if round > 0 {
                        for (row, t) in took.into_iter().enumerate() {
                            rows[row].push(t);
                        }
                    }
                }
                rows
            })
            .collect()
    })
}

fn bench_e13(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_parallel_v2");
    group.sample_size(ROUNDS);

    for (size_index, &cells_per_source) in SIZES.iter().enumerate() {
        let total = cells_per_source * 4;
        group.throughput(Throughput::Elements(total));
        for (row, name) in ROWS.into_iter().enumerate() {
            group.bench_with_input(
                BenchmarkId::new(name, total),
                &(size_index, row),
                |b, &(size_index, row)| {
                    let rounds = &samples()[size_index][row];
                    let mut next = 0usize;
                    b.iter_custom(|_iters| {
                        let sample = rounds[next % rounds.len()];
                        next += 1;
                        sample
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e13);
criterion_main!(benches);
