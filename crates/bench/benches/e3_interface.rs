//! E3 — the abstraction interface (paper §3.2, Fig. 4): conversion of
//! abstract ATM cells to 53 byte-level bus operations plus `cellsync`, and
//! the reverse reassembly. The mapping cost per cell is the per-message
//! overhead of the co-simulation entity, so its throughput bounds the
//! coupling.

use castanet::convert::{cell_to_byte_ops, ByteStreamAssembler};
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_e3(c: &mut Criterion) {
    let cell = AtmCell::user_data(VpiVci::uni(1, 42).expect("id"), [0x5A; 48]);
    let ops = cell_to_byte_ops(&cell, HeaderFormat::Uni).expect("convert");

    let mut group = c.benchmark_group("e3_interface");
    group.throughput(Throughput::Elements(1));

    group.bench_function("cell_to_byte_ops", |b| {
        b.iter(|| {
            cell_to_byte_ops(std::hint::black_box(&cell), HeaderFormat::Uni).expect("convert")
        });
    });

    group.bench_function("byte_stream_reassembly", |b| {
        b.iter(|| {
            let mut rx = ByteStreamAssembler::new(HeaderFormat::Uni);
            let mut out = None;
            for op in &ops {
                if let Some(cell) = rx.push(op.data, op.sync).expect("assemble") {
                    out = Some(cell);
                }
            }
            out.expect("one cell")
        });
    });

    group.bench_function("wire_encode_decode", |b| {
        b.iter(|| {
            let wire = std::hint::black_box(&cell)
                .encode(HeaderFormat::Uni)
                .expect("encode");
            AtmCell::decode(&wire, HeaderFormat::Uni).expect("decode")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
