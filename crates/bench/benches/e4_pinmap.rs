//! E4 — the pin-mapping configuration data set (paper §3.3, Fig. 5):
//! validation cost of a configuration and per-frame encode/decode through
//! the byte-lane mappings — the inner loop of every board test cycle.

use castanet_testboard::pinmap::{PinFrame, PinMapConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_e4(c: &mut Criterion) {
    let (cfg, lanes) = PinMapConfig::fig5_example();

    let mut group = c.benchmark_group("e4_pinmap");
    group.throughput(Throughput::Elements(1));

    group.bench_function("validate_fig5_config", |b| {
        b.iter(|| cfg.validate(std::hint::black_box(&lanes)).expect("valid"));
    });

    group.bench_function("encode_three_inports", |b| {
        b.iter(|| {
            let mut frame: PinFrame = [0; 16];
            cfg.encode_inport(1, 0b10_1011, &mut frame).expect("encode");
            cfg.encode_inport(2, 0xA5, &mut frame).expect("encode");
            cfg.encode_inport(3, 0xABC, &mut frame).expect("encode");
            frame
        });
    });

    group.bench_function("decode_outports_and_ctrl", |b| {
        let mut frame: PinFrame = [0; 16];
        frame[3] = 0xB0;
        frame[6] = 0x2A;
        frame[7] = 0x03;
        b.iter(|| {
            let a = cfg
                .decode_outport(1, std::hint::black_box(&frame))
                .expect("decode");
            let bb = cfg.decode_outport(2, &frame).expect("decode");
            let w = cfg.io_is_write(2, &frame).expect("io");
            (a, bb, w)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
