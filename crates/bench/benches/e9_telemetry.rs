//! E9 — telemetry overhead on the coupled executors.
//!
//! The `castanet-obs` handle claims to be zero-cost when disabled: the
//! default `Telemetry` is a `None` every instrumented call site branches
//! on, and the metric handles it hands out are inert. This harness puts a
//! number on that claim, on both executors of the e1 workload:
//!
//! * `serial_telemetry_off` / `serial_telemetry_on` — `Coupling::run`
//!   over the cycle engine, without and with an enabled handle;
//! * `parallel_telemetry_off` / `parallel_telemetry_on` — the
//!   `ParallelCoupling` executor (the e8 headline row), without and with
//!   an enabled handle recording from both threads.
//!
//! The acceptance bound reads the `off` rows against the untouched e8
//! timings (no-op handle < 3% overhead); the `on` rows price the full
//! ring-buffer + metrics recording path.

use castanet::Telemetry;
use castanet_bench::small_switch_config;
use castanet_netsim::time::SimTime;
use coverify::scenarios::{switch_cosim_cycle, switch_cosim_parallel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_e9(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_telemetry");
    group.sample_size(10);

    for &cells_per_source in &[25u64, 100] {
        let total = cells_per_source * 4;
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(
            BenchmarkId::new("serial_telemetry_off", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let mut coupling = switch_cosim_cycle(small_switch_config(n)).coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("serial_telemetry_on", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let tel = Telemetry::enabled();
                    let mut coupling = switch_cosim_cycle(small_switch_config(n))
                        .with_telemetry(&tel)
                        .coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    (coupling.stats().responses, tel.events().len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_telemetry_off", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let mut coupling = switch_cosim_parallel(small_switch_config(n)).coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_telemetry_on", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let tel = Telemetry::enabled();
                    let mut coupling = switch_cosim_parallel(small_switch_config(n))
                        .with_telemetry(&tel)
                        .coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    (coupling.stats().responses, tel.events().len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
