//! E7 — the engine ablation of the paper's conclusion (§5): the same
//! pin-level DUT under (a) the event-driven kernel with delta cycles and
//! signal events, and (b) the cycle-based engine — plus the raw per-clock
//! cost of each engine on the switch DUT.
//!
//! "Event-driven VHDL simulators are obviously a bottleneck … the
//! integration of cycle-based simulation techniques is required."

use castanet_bench::small_switch_config;
use castanet_netsim::time::SimTime;
use castanet_rtl::cycle::CycleSim;
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
use coverify::scenarios::{switch_cosim, switch_cosim_cycle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Raw engine cost: N clocks of the 4-port switch, idle line.
fn cycle_engine_clocks(n: u64) -> u64 {
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig::default());
    switch.install_route(1, 40, 1, 7, 70);
    let mut sim = CycleSim::new(Box::new(switch));
    let inputs = vec![0u64; sim.input_ports().len()];
    for _ in 0..n {
        sim.step(&inputs).expect("step");
    }
    sim.cycles()
}

fn event_engine_clocks(n: u64) -> u64 {
    use castanet_rtl::cycle::attach_cycle_dut;
    use castanet_rtl::sim::Simulator;
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig::default());
    switch.install_route(1, 40, 1, 7, 70);
    let mut sim = Simulator::new();
    let clk = sim.add_clock("clk", castanet_netsim::time::SimDuration::from_ns(20));
    let _dut = attach_cycle_dut(&mut sim, "sw", Box::new(switch), clk);
    sim.run_until(SimTime::from_ns(20 * n + 1)).expect("run");
    sim.counters().process_runs
}

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_engines");
    group.sample_size(10);

    for &clocks in &[1_000u64, 10_000] {
        group.throughput(Throughput::Elements(clocks));
        group.bench_with_input(
            BenchmarkId::new("event_driven_clocks", clocks),
            &clocks,
            |b, &n| b.iter(|| event_engine_clocks(n)),
        );
        group.bench_with_input(
            BenchmarkId::new("cycle_based_clocks", clocks),
            &clocks,
            |b, &n| b.iter(|| cycle_engine_clocks(n)),
        );
    }

    // End-to-end coupled runs on the same workload.
    group.bench_function("coupled_event_driven_100cells", |b| {
        b.iter(|| {
            let scenario = switch_cosim(small_switch_config(25));
            let mut coupling = scenario.coupling;
            coupling.run(SimTime::from_secs(1)).expect("run");
        });
    });
    group.bench_function("coupled_cycle_based_100cells", |b| {
        b.iter(|| {
            let scenario = switch_cosim_cycle(small_switch_config(25));
            let mut coupling = scenario.coupling;
            coupling.run(SimTime::from_secs(1)).expect("run");
        });
    });

    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
