//! E10 — microbenchmarks of the event-driven RTL kernel's hot paths.
//!
//! E8 measures the kernel end-to-end through the coupling; this experiment
//! isolates the three structures the fast kernel is built from, so a
//! regression in any one of them is attributable directly:
//!
//! * `wheel_churn` — the hierarchical timing wheel under a mixed
//!   near/far-future schedule: push plus pop cost per event, including
//!   cascading entries down from the coarse levels;
//! * `vector_resolve` — word-wise multi-driver resolution of nibble-packed
//!   logic vectors (the per-delta cost of every multiply-driven bus);
//! * `vector_u64_roundtrip` — the `from_u64`/`to_u64` conversion pair the
//!   co-simulation entity pays for every byte lane it drives or samples;
//! * `delta_chain_settle` — a live `Simulator` running an inverter chain:
//!   every poke ripples down the chain through zero-delay delta cycles, so
//!   the row prices the full schedule → wake → resolve loop per event.

use castanet_netsim::time::SimTime;
use castanet_rtl::logic::Logic;
use castanet_rtl::signal::SignalId;
use castanet_rtl::sim::{RtlCtx, RtlProcess, Simulator};
use castanet_rtl::vector::LogicVector;
use castanet_rtl::wheel::TimingWheel;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One link of the settle chain: output follows the inverted input.
struct Inverter {
    a: SignalId,
    y: SignalId,
}

impl RtlProcess for Inverter {
    fn run(&mut self, ctx: &mut RtlCtx) {
        let v = ctx.read_bit(self.a).not();
        ctx.assign_bit(self.y, v);
    }
}

/// Builds an inverter chain of `len` stages and returns the head signal.
fn inverter_chain(sim: &mut Simulator, len: usize) -> SignalId {
    let head = sim.add_signal("s0", 1);
    let mut prev = head;
    for i in 1..=len {
        let next = sim.add_signal(format!("s{i}"), 1);
        sim.add_process(Box::new(Inverter { a: prev, y: next }), &[prev]);
        prev = next;
    }
    head
}

fn bench_e10(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_rtl_kernel");
    group.sample_size(20);

    // A fixed mixed-horizon schedule: same-time bursts, near (level-0),
    // mid and far-future stamps, so cascades are part of the price.
    const WHEEL_EVENTS: u64 = 10_000;
    let mut rng = SmallRng::seed_from_u64(0xE10);
    let offsets: Vec<u64> = (0..WHEEL_EVENTS)
        .map(|_| match rng.random_range(0u64..4) {
            0 => 0,
            1 => rng.random_range(0u64..64),
            2 => rng.random_range(0u64..1 << 18),
            _ => rng.random_range(0u64..1 << 40),
        })
        .collect();
    group.throughput(Throughput::Elements(WHEEL_EVENTS));
    group.bench_function("wheel_churn", |b| {
        b.iter(|| {
            let mut wheel = TimingWheel::new();
            let mut out: Vec<u64> = Vec::new();
            let mut it = offsets.iter();
            let mut now = 0u64;
            let mut popped = 0u64;
            loop {
                // Push in bursts of 8, then drain one time step — the
                // interleaving a live simulation produces.
                for _ in 0..8 {
                    if let Some(&off) = it.next() {
                        wheel.push(now + off, now);
                    }
                }
                out.clear();
                match wheel.pop_into(&mut out) {
                    Some(t) => {
                        now = t;
                        popped += out.len() as u64;
                    }
                    None => break,
                }
            }
            popped
        });
    });

    // 512-bit buses: two heap-stored vectors with conflicting drivers.
    const RESOLVE_BITS: usize = 512;
    let mut a = LogicVector::filled(Logic::Z, RESOLVE_BITS);
    let mut bvec = LogicVector::filled(Logic::Z, RESOLVE_BITS);
    for i in 0..RESOLVE_BITS {
        a.set_bit(i, Logic::ALL[i % 9]);
        bvec.set_bit(i, Logic::ALL[(i / 9) % 9]);
    }
    group.throughput(Throughput::Elements(RESOLVE_BITS as u64));
    group.bench_function("vector_resolve", |b| {
        b.iter(|| a.resolve(&bvec).is_fully_defined());
    });

    const ROUNDTRIPS: u64 = 1_000;
    group.throughput(Throughput::Elements(ROUNDTRIPS));
    group.bench_function("vector_u64_roundtrip", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ROUNDTRIPS {
                let v = LogicVector::from_u64(i.wrapping_mul(0x9E37_79B9), 64);
                acc ^= v.to_u64().expect("defined");
            }
            acc
        });
    });

    // 64 stages, 200 pokes: each poke triggers 64 delta cycles of
    // process wakes and zero-delay assignments before time advances.
    const CHAIN: usize = 64;
    const POKES: u64 = 200;
    group.throughput(Throughput::Elements(POKES * CHAIN as u64));
    group.bench_function("delta_chain_settle", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let head = inverter_chain(&mut sim, CHAIN);
            for k in 0..POKES {
                let level = if k % 2 == 0 { Logic::One } else { Logic::Zero };
                sim.poke_bit(head, level, SimTime::from_ns(10 * (k + 1)))
                    .expect("poke");
            }
            sim.run_until(SimTime::from_ns(10 * (POKES + 2)))
                .expect("run");
            sim.counters().delta_cycles
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);
