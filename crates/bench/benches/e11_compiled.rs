//! E11 — compiled bit-parallel backend vs the two interpreted engines on
//! an e10-class workload.
//!
//! The workload is the registered cousin of E10's `delta_chain_settle`
//! row: a 64-stage inverter-register pipeline (`q <= not d` per stage,
//! one capture per clock) driven by a toggling head input for N clocks.
//! The same netlist semantics run on all three backends:
//!
//! * `serial_cycle_based` — the cycle engine's per-clock behavioral
//!   evaluation (`CycleSim` over a hand-written chain DUT): one
//!   instance, one register-array update per clock. Emitted first so
//!   the criterion shim computes every row's `speedup_vs_serial`
//!   against it;
//! * `serial_event_driven` — the event kernel running the chain as 64
//!   `InvReg` processes: every clock edge schedules, wakes and
//!   delta-settles each stage individually;
//! * `compiled_64lane` — the compiled schedule of the same `InvReg`
//!   netlist in a 64-lane `CompiledSim`: each word-level `Not` op
//!   advances all 64 scenario instances at once.
//!
//! Throughput accounting: one element = one register update, so the
//! serial rows process `N * 64` elements per iteration and the compiled
//! row `N * 64 * 64` (64 lanes). The acceptance comparison ("compiled
//! ≥ 10× the cycle engine per instance") reads
//! `events_per_sec(compiled_64lane) / events_per_sec(serial_cycle_based)`;
//! the `speedup_vs_serial` column is the raw wall-clock ratio of one
//! 64-instance batch against one cycle-engine instance.

use castanet_netsim::time::SimTime;
use castanet_rtl::compiled::gates::InvReg;
use castanet_rtl::compiled::{CompiledSchedule, CompiledSim, LANES};
use castanet_rtl::cycle::{CycleDut, CycleSim, PortDecl};
use castanet_rtl::logic::Logic;
use castanet_rtl::signal::SignalId;
use castanet_rtl::sim::Simulator;
use castanet_rtl::vector::LogicVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Pipeline depth, matching E10's 64-stage chain.
const CHAIN: usize = 64;

/// Behavioral twin of the `InvReg` chain for the cycle engine: all
/// registers capture their pre-edge inputs simultaneously.
struct InvChainDut {
    state: Vec<bool>,
}

impl CycleDut for InvChainDut {
    fn input_ports(&self) -> Vec<PortDecl> {
        vec![PortDecl::new("d", 1)]
    }
    fn output_ports(&self) -> Vec<PortDecl> {
        vec![PortDecl::new("q", 1)]
    }
    fn reset(&mut self) {
        self.state = vec![false; CHAIN];
    }
    fn clock_edge(&mut self, inputs: &[u64]) -> Vec<u64> {
        let mut next = vec![false; CHAIN];
        next[0] = inputs[0] & 1 == 0;
        for (i, cell) in next.iter_mut().enumerate().skip(1) {
            *cell = !self.state[i - 1];
        }
        self.state = next;
        vec![u64::from(self.state[CHAIN - 1])]
    }
}

/// Builds the `InvReg` chain netlist; returns `(sim, clk, d_head)`.
fn inv_reg_chain() -> (Simulator, SignalId, SignalId) {
    let mut sim = Simulator::new();
    let clk = sim.add_signal("clk", 1);
    let head = sim.add_signal("d0", 1);
    sim.mark_external_input(clk);
    sim.mark_external_input(head);
    let mut prev = head;
    for i in 0..CHAIN {
        let q = sim.add_signal(format!("q{i}"), 1);
        sim.add_process(Box::new(InvReg::new(format!("r{i}"), clk, prev, q)), &[clk]);
        prev = q;
    }
    sim.mark_external_output(prev);
    (sim, clk, head)
}

fn bench_e11(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_compiled");
    group.sample_size(10);

    for &clocks in &[200u64, 800] {
        let updates = clocks * CHAIN as u64;
        group.throughput(Throughput::Elements(updates));
        group.bench_with_input(
            BenchmarkId::new("serial_cycle_based", clocks),
            &clocks,
            |b, &n| {
                b.iter(|| {
                    let mut sim = CycleSim::new(Box::new(InvChainDut {
                        state: vec![false; CHAIN],
                    }));
                    let mut acc = 0u64;
                    for k in 0..n {
                        acc ^= sim.step(&[k & 1]).expect("step")[0];
                    }
                    acc
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("serial_event_driven", clocks),
            &clocks,
            |b, &n| {
                b.iter(|| {
                    let (mut sim, clk, head) = inv_reg_chain();
                    sim.poke_bit(clk, Logic::Zero, SimTime::from_ns(1))
                        .expect("poke");
                    for k in 0..n {
                        let base = 20 * (k + 1);
                        let level = if k % 2 == 0 { Logic::One } else { Logic::Zero };
                        sim.poke_bit(head, level, SimTime::from_ns(base))
                            .expect("poke");
                        sim.poke_bit(clk, Logic::One, SimTime::from_ns(base + 5))
                            .expect("poke");
                        sim.poke_bit(clk, Logic::Zero, SimTime::from_ns(base + 15))
                            .expect("poke");
                    }
                    sim.run_until(SimTime::from_ns(20 * (n + 2))).expect("run");
                    sim.counters().delta_cycles
                });
            },
        );
        group.throughput(Throughput::Elements(updates * LANES as u64));
        group.bench_with_input(
            BenchmarkId::new("compiled_64lane", clocks),
            &clocks,
            |b, &n| {
                let (sim, _clk, head) = inv_reg_chain();
                let schedule = CompiledSchedule::compile(&sim).expect("chain lowers fully");
                // One steady-state pipeline, clocked across iterations —
                // the iteration body is pure evaluation, no allocation,
                // matching how a sweep amortizes its one-time compile.
                let mut csim = CompiledSim::new(schedule, LANES);
                let levels = [
                    LogicVector::from(Logic::Zero),
                    LogicVector::from(Logic::One),
                ];
                b.iter(|| {
                    for k in 0..n {
                        csim.poke_all_lanes(head, &levels[(k % 2) as usize])
                            .expect("poke");
                        csim.clock();
                    }
                    csim.cycles()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
