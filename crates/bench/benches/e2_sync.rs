//! E2 — synchronization protocols (paper §3.1, Fig. 3): the conservative
//! timing-window protocol against the Time-Warp (optimistic) and
//! fixed-quantum (lockstep) alternatives, on identical message schedules.
//!
//! The paper's argument: conservative windows avoid deadlock at low cost;
//! optimism buys potential speed-up with "very large" memory for state
//! saving. The bench measures per-message processing cost of each
//! synchronizer plus the rollback penalty as the straggler fraction grows.

use castanet::sync::conservative::ConservativeSync;
use castanet::sync::optimistic::{OptimisticSync, TimedEvent};
use castanet_netsim::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const N: u64 = 10_000;

fn conservative_run(types_n: u64) -> u64 {
    let mut sync = ConservativeSync::new();
    let types: Vec<_> = (0..types_n)
        .map(|i| sync.register_type(SimDuration::from_us(1 + i)))
        .collect();
    let mut x: u64 = 0xDEAD_BEEF;
    let mut stamps = vec![SimTime::ZERO; types_n as usize];
    let mut originator = SimTime::ZERO;
    let mut prev = SimTime::ZERO;
    for _ in 0..N {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let j = (x % types_n) as usize;
        originator += SimDuration::from_ns(x % 700);
        stamps[j] = stamps[j].max(originator);
        sync.receive(types[j], stamps[j], x.is_multiple_of(4))
            .expect("protocol");
        sync.advance_local(prev).expect("lag");
        prev = sync.originator_time();
        while sync.pop_ready(types[j]).is_some() {}
    }
    sync.stats().messages
}

fn optimistic_run(straggler_percent: u64) -> u64 {
    let mut tw = OptimisticSync::new(
        0u64,
        |s: &mut u64, e: &u64| {
            *s = s.wrapping_add(*e);
            vec![*s]
        },
        usize::MAX >> 1,
    );
    let mut y: u64 = 0x1234_5678;
    let mut t_base = 0u64;
    for i in 0..N {
        y ^= y << 13;
        y ^= y >> 7;
        y ^= y << 17;
        t_base += 500;
        let stamp = if y % 100 < straggler_percent {
            t_base.saturating_sub(2_000)
        } else {
            t_base
        };
        tw.execute(TimedEvent {
            stamp: SimTime::from_ns(stamp),
            seq: i,
            event: 1,
        })
        .expect("execute");
        if i % 64 == 0 {
            tw.set_gvt(SimTime::from_ns(t_base.saturating_sub(4_000)));
        }
    }
    tw.stats().rollbacks
}

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_sync");
    group.sample_size(20);

    for &types_n in &[1u64, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("conservative_msgs", types_n),
            &types_n,
            |b, &t| b.iter(|| conservative_run(t)),
        );
    }
    for &stragglers in &[0u64, 10, 25, 50] {
        group.bench_with_input(
            BenchmarkId::new("optimistic_straggler_pct", stragglers),
            &stragglers,
            |b, &s| b.iter(|| optimistic_run(s)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
