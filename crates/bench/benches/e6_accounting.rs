//! E6 — the accounting-unit case study (paper §4): full co-verification of
//! the RTL charging unit against its algorithm reference model, end to end
//! (traffic, coupling, tariff ticks, record read-back and comparison).

use castanet_netsim::time::SimDuration;
use coverify::scenarios::{accounting_cosim, AccountingScenarioConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run_audit(cells_per_conn: u64) -> u64 {
    let config = AccountingScenarioConfig {
        cells_per_conn,
        cell_gap: SimDuration::from_us(10),
        ..AccountingScenarioConfig::default()
    };
    let mut scenario = accounting_cosim(config);
    let horizon = scenario.horizon();
    scenario.coupling.run(horizon).expect("run");
    let reference = scenario.reference();
    let conns: Vec<_> = scenario.config.connections.iter().map(|c| c.0).collect();
    let mut total_charge = 0u64;
    for conn in conns {
        let (cells, charge) = scenario.read_rtl_record(conn).expect("registered");
        let rec = reference.record(conn).expect("registered");
        assert_eq!(cells, rec.cells);
        assert_eq!(charge, rec.charge);
        total_charge += charge;
    }
    total_charge
}

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_accounting");
    group.sample_size(10);
    for &cells in &[20u64, 60] {
        group.bench_with_input(
            BenchmarkId::new("audit_cells_per_conn", cells),
            &cells,
            |b, &n| {
                b.iter(|| run_audit(n));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
