//! E5 — hardware test cycles (paper §3.3): cost of the SW-stimulus →
//! HW-run → SW-readback cycle as a function of its duration. The modelled
//! efficiency (hardware time over total) is printed by `repro e5`; this
//! bench measures the host-side execution cost per board clock at each
//! cycle length, showing the amortization of per-cycle overhead.

use castanet::coupling::CoupledSimulator;
use castanet::message::{Message, MessageTypeId};
use castanet_atm::addr::VpiVci;
use castanet_atm::cell::AtmCell;
use castanet_netsim::time::SimTime;
use coverify::scenarios::switch_on_board;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn run_session(cycle_len: u64) -> u64 {
    let mut cosim = switch_on_board(cycle_len, MessageTypeId(1));
    for k in 0..4u64 {
        let cell = AtmCell::user_data(VpiVci::uni(1, 40).expect("id"), [k as u8; 48]);
        cosim
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell))
            .expect("deliver");
    }
    let mut got = 0u64;
    while got < 4 {
        let r = cosim.advance_until(SimTime::from_ms(5)).expect("advance");
        if r.is_empty() {
            break;
        }
        got += r.len() as u64;
    }
    cosim.clocks_done()
}

fn bench_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_board");
    group.sample_size(20);
    for &len in &[16u64, 128, 1024] {
        group.throughput(Throughput::Elements(len));
        group.bench_with_input(BenchmarkId::new("test_cycle_len", len), &len, |b, &l| {
            b.iter(|| run_session(l));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
