//! E8 — serial vs parallel coupled execution on the e1 throughput
//! scenario.
//!
//! Four set-ups, identical workload (the all-CBR 4-port-switch traffic of
//! E1):
//!
//! * `serial_event_driven` — the serial `Coupling::run` of E1's headline
//!   row: one thread, one rendezvous per network event, event-driven RTL
//!   follower;
//! * `serial_cycle_based` — the serial coupling over the cycle engine with
//!   idle skipping (E1's fastest serial row);
//! * `parallel_cycle_based` — the `ParallelCoupling` executor: netsim
//!   kernel and cycle simulator on separate threads, batched timing
//!   windows over bounded channels;
//! * `parallel_event_driven` — the same executor over the event-driven RTL
//!   follower, isolating the thread-overlap + batching gain from the
//!   engine change.
//!
//! The acceptance comparison ("parallel executor ≥ 1.3× faster than serial
//! `Coupling::run` on the e1 throughput scenario") reads
//! `parallel_cycle_based` against `serial_event_driven` — the two ends of
//! the pipeline the tentpole builds. The like-for-like pairs
//! (`serial_cycle_based` vs `parallel_cycle_based`, `serial_event_driven`
//! vs `parallel_event_driven`) measure what the concurrency itself buys at
//! each abstraction level.

use castanet_bench::small_switch_config;
use castanet_netsim::time::{SimDuration, SimTime};
use coverify::scenarios::{switch_cosim, switch_cosim_cycle, switch_cosim_parallel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_e8(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_parallel");
    group.sample_size(10);

    for &cells_per_source in &[25u64, 100] {
        let total = cells_per_source * 4;
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(
            BenchmarkId::new("serial_event_driven", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let scenario = switch_cosim(small_switch_config(n));
                    let mut coupling = scenario.coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("serial_cycle_based", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let scenario = switch_cosim_cycle(small_switch_config(n));
                    let mut coupling = scenario.coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_cycle_based", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let scenario = switch_cosim_parallel(small_switch_config(n));
                    let mut coupling = scenario.coupling;
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_event_driven", total),
            &cells_per_source,
            |b, &n| {
                b.iter(|| {
                    let scenario = switch_cosim(small_switch_config(n));
                    // Short windows matched to the ~2 µs busy burst per
                    // cell keep the response pipeline fine-grained; the
                    // deep channel gives the leader run-ahead to hide the
                    // per-window rendezvous.
                    let mut coupling = scenario
                        .coupling
                        .into_parallel()
                        .with_batching(SimDuration::from_us(5), 16);
                    coupling.run(SimTime::from_secs(1)).expect("run");
                    coupling.stats().responses
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
