//! Shared helpers for the experiment benches.
//!
//! Each Criterion bench target regenerates one experiment of the paper; the
//! per-experiment index lives in `DESIGN.md` §6 and the measured reference
//! run in `EXPERIMENTS.md`. The benches intentionally keep workloads small
//! enough for Criterion's repeated sampling — the `repro` binary runs the
//! paper-sized workloads once instead.

use castanet_netsim::time::SimDuration;
use coverify::scenarios::SwitchScenarioConfig;

/// The small E1-shaped workload every sampled bench uses.
#[must_use]
pub fn small_switch_config(cells_per_source: u64) -> SwitchScenarioConfig {
    SwitchScenarioConfig {
        cells_per_source,
        clock_period: SimDuration::from_ns(20),
        cell_gap: SimDuration::from_us(10),
        mixed_traffic: false,
        seed: 1998,
        ..SwitchScenarioConfig::default()
    }
}
