//! # castanet-atm — the ATM model suite
//!
//! A from-scratch substitute for the OPNET ATM model suite the DATE'98
//! CASTANET paper builds on: cells and their wire format ([`cell`]), header
//! error control with single-bit correction ([`hec`]), addressing
//! ([`addr`]), idle-cell rate decoupling ([`idle`]), the traffic-model
//! library ([`traffic`]), GCRA/leaky-bucket policing ([`gcra`]), an N-port
//! switch reference model with a global control unit ([`switch`]), the
//! accounting-unit charging algorithm of the paper's case study
//! ([`accounting`]), AAL5 segmentation/reassembly ([`aal5`]), OAM F5
//! loopback flows ([`oam`]), congestion discard policies ([`discard`]) and
//! VP cross-connects ([`vpx`]); noisy lines with receive-side header
//! error control live in [`line`], and a miniature signaling stack with
//! call admission control in [`signaling`].
//!
//! Everything here is an *algorithm reference model* at the network
//! simulator's level of abstraction; the clock-level twins live in
//! `castanet-rtl` and the CASTANET coupling verifies one against the other.
//!
//! ## Quick start
//!
//! ```
//! use castanet_atm::addr::VpiVci;
//! use castanet_atm::cell::AtmCell;
//! use castanet_atm::addr::HeaderFormat;
//!
//! let conn = VpiVci::uni(1, 42)?;
//! let cell = AtmCell::user_data(conn, [0x5A; 48]);
//! let wire = cell.encode(HeaderFormat::Uni)?;      // 53 octets with HEC
//! assert_eq!(AtmCell::decode(&wire, HeaderFormat::Uni)?, cell);
//! # Ok::<(), castanet_atm::error::AtmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aal5;
pub mod accounting;
pub mod addr;
pub mod cell;
pub mod discard;
pub mod error;
pub mod gcra;
pub mod hec;
pub mod idle;
pub mod line;
pub mod oam;
pub mod signaling;
pub mod switch;
pub mod traffic;
pub mod vpx;

pub use addr::{HeaderFormat, Vci, Vpi, VpiVci};
pub use cell::{AtmCell, CellHeader, PayloadType, CELL_BITS, CELL_OCTETS, PAYLOAD_OCTETS};
pub use error::AtmError;
pub use gcra::{Conformance, Gcra};
pub use traffic::TrafficModel;
