//! Congestion discard policies: CLP-selective drop and AAL5 frame discard
//! (EPD/PPD).
//!
//! The paper places CASTANET's applications "especially in the ATM traffic
//! management sector" — precisely the switch buffer-acceptance logic
//! implemented here:
//!
//! * **selective CLP discard** — above a threshold, cells tagged
//!   low-priority (`CLP = 1`) are dropped first;
//! * **early packet discard (EPD)** — when occupancy crosses the EPD
//!   threshold, *new* AAL5 frames are refused entirely (every cell through
//!   the end-of-frame marker is dropped), so the buffer carries only whole
//!   frames;
//! * **partial packet discard (PPD)** — once a cell of a frame is lost to
//!   overflow, the remainder of that frame is dropped too (it can no
//!   longer reassemble), but the end-of-frame cell is kept as a delimiter
//!   so the receiver resynchronizes.

use crate::addr::VpiVci;
use crate::cell::AtmCell;
use std::collections::{HashMap, VecDeque};

/// Buffer-acceptance policy of a [`DiscardQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardPolicy {
    /// Plain drop-tail.
    DropTail,
    /// Drop CLP=1 cells above `clp_threshold`, everything above capacity.
    ClpSelective {
        /// Occupancy at which low-priority cells start being refused.
        clp_threshold: usize,
    },
    /// AAL5-aware early + partial packet discard.
    FrameAware {
        /// Occupancy at which *new* frames are refused (EPD).
        epd_threshold: usize,
    },
}

/// Per-connection frame-discard state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum FrameState {
    /// Accepting cells normally.
    #[default]
    Accepting,
    /// Discarding until (and including) the current frame's end (EPD).
    DiscardingFrame,
    /// Discarding the remainder of a partially lost frame; the
    /// end-of-frame cell is kept as a delimiter (PPD).
    DiscardingTail,
}

#[derive(Debug, Clone, Copy, Default)]
struct VcTrack {
    state: FrameState,
    /// `true` while cells of the current frame have already passed (so the
    /// next cell is a continuation, not a frame start).
    mid_frame: bool,
}

/// What happened to an offered cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The cell was queued.
    Accepted,
    /// Dropped by the policy; the reason names the mechanism.
    Dropped(DropReason),
}

/// Why a cell was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The buffer was completely full.
    Overflow,
    /// CLP-selective discard above the threshold.
    ClpSelective,
    /// Early packet discard: part of a refused frame.
    Epd,
    /// Partial packet discard: tail of a damaged frame.
    Ppd,
}

/// Per-policy drop counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscardCounters {
    /// Cells accepted.
    pub accepted: u64,
    /// Cells dropped for full buffer.
    pub overflow: u64,
    /// Cells dropped by CLP-selective discard.
    pub clp: u64,
    /// Cells dropped by EPD.
    pub epd: u64,
    /// Cells dropped by PPD.
    pub ppd: u64,
}

impl DiscardCounters {
    /// Total drops across mechanisms.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.overflow + self.clp + self.epd + self.ppd
    }
}

/// A bounded cell buffer with a configurable acceptance policy.
///
/// # Examples
///
/// ```
/// use castanet_atm::discard::{DiscardPolicy, DiscardQueue, Verdict};
/// use castanet_atm::addr::VpiVci;
/// use castanet_atm::cell::AtmCell;
///
/// let mut q = DiscardQueue::new(4, DiscardPolicy::ClpSelective { clp_threshold: 2 });
/// let conn = VpiVci::uni(1, 42)?;
/// let mut low = AtmCell::user_data(conn, [0; 48]);
/// low.header.clp = true;
/// assert_eq!(q.offer(low.clone()), Verdict::Accepted);
/// assert_eq!(q.offer(low.clone()), Verdict::Accepted);
/// // Threshold reached: further CLP=1 cells are refused.
/// assert!(matches!(q.offer(low), Verdict::Dropped(_)));
/// # Ok::<(), castanet_atm::error::AtmError>(())
/// ```
#[derive(Debug)]
pub struct DiscardQueue {
    queue: VecDeque<AtmCell>,
    capacity: usize,
    policy: DiscardPolicy,
    tracks: HashMap<VpiVci, VcTrack>,
    counters: DiscardCounters,
}

impl DiscardQueue {
    /// Creates a queue of `capacity` cells under `policy`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero, or a policy threshold exceeds it.
    #[must_use]
    pub fn new(capacity: usize, policy: DiscardPolicy) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        match policy {
            DiscardPolicy::ClpSelective { clp_threshold } => {
                assert!(clp_threshold <= capacity, "clp threshold exceeds capacity");
            }
            DiscardPolicy::FrameAware { epd_threshold } => {
                assert!(epd_threshold <= capacity, "epd threshold exceeds capacity");
            }
            DiscardPolicy::DropTail => {}
        }
        DiscardQueue {
            queue: VecDeque::new(),
            capacity,
            policy,
            tracks: HashMap::new(),
            counters: DiscardCounters::default(),
        }
    }

    /// Offers one cell to the buffer.
    pub fn offer(&mut self, cell: AtmCell) -> Verdict {
        let verdict = self.decide(&cell);
        match verdict {
            None => {
                self.queue.push_back(cell);
                self.counters.accepted += 1;
                Verdict::Accepted
            }
            Some(reason) => {
                match reason {
                    DropReason::Overflow => self.counters.overflow += 1,
                    DropReason::ClpSelective => self.counters.clp += 1,
                    DropReason::Epd => self.counters.epd += 1,
                    DropReason::Ppd => self.counters.ppd += 1,
                }
                Verdict::Dropped(reason)
            }
        }
    }

    fn decide(&mut self, cell: &AtmCell) -> Option<DropReason> {
        let depth = self.queue.len();
        let capacity = self.capacity;
        match self.policy {
            DiscardPolicy::DropTail => (depth >= capacity).then_some(DropReason::Overflow),
            DiscardPolicy::ClpSelective { clp_threshold } => {
                if depth >= capacity {
                    Some(DropReason::Overflow)
                } else if cell.header.clp && depth >= clp_threshold {
                    Some(DropReason::ClpSelective)
                } else {
                    None
                }
            }
            DiscardPolicy::FrameAware { epd_threshold } => {
                let ends = cell.header.pt.sdu_type1();
                let track = self.tracks.entry(cell.id()).or_default();
                match track.state {
                    FrameState::DiscardingFrame => {
                        if ends {
                            track.state = FrameState::Accepting;
                            track.mid_frame = false;
                        }
                        Some(DropReason::Epd)
                    }
                    FrameState::DiscardingTail => {
                        if ends {
                            track.state = FrameState::Accepting;
                            track.mid_frame = false;
                            // Keep the delimiter if a slot exists.
                            (depth >= capacity).then_some(DropReason::Overflow)
                        } else {
                            Some(DropReason::Ppd)
                        }
                    }
                    FrameState::Accepting => {
                        let starts_frame = !track.mid_frame;
                        if starts_frame && depth >= epd_threshold {
                            if !ends {
                                track.state = FrameState::DiscardingFrame;
                                track.mid_frame = true;
                            }
                            Some(DropReason::Epd)
                        } else if depth >= capacity {
                            if ends {
                                track.mid_frame = false;
                            } else {
                                track.state = FrameState::DiscardingTail;
                                track.mid_frame = true;
                            }
                            Some(DropReason::Overflow)
                        } else {
                            track.mid_frame = !ends;
                            None
                        }
                    }
                }
            }
        }
    }

    /// Removes the oldest queued cell.
    pub fn pop(&mut self) -> Option<AtmCell> {
        self.queue.pop_front()
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop/accept accounting.
    #[must_use]
    pub fn counters(&self) -> DiscardCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aal5;

    fn conn(vci: u16) -> VpiVci {
        VpiVci::uni(1, vci).unwrap()
    }

    fn frame_cells(vci: u16, len: usize) -> Vec<AtmCell> {
        aal5::segment(conn(vci), &vec![0xAB; len]).unwrap()
    }

    #[test]
    fn drop_tail_behaves_like_finite_queue() {
        let mut q = DiscardQueue::new(2, DiscardPolicy::DropTail);
        let c = AtmCell::user_data(conn(40), [0; 48]);
        assert_eq!(q.offer(c.clone()), Verdict::Accepted);
        assert_eq!(q.offer(c.clone()), Verdict::Accepted);
        assert_eq!(q.offer(c), Verdict::Dropped(DropReason::Overflow));
        assert_eq!(q.counters().overflow, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clp_selective_protects_high_priority() {
        let mut q = DiscardQueue::new(4, DiscardPolicy::ClpSelective { clp_threshold: 2 });
        let mut low = AtmCell::user_data(conn(40), [0; 48]);
        low.header.clp = true;
        let high = AtmCell::user_data(conn(40), [0; 48]);
        q.offer(high.clone());
        q.offer(high.clone());
        // Above threshold: low dropped, high still accepted.
        assert_eq!(
            q.offer(low.clone()),
            Verdict::Dropped(DropReason::ClpSelective)
        );
        assert_eq!(q.offer(high.clone()), Verdict::Accepted);
        assert_eq!(q.offer(high.clone()), Verdict::Accepted);
        // Full: even high is refused.
        assert_eq!(q.offer(high), Verdict::Dropped(DropReason::Overflow));
        assert_eq!(q.counters().clp, 1);
        assert_eq!(q.counters().dropped(), 2);
    }

    #[test]
    fn epd_refuses_whole_new_frames() {
        let mut q = DiscardQueue::new(100, DiscardPolicy::FrameAware { epd_threshold: 2 });
        // One whole frame is accepted (3 cells; occupancy passes the
        // threshold only mid-frame, which never splits a frame).
        let first = frame_cells(40, 100);
        for c in &first {
            assert_eq!(q.offer(c.clone()), Verdict::Accepted);
        }
        assert_eq!(q.len(), 3);
        // The next frame starts above the threshold: all its cells drop.
        let second = frame_cells(40, 100);
        for c in &second {
            assert_eq!(q.offer(c.clone()), Verdict::Dropped(DropReason::Epd));
        }
        assert_eq!(q.counters().epd as usize, second.len());
        // The queue holds only whole frames: the survivor reassembles.
        let mut drained = Vec::new();
        while let Some(c) = q.pop() {
            drained.push(c);
        }
        assert_eq!(aal5::reassemble(&drained).unwrap(), vec![0xAB; 100]);
    }

    #[test]
    fn epd_state_clears_at_the_frame_boundary() {
        let mut q = DiscardQueue::new(100, DiscardPolicy::FrameAware { epd_threshold: 2 });
        for c in frame_cells(40, 100) {
            q.offer(c);
        }
        for c in frame_cells(40, 100) {
            q.offer(c); // EPD-dropped through its end-of-frame cell
        }
        // Drain below the threshold: the next frame is accepted again.
        while q.pop().is_some() {}
        for c in frame_cells(40, 100) {
            assert_eq!(q.offer(c), Verdict::Accepted);
        }
    }

    #[test]
    fn ppd_drops_the_tail_and_keeps_the_delimiter() {
        // Capacity hits mid-frame: the overflowing cell drops as overflow,
        // the remainder as PPD; after one slot frees, the end-of-frame
        // delimiter is accepted.
        let mut q = DiscardQueue::new(4, DiscardPolicy::FrameAware { epd_threshold: 4 });
        let frame = frame_cells(40, 300); // 7 cells
        assert_eq!(frame.len(), 7);
        let mut verdicts = Vec::new();
        for c in &frame[..6] {
            verdicts.push(q.offer(c.clone()));
        }
        assert_eq!(&verdicts[..4], &[Verdict::Accepted; 4]);
        assert_eq!(verdicts[4], Verdict::Dropped(DropReason::Overflow));
        assert_eq!(verdicts[5], Verdict::Dropped(DropReason::Ppd));
        // Service one cell, then the delimiter arrives.
        q.pop();
        assert_eq!(
            q.offer(frame[6].clone()),
            Verdict::Accepted,
            "delimiter kept"
        );
        assert_eq!(q.counters().ppd, 1);
    }

    #[test]
    fn single_cell_frames_epd_without_sticking() {
        // A 1-cell frame (<= 40 bytes) dropped by EPD must not leave the
        // connection in a discarding state.
        let mut q = DiscardQueue::new(10, DiscardPolicy::FrameAware { epd_threshold: 1 });
        let small = frame_cells(40, 10);
        assert_eq!(small.len(), 1);
        // Occupy one slot so EPD triggers.
        q.offer(frame_cells(40, 10)[0].clone());
        assert_eq!(q.offer(small[0].clone()), Verdict::Dropped(DropReason::Epd));
        // Drain; the connection accepts again immediately.
        while q.pop().is_some() {}
        assert_eq!(q.offer(small[0].clone()), Verdict::Accepted);
    }

    #[test]
    fn connections_track_frames_independently() {
        let mut q = DiscardQueue::new(100, DiscardPolicy::FrameAware { epd_threshold: 2 });
        // Interleave two connections' frames cell by cell: conn 40's frame
        // starts below the threshold, conn 41's starts above it.
        let f40 = frame_cells(40, 100);
        let f41 = frame_cells(41, 100);
        assert_eq!(q.offer(f40[0].clone()), Verdict::Accepted);
        assert_eq!(q.offer(f40[1].clone()), Verdict::Accepted);
        // 41 starts now, at depth 2 >= threshold: EPD.
        assert_eq!(q.offer(f41[0].clone()), Verdict::Dropped(DropReason::Epd));
        // 40 continues unaffected (mid-frame cells are never EPD'd).
        assert_eq!(q.offer(f40[2].clone()), Verdict::Accepted);
        // 41's remaining cells drop through its end-of-frame.
        assert_eq!(q.offer(f41[1].clone()), Verdict::Dropped(DropReason::Epd));
        assert_eq!(q.offer(f41[2].clone()), Verdict::Dropped(DropReason::Epd));
        // Drain; both connections accept fresh frames.
        while q.pop().is_some() {}
        for c in frame_cells(41, 100) {
            assert_eq!(q.offer(c), Verdict::Accepted);
        }
        // Only whole frames were ever queued.
        let mut drained = Vec::new();
        while let Some(c) = q.pop() {
            drained.push(c);
        }
        assert!(aal5::reassemble(&drained).is_ok());
    }

    #[test]
    fn goodput_epd_vs_droptail_under_overload() {
        // The classic EPD result: under overload, frame-aware discard
        // yields more *complete frames* than blind drop-tail for the same
        // buffer.
        let run = |policy: DiscardPolicy| -> usize {
            let mut q = DiscardQueue::new(12, policy);
            let mut complete = 0usize;
            let mut assembler = crate::aal5::Reassembler::new();
            for burst in 0..30 {
                // Offer a 4-cell frame, then service 2 cells: sustained
                // overload.
                for c in frame_cells(40, 150) {
                    q.offer(c);
                }
                let _ = burst;
                for _ in 0..2 {
                    if let Some(c) = q.pop() {
                        if let Ok(Some(_)) = assembler.push(c) {
                            complete += 1;
                        }
                    }
                }
            }
            // Drain the rest.
            while let Some(c) = q.pop() {
                if let Ok(Some(_)) = assembler.push(c) {
                    complete += 1;
                }
            }
            complete
        };
        let droptail = run(DiscardPolicy::DropTail);
        let epd = run(DiscardPolicy::FrameAware { epd_threshold: 8 });
        assert!(
            epd > droptail,
            "EPD goodput {epd} must beat drop-tail {droptail}"
        );
    }

    #[test]
    #[should_panic(expected = "epd threshold exceeds capacity")]
    fn invalid_threshold_panics() {
        let _ = DiscardQueue::new(4, DiscardPolicy::FrameAware { epd_threshold: 5 });
    }
}
