//! MPEG video trace traffic.
//!
//! The paper stimulates hardware with "simulated real-world traces, for
//! example MPEG traces" (§2). The original traces are proprietary test-bed
//! material, so this module substitutes a **synthetic MPEG source**: frames
//! are emitted at the video frame rate, the frame-size sequence follows the
//! deterministic I-B-B-P group-of-pictures structure of MPEG-1/2 with
//! per-type mean sizes and bounded random variation. The burst shape seen
//! by the ATM layer — a large I-frame burst followed by smaller B/P bursts
//! every 40 ms — is what the hardware under test reacts to, and that shape
//! is preserved. Recorded traces can also be replayed directly through
//! [`MpegTrace::from_frame_sizes`].

use super::TrafficModel;
use castanet_netsim::random::uniform_u64;
use castanet_netsim::time::SimDuration;
use rand::rngs::SmallRng;

/// Frame types of an MPEG group of pictures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra-coded frame (largest).
    I,
    /// Predicted frame.
    P,
    /// Bidirectionally predicted frame (smallest).
    B,
}

/// A group-of-pictures pattern with mean frame sizes in **cells**.
#[derive(Debug, Clone)]
pub struct GopPattern {
    /// Frame-type sequence of one GoP, e.g. `IBBPBBPBBPBB`.
    pub sequence: Vec<FrameType>,
    /// Mean size of an I frame, in cells.
    pub i_cells: u64,
    /// Mean size of a P frame, in cells.
    pub p_cells: u64,
    /// Mean size of a B frame, in cells.
    pub b_cells: u64,
    /// Half-width of the uniform size jitter, as a fraction of the mean
    /// (0.0 = deterministic sizes).
    pub jitter: f64,
}

impl GopPattern {
    /// The common 12-frame `IBBPBBPBBPBB` pattern with sizes typical of a
    /// 4 Mbit/s MPEG-2 stream segmented into ATM cells
    /// (I ≈ 50 KB ≈ 1050 cells, P ≈ 15 KB, B ≈ 6 KB).
    #[must_use]
    pub fn mpeg2_4mbps() -> Self {
        use FrameType::{B, I, P};
        GopPattern {
            sequence: vec![I, B, B, P, B, B, P, B, B, P, B, B],
            i_cells: 1050,
            p_cells: 320,
            b_cells: 130,
            jitter: 0.2,
        }
    }

    /// Mean size in cells for a frame type.
    #[must_use]
    pub fn mean_cells(&self, ty: FrameType) -> u64 {
        match ty {
            FrameType::I => self.i_cells,
            FrameType::P => self.p_cells,
            FrameType::B => self.b_cells,
        }
    }

    /// Draws one frame size with the configured jitter.
    fn sample_cells(&self, ty: FrameType, rng: &mut SmallRng) -> u64 {
        let mean = self.mean_cells(ty);
        if self.jitter <= 0.0 {
            return mean.max(1);
        }
        let half = ((mean as f64) * self.jitter) as u64;
        if half == 0 {
            return mean.max(1);
        }
        uniform_u64(rng, mean.saturating_sub(half), mean + half).max(1)
    }
}

enum SizeSource {
    Synthetic {
        pattern: GopPattern,
        gop_count: usize,
    },
    Recorded(std::vec::IntoIter<u64>),
}

impl std::fmt::Debug for SizeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizeSource::Synthetic { pattern, gop_count } => f
                .debug_struct("Synthetic")
                .field("gop_len", &pattern.sequence.len())
                .field("gop_count", gop_count)
                .finish(),
            SizeSource::Recorded(it) => f
                .debug_struct("Recorded")
                .field("frames_left", &it.len())
                .finish(),
        }
    }
}

/// An MPEG video source emitting frame-sized cell bursts at the frame rate.
///
/// Cells within one frame go out back-to-back (one cell slot apart); the
/// remainder of the frame interval is silent. Finite: a synthetic source
/// ends after `gop_count` groups of pictures, a recorded one at trace end.
///
/// # Examples
///
/// ```
/// use castanet_atm::traffic::{GopPattern, MpegTrace, TrafficModel};
/// use castanet_netsim::time::SimDuration;
/// use castanet_netsim::random::stream_rng;
///
/// let mut src = MpegTrace::synthetic(
///     GopPattern::mpeg2_4mbps(),
///     2,                              // two GoPs
///     SimDuration::from_ms(40),       // 25 frames/s
///     SimDuration::from_ns(2726),     // 155 Mbit/s cell slot
/// );
/// let mut rng = stream_rng(0, 0);
/// assert!(src.next_gap(&mut rng).is_some());
/// ```
#[derive(Debug)]
pub struct MpegTrace {
    source: SizeSource,
    frame_interval: SimDuration,
    slot: SimDuration,
    frame_index: u64,
    cells_left_in_frame: u64,
    cells_in_current_frame: u64,
    finished: bool,
}

impl MpegTrace {
    /// A synthetic GoP-structured source.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty, `gop_count` is zero, or the timing
    /// parameters are zero.
    #[must_use]
    pub fn synthetic(
        pattern: GopPattern,
        gop_count: usize,
        frame_interval: SimDuration,
        slot: SimDuration,
    ) -> Self {
        assert!(
            !pattern.sequence.is_empty(),
            "gop pattern must not be empty"
        );
        assert!(gop_count > 0, "need at least one gop");
        assert!(
            !frame_interval.is_zero() && !slot.is_zero(),
            "timing must be non-zero"
        );
        MpegTrace {
            source: SizeSource::Synthetic { pattern, gop_count },
            frame_interval,
            slot,
            frame_index: 0,
            cells_left_in_frame: 0,
            cells_in_current_frame: 0,
            finished: false,
        }
    }

    /// Replays a recorded per-frame cell-size trace.
    ///
    /// # Panics
    ///
    /// Panics if timing parameters are zero.
    #[must_use]
    pub fn from_frame_sizes(
        sizes: Vec<u64>,
        frame_interval: SimDuration,
        slot: SimDuration,
    ) -> Self {
        assert!(
            !frame_interval.is_zero() && !slot.is_zero(),
            "timing must be non-zero"
        );
        MpegTrace {
            source: SizeSource::Recorded(sizes.into_iter()),
            frame_interval,
            slot,
            frame_index: 0,
            cells_left_in_frame: 0,
            cells_in_current_frame: 0,
            finished: false,
        }
    }

    fn next_frame_size(&mut self, rng: &mut SmallRng) -> Option<u64> {
        match &mut self.source {
            SizeSource::Synthetic { pattern, gop_count } => {
                let gop_len = pattern.sequence.len() as u64;
                if self.frame_index >= gop_len * (*gop_count as u64) {
                    return None;
                }
                let ty = pattern.sequence[(self.frame_index % gop_len) as usize];
                Some(pattern.sample_cells(ty, rng))
            }
            SizeSource::Recorded(it) => it.next(),
        }
    }
}

impl TrafficModel for MpegTrace {
    fn next_gap(&mut self, rng: &mut SmallRng) -> Option<SimDuration> {
        if self.finished {
            return None;
        }
        if self.cells_left_in_frame > 0 {
            self.cells_left_in_frame -= 1;
            return Some(self.slot);
        }
        // Advance over (possibly several) frames to the next non-empty one,
        // accumulating the silent frame intervals into one gap.
        let mut gap = SimDuration::ZERO;
        loop {
            let Some(size) = self.next_frame_size(rng) else {
                self.finished = true;
                return None;
            };
            self.frame_index += 1;
            // The burst of frame k starts at k * frame_interval. The gap to
            // its first cell is measured from the last cell of the previous
            // non-empty frame, which sits (cells-1) slots into its interval.
            gap += if self.frame_index == 1 {
                SimDuration::ZERO
            } else {
                self.frame_interval
                    .saturating_sub(self.slot * self.cells_in_current_frame.saturating_sub(1))
            };
            // From here on the previous frame contributes no more slots.
            self.cells_in_current_frame = 1;
            if size == 0 {
                continue;
            }
            self.cells_in_current_frame = size;
            self.cells_left_in_frame = size - 1;
            return Some(gap);
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        match &self.source {
            SizeSource::Synthetic { pattern, .. } => {
                let total: u64 = pattern
                    .sequence
                    .iter()
                    .map(|&t| pattern.mean_cells(t))
                    .sum();
                let gop_secs = self.frame_interval.as_secs_f64() * pattern.sequence.len() as f64;
                Some(total as f64 / gop_secs)
            }
            SizeSource::Recorded(_) => None,
        }
    }

    fn describe(&self) -> String {
        match &self.source {
            SizeSource::Synthetic { pattern, gop_count } => format!(
                "synthetic MPEG ({} frames/GoP x {gop_count}, frame every {})",
                pattern.sequence.len(),
                self.frame_interval
            ),
            SizeSource::Recorded(it) => {
                format!("recorded MPEG trace ({} frames left)", it.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::emission_times;
    use castanet_netsim::random::stream_rng;

    #[test]
    fn deterministic_trace_timing() {
        // Two frames of 3 and 2 cells, 40 ms apart, 1 us slots.
        let mut m = MpegTrace::from_frame_sizes(
            vec![3, 2],
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        let mut rng = stream_rng(0, 0);
        let times = emission_times(&mut m, &mut rng, 10);
        assert_eq!(times.len(), 5);
        use castanet_netsim::time::SimTime;
        assert_eq!(times[0], SimTime::ZERO); // frame 0 starts immediately
        assert_eq!(times[1], SimTime::from_us(1));
        assert_eq!(times[2], SimTime::from_us(2));
        assert_eq!(times[3], SimTime::from_ms(40)); // frame 1 at 40 ms
        assert_eq!(times[4], SimTime::from_ms(40) + SimDuration::from_us(1));
    }

    #[test]
    fn synthetic_gop_emits_expected_cell_count() {
        let pattern = GopPattern {
            sequence: vec![FrameType::I, FrameType::B],
            i_cells: 10,
            p_cells: 5,
            b_cells: 2,
            jitter: 0.0,
        };
        let mut m = MpegTrace::synthetic(
            pattern,
            3,
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        let mut rng = stream_rng(0, 0);
        let times = emission_times(&mut m, &mut rng, 1000);
        assert_eq!(times.len(), 3 * (10 + 2));
    }

    #[test]
    fn i_frames_are_larger_bursts_than_b_frames() {
        let mut m = MpegTrace::synthetic(
            GopPattern::mpeg2_4mbps(),
            1,
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        let mut rng = stream_rng(42, 0);
        let times = emission_times(&mut m, &mut rng, 100_000);
        // Count cells in the first frame (burst at t < 40 ms): ~1050 ± 20 %.
        let first_burst = times
            .iter()
            .filter(|t| **t < castanet_netsim::time::SimTime::from_ms(40))
            .count();
        assert!(
            (840..=1260).contains(&first_burst),
            "I-frame burst of {first_burst} cells outside expected range"
        );
    }

    #[test]
    fn mean_rate_of_synthetic_pattern() {
        let m = MpegTrace::synthetic(
            GopPattern::mpeg2_4mbps(),
            1,
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        // Total mean cells per GoP: 1050 + 3*320 + 8*130 = 3050 over 480 ms.
        let expected = 3050.0 / 0.48;
        assert!((m.mean_rate().unwrap() - expected).abs() < 1.0);
    }

    #[test]
    fn zero_size_frames_are_skipped() {
        let mut m = MpegTrace::from_frame_sizes(
            vec![0, 0, 2],
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        let mut rng = stream_rng(0, 0);
        let times = emission_times(&mut m, &mut rng, 10);
        assert_eq!(times.len(), 2);
        // First cell belongs to frame 2, so it starts at 80 ms.
        assert_eq!(times[0], castanet_netsim::time::SimTime::from_ms(80));
    }

    #[test]
    fn exhausted_source_stays_exhausted() {
        let mut m =
            MpegTrace::from_frame_sizes(vec![1], SimDuration::from_ms(40), SimDuration::from_us(1));
        let mut rng = stream_rng(0, 0);
        assert!(m.next_gap(&mut rng).is_some());
        assert!(m.next_gap(&mut rng).is_none());
        assert!(m.next_gap(&mut rng).is_none());
    }

    #[test]
    fn describe_variants() {
        let s = MpegTrace::synthetic(
            GopPattern::mpeg2_4mbps(),
            2,
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        assert!(s.describe().contains("synthetic MPEG"));
        let r = MpegTrace::from_frame_sizes(
            vec![1, 2],
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        assert!(r.describe().contains("recorded"));
    }
}
