//! Constant bit rate traffic.

use super::TrafficModel;
use castanet_netsim::time::SimDuration;
use rand::rngs::SmallRng;

/// A constant-bit-rate source: one cell every `interval`, deterministically.
/// The service class of circuit emulation and uncompressed voice/video.
///
/// # Examples
///
/// ```
/// use castanet_atm::traffic::{Cbr, TrafficModel};
/// use castanet_netsim::time::SimDuration;
/// use castanet_netsim::random::stream_rng;
///
/// let mut cbr = Cbr::from_rate(100_000); // 100 000 cells/s
/// let mut rng = stream_rng(0, 0);
/// assert_eq!(cbr.next_gap(&mut rng), Some(SimDuration::from_us(10)));
/// ```
#[derive(Debug, Clone)]
pub struct Cbr {
    interval: SimDuration,
}

impl Cbr {
    /// One cell per `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "cbr interval must be non-zero");
        Cbr { interval }
    }

    /// One cell every `1/rate` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `cells_per_sec` is zero.
    #[must_use]
    pub fn from_rate(cells_per_sec: u64) -> Self {
        assert!(cells_per_sec > 0, "cbr rate must be non-zero");
        Cbr::new(SimDuration::from_picos(1_000_000_000_000 / cells_per_sec))
    }

    /// The configured inter-cell interval.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }
}

impl TrafficModel for Cbr {
    fn next_gap(&mut self, _rng: &mut SmallRng) -> Option<SimDuration> {
        Some(self.interval)
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(1.0 / self.interval.as_secs_f64())
    }

    fn describe(&self) -> String {
        format!("CBR every {}", self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::test_util::measured_rate;

    #[test]
    fn gaps_are_constant() {
        let mut m = Cbr::new(SimDuration::from_us(7));
        let mut rng = castanet_netsim::random::stream_rng(1, 0);
        for _ in 0..10 {
            assert_eq!(m.next_gap(&mut rng), Some(SimDuration::from_us(7)));
        }
    }

    #[test]
    fn measured_rate_matches_config() {
        let mut m = Cbr::from_rate(50_000);
        let r = measured_rate(&mut m, 1000, 3);
        assert!((r - 50_000.0).abs() / 50_000.0 < 1e-6);
        assert!((m.mean_rate().unwrap() - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn describe_mentions_interval() {
        let m = Cbr::new(SimDuration::from_us(10));
        assert_eq!(m.describe(), "CBR every 10 us");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = Cbr::new(SimDuration::ZERO);
    }
}
