//! Poisson cell traffic.

use super::TrafficModel;
use castanet_netsim::random::exponential;
use castanet_netsim::time::SimDuration;
use rand::rngs::SmallRng;

/// Memoryless traffic: exponentially distributed inter-cell gaps. The
/// classical background-load model for switch dimensioning studies.
///
/// # Examples
///
/// ```
/// use castanet_atm::traffic::{PoissonTraffic, TrafficModel};
/// use castanet_netsim::random::stream_rng;
///
/// let mut src = PoissonTraffic::from_rate(10_000.0); // mean 10 000 cells/s
/// let mut rng = stream_rng(0, 0);
/// let gap = src.next_gap(&mut rng).expect("stochastic models never end");
/// assert!(gap.as_picos() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonTraffic {
    mean_gap_secs: f64,
}

impl PoissonTraffic {
    /// Mean inter-cell gap of `mean_gap`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is zero.
    #[must_use]
    pub fn new(mean_gap: SimDuration) -> Self {
        assert!(!mean_gap.is_zero(), "poisson mean gap must be non-zero");
        PoissonTraffic {
            mean_gap_secs: mean_gap.as_secs_f64(),
        }
    }

    /// Mean rate of `cells_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics unless `cells_per_sec` is positive and finite.
    #[must_use]
    pub fn from_rate(cells_per_sec: f64) -> Self {
        assert!(
            cells_per_sec > 0.0 && cells_per_sec.is_finite(),
            "poisson rate must be positive"
        );
        PoissonTraffic {
            mean_gap_secs: 1.0 / cells_per_sec,
        }
    }
}

impl TrafficModel for PoissonTraffic {
    fn next_gap(&mut self, rng: &mut SmallRng) -> Option<SimDuration> {
        Some(SimDuration::from_secs_f64(exponential(
            rng,
            self.mean_gap_secs,
        )))
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(1.0 / self.mean_gap_secs)
    }

    fn describe(&self) -> String {
        format!("Poisson {:.0} cells/s", 1.0 / self.mean_gap_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::test_util::measured_rate;

    #[test]
    fn mean_rate_converges() {
        let mut m = PoissonTraffic::from_rate(20_000.0);
        let r = measured_rate(&mut m, 30_000, 11);
        assert!(
            (r - 20_000.0).abs() / 20_000.0 < 0.03,
            "measured {r} too far from 20000"
        );
    }

    #[test]
    fn gaps_vary() {
        let mut m = PoissonTraffic::new(SimDuration::from_us(100));
        let mut rng = castanet_netsim::random::stream_rng(5, 0);
        let a = m.next_gap(&mut rng).unwrap();
        let b = m.next_gap(&mut rng).unwrap();
        assert_ne!(a, b, "exponential gaps should differ");
    }

    #[test]
    fn describe_and_mean_rate() {
        let m = PoissonTraffic::from_rate(1234.0);
        assert_eq!(m.describe(), "Poisson 1234 cells/s");
        assert!((m.mean_rate().unwrap() - 1234.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_rate_panics() {
        let _ = PoissonTraffic::from_rate(0.0);
    }
}
