//! Traffic-source modules: turning a [`TrafficModel`] into a network-domain
//! cell source.
//!
//! The source stamps every cell's payload with a sequence number so that the
//! comparison stage of the co-verification flow ("=?" in Fig. 1) can check
//! ordering and loss without any side channel.

use super::TrafficModel;
use crate::addr::VpiVci;
use crate::cell::{AtmCell, CELL_BITS, PAYLOAD_OCTETS};
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Ctx;
use castanet_netsim::packet::Packet;
use castanet_netsim::process::Process;
use castanet_netsim::time::SimDuration;

/// Packet format code for packets whose payload is an [`AtmCell`].
pub const ATM_CELL_FORMAT: u32 = 0x0A7A;

const CODE_EMIT: u32 = 0;
const CODE_STOP: u32 = 1;

/// Builds a 48-octet payload carrying a big-endian sequence number in its
/// first 8 octets; the rest is a deterministic pattern derived from it.
#[must_use]
pub fn sequenced_payload(seq: u64) -> [u8; PAYLOAD_OCTETS] {
    let mut p = [0u8; PAYLOAD_OCTETS];
    p[..8].copy_from_slice(&seq.to_be_bytes());
    for (i, b) in p.iter_mut().enumerate().skip(8) {
        *b = (seq as u8).wrapping_add(i as u8);
    }
    p
}

/// Extracts the sequence number written by [`sequenced_payload`].
#[must_use]
pub fn payload_seq(payload: &[u8; PAYLOAD_OCTETS]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&payload[..8]);
    u64::from_be_bytes(b)
}

/// A network module that emits the cell stream of one connection according
/// to a traffic model.
///
/// Cells leave output port 0 as packets with format [`ATM_CELL_FORMAT`] and
/// an [`AtmCell`] payload. The source stops at model exhaustion or after an
/// optional cell limit.
pub struct TrafficSourceProcess {
    model: Box<dyn TrafficModel>,
    connection: VpiVci,
    limit: Option<u64>,
    emitted: u64,
    stop_kernel_when_done: bool,
}

impl std::fmt::Debug for TrafficSourceProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficSourceProcess")
            .field("connection", &self.connection)
            .field("model", &self.model.describe())
            .field("emitted", &self.emitted)
            .field("limit", &self.limit)
            .finish()
    }
}

impl TrafficSourceProcess {
    /// Creates a source for `connection` driven by `model`.
    #[must_use]
    pub fn new(connection: VpiVci, model: Box<dyn TrafficModel>) -> Self {
        TrafficSourceProcess {
            model,
            connection,
            limit: None,
            emitted: 0,
            stop_kernel_when_done: false,
        }
    }

    /// Limits the source to `cells` emissions.
    #[must_use]
    pub fn with_limit(mut self, cells: u64) -> Self {
        self.limit = Some(cells);
        self
    }

    /// Requests a kernel stop once this source finishes (useful when the
    /// source defines the experiment length).
    #[must_use]
    pub fn stopping_kernel_when_done(mut self) -> Self {
        self.stop_kernel_when_done = true;
        self
    }

    /// Cells emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn schedule_next(&mut self, ctx: &mut Ctx) {
        if let Some(limit) = self.limit {
            if self.emitted >= limit {
                self.finish(ctx);
                return;
            }
        }
        match self.model.next_gap(ctx.rng()) {
            Some(gap) => {
                // A zero gap would re-enter at the same instant, which is
                // legal, but an always-zero model would livelock the kernel;
                // enforce a 1 ps minimum.
                let gap = if gap.is_zero() {
                    SimDuration::from_picos(1)
                } else {
                    gap
                };
                ctx.schedule_self(gap, CODE_EMIT)
                    .expect("source gap scheduling cannot fail");
            }
            None => self.finish(ctx),
        }
    }

    /// Stops the kernel — via a same-instant self-interrupt so that the last
    /// emitted cell (scheduled earlier, FIFO at equal times) is still
    /// delivered before the stop takes effect.
    fn finish(&mut self, ctx: &mut Ctx) {
        if self.stop_kernel_when_done {
            ctx.schedule_self(SimDuration::ZERO, CODE_STOP)
                .expect("stop scheduling cannot fail");
        }
    }
}

impl Process for TrafficSourceProcess {
    fn init(&mut self, ctx: &mut Ctx) {
        self.schedule_next(ctx);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx, _port: PortId, _packet: Packet) {
        // Sources have no inputs; stray packets are ignored.
    }

    fn on_interrupt(&mut self, ctx: &mut Ctx, code: u32) {
        if code == CODE_STOP {
            ctx.request_stop();
            return;
        }
        let cell = AtmCell::user_data(self.connection, sequenced_payload(self.emitted));
        self.emitted += 1;
        ctx.send(
            PortId(0),
            Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(cell),
        )
        .expect("traffic source output port must be connected");
        self.schedule_next(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::Cbr;
    use castanet_netsim::kernel::Kernel;
    use castanet_netsim::process::CollectorProcess;
    use castanet_netsim::time::SimTime;

    fn run_source(model: Box<dyn TrafficModel>, limit: u64) -> Vec<(SimTime, Packet)> {
        let mut k = Kernel::new(5);
        let n = k.add_node("n");
        let src = k.add_module(
            n,
            "src",
            Box::new(
                TrafficSourceProcess::new(VpiVci::uni(1, 42).unwrap(), model).with_limit(limit),
            ),
        );
        let (collector, handle) = CollectorProcess::new();
        let dst = k.add_module(n, "sink", Box::new(collector));
        k.connect_stream(src, PortId(0), dst, PortId(0)).unwrap();
        k.run().unwrap();
        handle.take()
    }

    #[test]
    fn emits_limited_sequenced_cells() {
        let got = run_source(Box::new(Cbr::new(SimDuration::from_us(10))), 5);
        assert_eq!(got.len(), 5);
        for (i, (t, pkt)) in got.iter().enumerate() {
            assert_eq!(*t, SimTime::from_us(10 * (i as u64 + 1)));
            assert_eq!(pkt.format(), ATM_CELL_FORMAT);
            assert_eq!(pkt.bit_len(), CELL_BITS);
            let cell = pkt.payload::<AtmCell>().expect("cell payload");
            assert_eq!(payload_seq(&cell.payload), i as u64);
            assert_eq!(cell.id(), VpiVci::uni(1, 42).unwrap());
        }
    }

    #[test]
    fn finite_model_ends_the_source() {
        use crate::traffic::MpegTrace;
        let model = MpegTrace::from_frame_sizes(
            vec![2, 1],
            SimDuration::from_ms(40),
            SimDuration::from_us(1),
        );
        let got = run_source(Box::new(model), u64::MAX);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn stop_when_done_halts_kernel() {
        let mut k = Kernel::new(5);
        let n = k.add_node("n");
        let src = k.add_module(
            n,
            "src",
            Box::new(
                TrafficSourceProcess::new(
                    VpiVci::uni(0, 32).unwrap(),
                    Box::new(Cbr::new(SimDuration::from_us(1))),
                )
                .with_limit(3)
                .stopping_kernel_when_done(),
            ),
        );
        let (collector, handle) = CollectorProcess::new();
        let dst = k.add_module(n, "sink", Box::new(collector));
        k.connect_stream(src, PortId(0), dst, PortId(0)).unwrap();
        let reason = k.run().unwrap();
        assert_eq!(reason, castanet_netsim::kernel::StopReason::StopRequested);
        assert_eq!(handle.len(), 3);
    }

    #[test]
    fn payload_sequence_roundtrip() {
        for seq in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(payload_seq(&sequenced_payload(seq)), seq);
        }
    }

    #[test]
    fn payload_pattern_differs_by_seq() {
        assert_ne!(sequenced_payload(1), sequenced_payload(2));
    }
}
