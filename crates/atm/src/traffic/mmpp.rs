//! Two-state Markov-modulated Poisson process.

use super::TrafficModel;
use castanet_netsim::random::exponential;
use castanet_netsim::time::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;

/// MMPP(2): a Poisson source whose rate is modulated by a two-state
/// continuous-time Markov chain — the standard analytical model for bursty,
/// correlated ATM traffic (voice with silence suppression, aggregated VBR).
///
/// State 0 emits at `rate0`, state 1 at `rate1`; sojourn times in each state
/// are exponential with means `mean_sojourn0/1`.
#[derive(Debug, Clone)]
pub struct Mmpp2 {
    rate: [f64; 2],
    mean_sojourn_secs: [f64; 2],
    state: usize,
    time_left_in_state: f64,
}

impl Mmpp2 {
    /// Creates the process, starting in state 0.
    ///
    /// # Panics
    ///
    /// Panics unless both rates and both sojourn means are positive and
    /// finite.
    #[must_use]
    pub fn new(
        rate0: f64,
        mean_sojourn0: SimDuration,
        rate1: f64,
        mean_sojourn1: SimDuration,
    ) -> Self {
        assert!(rate0 > 0.0 && rate0.is_finite(), "rate0 must be positive");
        assert!(rate1 > 0.0 && rate1.is_finite(), "rate1 must be positive");
        assert!(!mean_sojourn0.is_zero(), "sojourn0 must be non-zero");
        assert!(!mean_sojourn1.is_zero(), "sojourn1 must be non-zero");
        Mmpp2 {
            rate: [rate0, rate1],
            mean_sojourn_secs: [mean_sojourn0.as_secs_f64(), mean_sojourn1.as_secs_f64()],
            state: 0,
            time_left_in_state: 0.0,
        }
    }

    /// The modulating chain's current state (0 or 1).
    #[must_use]
    pub fn state(&self) -> usize {
        self.state
    }

    /// Long-run mean rate: the sojourn-time-weighted average of the two
    /// Poisson rates.
    #[must_use]
    pub fn stationary_rate(&self) -> f64 {
        let pi0 =
            self.mean_sojourn_secs[0] / (self.mean_sojourn_secs[0] + self.mean_sojourn_secs[1]);
        pi0 * self.rate[0] + (1.0 - pi0) * self.rate[1]
    }
}

impl TrafficModel for Mmpp2 {
    fn next_gap(&mut self, rng: &mut SmallRng) -> Option<SimDuration> {
        // Competing exponentials: the next cell within the current state vs.
        // the state change. Accumulate across state changes until a cell
        // wins the race.
        let mut gap = 0.0f64;
        loop {
            if self.time_left_in_state <= 0.0 {
                self.time_left_in_state = exponential(rng, self.mean_sojourn_secs[self.state]);
            }
            let next_cell: f64 = {
                let u: f64 = rng.random();
                -(1.0 - u).ln() / self.rate[self.state]
            };
            if next_cell <= self.time_left_in_state {
                self.time_left_in_state -= next_cell;
                gap += next_cell;
                return Some(SimDuration::from_secs_f64(gap));
            }
            gap += self.time_left_in_state;
            self.time_left_in_state = 0.0;
            self.state ^= 1;
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(self.stationary_rate())
    }

    fn describe(&self) -> String {
        format!(
            "MMPP2 ({:.0}/{:.0} cells/s, sojourn {:.0}/{:.0} us)",
            self.rate[0],
            self.rate[1],
            self.mean_sojourn_secs[0] * 1e6,
            self.mean_sojourn_secs[1] * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::test_util::measured_rate;

    #[test]
    fn stationary_rate_formula() {
        // Equal sojourns -> average of the rates.
        let m = Mmpp2::new(
            1000.0,
            SimDuration::from_ms(1),
            3000.0,
            SimDuration::from_ms(1),
        );
        assert!((m.stationary_rate() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn measured_rate_converges_to_stationary() {
        let mut m = Mmpp2::new(
            50_000.0,
            SimDuration::from_us(500),
            5_000.0,
            SimDuration::from_us(500),
        );
        let expected = m.stationary_rate();
        let r = measured_rate(&mut m, 60_000, 23);
        assert!(
            (r - expected).abs() / expected < 0.08,
            "measured {r}, expected {expected}"
        );
    }

    #[test]
    fn state_toggles_over_time() {
        let mut m = Mmpp2::new(
            100.0,
            SimDuration::from_us(10),
            100.0,
            SimDuration::from_us(10),
        );
        let mut rng = castanet_netsim::random::stream_rng(29, 0);
        let mut saw = [false, false];
        for _ in 0..2000 {
            m.next_gap(&mut rng);
            saw[m.state()] = true;
        }
        assert!(saw[0] && saw[1], "chain never changed state");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = Mmpp2::new(0.0, SimDuration::from_ms(1), 1.0, SimDuration::from_ms(1));
    }
}
