//! The traffic-model library.
//!
//! "We chose OPNET because of its ATM model suite and **library of traffic
//! models**" (§2). This module is that library: every model implements
//! [`TrafficModel`], producing the inter-cell gaps of one connection's cell
//! stream; [`source::TrafficSourceProcess`] turns any model into a network
//! module that emits ATM cells into a simulation, and the same models drive
//! the hardware test board with "real-time test patterns — either stochastic
//! traffic models or simulated real-world traces, for example MPEG traces"
//! (§2).

mod cbr;
mod mmpp;
mod mpeg;
mod onoff;
mod poisson;
pub mod source;

pub use cbr::Cbr;
pub use mmpp::Mmpp2;
pub use mpeg::{GopPattern, MpegTrace};
pub use onoff::OnOffVbr;
pub use poisson::PoissonTraffic;

use castanet_netsim::time::SimDuration;
use rand::rngs::SmallRng;

/// A generator of inter-cell gaps for one connection.
///
/// Models are pull-based: the caller asks for the gap between the previous
/// cell and the next one. `None` means the source is exhausted (finite
/// traces); stochastic models never return `None`.
///
/// Models must be `Send` so sources can run inside kernels that are moved
/// across threads by the coupling layer.
pub trait TrafficModel: Send {
    /// Gap from the previous cell to the next, or `None` when exhausted.
    fn next_gap(&mut self, rng: &mut SmallRng) -> Option<SimDuration>;

    /// Mean cell rate in cells/second this model is configured for, when
    /// well-defined (used by benches to size workloads).
    fn mean_rate(&self) -> Option<f64> {
        None
    }

    /// Human-readable description for reports.
    fn describe(&self) -> String;
}

/// Drains up to `limit` cells from a model, returning the cumulative
/// emission times. A convenience for tests and benches.
pub fn emission_times(
    model: &mut dyn TrafficModel,
    rng: &mut SmallRng,
    limit: usize,
) -> Vec<castanet_netsim::time::SimTime> {
    let mut out = Vec::with_capacity(limit);
    let mut t = castanet_netsim::time::SimTime::ZERO;
    for _ in 0..limit {
        match model.next_gap(rng) {
            Some(gap) => {
                t += gap;
                out.push(t);
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use castanet_netsim::random::stream_rng;

    /// Estimates the mean cell rate (cells/s) of `model` over `n` cells.
    pub fn measured_rate(model: &mut dyn TrafficModel, n: usize, seed: u64) -> f64 {
        let mut rng = stream_rng(seed, 0);
        let times = emission_times(model, &mut rng, n);
        assert!(times.len() >= 2, "model exhausted too early");
        let span = (*times.last().unwrap() - times[0]).as_secs_f64();
        (times.len() - 1) as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castanet_netsim::random::stream_rng;

    #[test]
    fn emission_times_accumulate() {
        let mut m = Cbr::new(SimDuration::from_us(10));
        let mut rng = stream_rng(0, 0);
        let times = emission_times(&mut m, &mut rng, 3);
        assert_eq!(
            times,
            vec![
                castanet_netsim::time::SimTime::from_us(10),
                castanet_netsim::time::SimTime::from_us(20),
                castanet_netsim::time::SimTime::from_us(30),
            ]
        );
    }

    #[test]
    fn emission_times_stop_at_exhaustion() {
        // An MPEG trace over one GoP of 3 frames, 1 cell each, is finite.
        let mut m = MpegTrace::from_frame_sizes(
            vec![1, 1, 1],
            SimDuration::from_ms(40),
            SimDuration::from_us(3),
        );
        let mut rng = stream_rng(0, 0);
        let times = emission_times(&mut m, &mut rng, 100);
        assert_eq!(times.len(), 3);
    }
}
