//! On-off (burst-silence) VBR traffic.

use super::TrafficModel;
use castanet_netsim::random::{exponential, geometric};
use castanet_netsim::time::SimDuration;
use rand::rngs::SmallRng;

/// The classical on-off VBR source: bursts of back-to-back cells (geometric
/// burst length) separated by exponentially distributed silences. Within a
/// burst, cells are spaced one cell slot apart (the peak rate of the line).
///
/// With mean burst length `B` cells and mean silence `S`, the mean rate is
/// `B / (B·slot + S)` cells per second.
///
/// # Examples
///
/// ```
/// use castanet_atm::traffic::{OnOffVbr, TrafficModel};
/// use castanet_netsim::time::SimDuration;
/// use castanet_netsim::random::stream_rng;
///
/// // 155 Mbit/s line slot, mean 10-cell bursts, mean 100 us silences.
/// let mut src = OnOffVbr::new(
///     SimDuration::from_ns(2726),
///     10.0,
///     SimDuration::from_us(100),
/// );
/// let mut rng = stream_rng(0, 0);
/// assert!(src.next_gap(&mut rng).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct OnOffVbr {
    slot: SimDuration,
    burst_success_p: f64,
    mean_silence_secs: f64,
    remaining_in_burst: u64,
}

impl OnOffVbr {
    /// Creates a source with cell slot `slot`, geometric bursts of mean
    /// `mean_burst_cells`, and exponential silences of mean `mean_silence`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `mean_silence` is zero, or `mean_burst_cells < 1`.
    #[must_use]
    pub fn new(slot: SimDuration, mean_burst_cells: f64, mean_silence: SimDuration) -> Self {
        assert!(!slot.is_zero(), "cell slot must be non-zero");
        assert!(
            mean_burst_cells >= 1.0 && mean_burst_cells.is_finite(),
            "mean burst length must be at least one cell"
        );
        assert!(!mean_silence.is_zero(), "mean silence must be non-zero");
        OnOffVbr {
            slot,
            burst_success_p: 1.0 / mean_burst_cells,
            mean_silence_secs: mean_silence.as_secs_f64(),
            remaining_in_burst: 0,
        }
    }

    /// The line cell slot this source transmits at during bursts.
    #[must_use]
    pub fn slot(&self) -> SimDuration {
        self.slot
    }

    /// Mean burst length in cells.
    #[must_use]
    pub fn mean_burst_cells(&self) -> f64 {
        1.0 / self.burst_success_p
    }
}

impl TrafficModel for OnOffVbr {
    fn next_gap(&mut self, rng: &mut SmallRng) -> Option<SimDuration> {
        if self.remaining_in_burst > 0 {
            self.remaining_in_burst -= 1;
            return Some(self.slot);
        }
        // Start a new burst after a silence; the first cell of the burst
        // arrives after silence + one slot.
        let silence = exponential(rng, self.mean_silence_secs);
        self.remaining_in_burst = geometric(rng, self.burst_success_p) - 1;
        Some(SimDuration::from_secs_f64(silence) + self.slot)
    }

    fn mean_rate(&self) -> Option<f64> {
        let b = self.mean_burst_cells();
        Some(b / (b * self.slot.as_secs_f64() + self.mean_silence_secs))
    }

    fn describe(&self) -> String {
        format!(
            "on-off VBR (mean burst {:.1} cells @ slot {}, mean silence {:.1} us)",
            self.mean_burst_cells(),
            self.slot,
            self.mean_silence_secs * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::test_util::measured_rate;

    #[test]
    fn burst_cells_are_slot_spaced() {
        let slot = SimDuration::from_ns(2726);
        let mut m = OnOffVbr::new(slot, 50.0, SimDuration::from_ms(1));
        let mut rng = castanet_netsim::random::stream_rng(2, 0);
        // Pull until inside a burst, then check the spacing.
        let mut slot_gaps = 0;
        for _ in 0..500 {
            if m.next_gap(&mut rng).unwrap() == slot {
                slot_gaps += 1;
            }
        }
        assert!(
            slot_gaps > 300,
            "most gaps should be in-burst slots, got {slot_gaps}"
        );
    }

    #[test]
    fn measured_rate_matches_formula() {
        let slot = SimDuration::from_us(3);
        let mut m = OnOffVbr::new(slot, 10.0, SimDuration::from_us(200));
        let expected = m.mean_rate().unwrap();
        let r = measured_rate(&mut m, 50_000, 17);
        assert!(
            (r - expected).abs() / expected < 0.05,
            "measured {r}, expected {expected}"
        );
    }

    #[test]
    fn mean_burst_accessor() {
        let m = OnOffVbr::new(SimDuration::from_us(1), 25.0, SimDuration::from_us(10));
        assert!((m.mean_burst_cells() - 25.0).abs() < 1e-9);
        assert_eq!(m.slot(), SimDuration::from_us(1));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn sub_one_burst_panics() {
        let _ = OnOffVbr::new(SimDuration::from_us(1), 0.5, SimDuration::from_us(1));
    }

    #[test]
    fn describe_is_informative() {
        let m = OnOffVbr::new(SimDuration::from_us(3), 10.0, SimDuration::from_us(200));
        assert!(m.describe().contains("on-off VBR"));
        assert!(m.describe().contains("10.0 cells"));
    }
}
