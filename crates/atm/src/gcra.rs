//! The Generic Cell Rate Algorithm — ATM's leaky-bucket policer.
//!
//! Usage parameter control (UPC) at a switch ingress checks every arriving
//! cell against the traffic contract with the GCRA (ATM Forum UNI 3.1 /
//! ITU-T I.371). Both the virtual-scheduling and the continuous-state
//! leaky-bucket formulations are implemented; they are provably equivalent
//! and a property test in this module exercises that equivalence.
//!
//! The policer is part of the "ATM traffic management sector" the paper
//! names as CASTANET's application domain, and the accounting unit case
//! study charges only *conforming* cells.

use castanet_netsim::time::{SimDuration, SimTime};

/// Verdict for one cell arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conformance {
    /// The cell conforms to the contract.
    Conforming,
    /// The cell violates the contract (to be dropped or CLP-tagged).
    NonConforming,
}

/// GCRA(T, τ) in the virtual-scheduling formulation: `T` is the contracted
/// inter-cell emission interval (1 / peak cell rate) and `τ` the cell delay
/// variation tolerance.
///
/// # Examples
///
/// ```
/// use castanet_atm::gcra::{Conformance, Gcra};
/// use castanet_netsim::time::{SimDuration, SimTime};
///
/// // Contract: one cell every 10 us, 2 us jitter tolerance.
/// let mut gcra = Gcra::new(SimDuration::from_us(10), SimDuration::from_us(2));
/// assert_eq!(gcra.arrival(SimTime::from_us(0)), Conformance::Conforming);
/// // 9 us later: within tolerance (expected at 10, arrives 1 early <= 2).
/// assert_eq!(gcra.arrival(SimTime::from_us(9)), Conformance::Conforming);
/// // Another only 3 us later: too early, non-conforming.
/// assert_eq!(gcra.arrival(SimTime::from_us(12)), Conformance::NonConforming);
/// ```
#[derive(Debug, Clone)]
pub struct Gcra {
    increment: SimDuration,
    limit: SimDuration,
    /// Theoretical arrival time of the next cell.
    tat: SimTime,
    conforming: u64,
    non_conforming: u64,
}

impl Gcra {
    /// Creates a policer with emission interval `increment` (aka `T`) and
    /// tolerance `limit` (aka `τ`).
    ///
    /// # Panics
    ///
    /// Panics if `increment` is zero (an infinite rate admits everything and
    /// indicates a configuration error).
    #[must_use]
    pub fn new(increment: SimDuration, limit: SimDuration) -> Self {
        assert!(!increment.is_zero(), "gcra increment must be non-zero");
        Gcra {
            increment,
            limit,
            tat: SimTime::ZERO,
            conforming: 0,
            non_conforming: 0,
        }
    }

    /// Builds a policer from a peak cell rate in cells/second and a
    /// tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `pcr_cells_per_sec` is zero.
    #[must_use]
    pub fn from_pcr(pcr_cells_per_sec: u64, limit: SimDuration) -> Self {
        assert!(pcr_cells_per_sec > 0, "peak cell rate must be non-zero");
        Gcra::new(
            SimDuration::from_picos(1_000_000_000_000 / pcr_cells_per_sec),
            limit,
        )
    }

    /// Processes a cell arriving at `t`, updating policer state only for
    /// conforming cells (non-conforming arrivals leave the TAT untouched,
    /// per I.371).
    pub fn arrival(&mut self, t: SimTime) -> Conformance {
        // Virtual scheduling: conforming iff t >= TAT - τ.
        let earliest = if self.tat.as_picos() > self.limit.as_picos() {
            self.tat - self.limit
        } else {
            SimTime::ZERO
        };
        if t < earliest {
            self.non_conforming += 1;
            return Conformance::NonConforming;
        }
        self.tat = self.tat.max(t) + self.increment;
        self.conforming += 1;
        Conformance::Conforming
    }

    /// Contracted emission interval `T`.
    #[must_use]
    pub fn increment(&self) -> SimDuration {
        self.increment
    }

    /// Tolerance `τ`.
    #[must_use]
    pub fn limit(&self) -> SimDuration {
        self.limit
    }

    /// Cells judged conforming so far.
    #[must_use]
    pub fn conforming(&self) -> u64 {
        self.conforming
    }

    /// Cells judged non-conforming so far.
    #[must_use]
    pub fn non_conforming(&self) -> u64 {
        self.non_conforming
    }
}

/// The continuous-state leaky-bucket formulation of the same algorithm:
/// a bucket drains at one unit per time unit and each conforming cell adds
/// `T`; a cell conforms iff the bucket content is at most `τ` on arrival.
#[derive(Debug, Clone)]
pub struct LeakyBucket {
    increment: SimDuration,
    limit: SimDuration,
    level: SimDuration,
    last_conforming_arrival: Option<SimTime>,
}

impl LeakyBucket {
    /// Creates a leaky bucket equivalent to `Gcra::new(increment, limit)`.
    ///
    /// # Panics
    ///
    /// Panics if `increment` is zero.
    #[must_use]
    pub fn new(increment: SimDuration, limit: SimDuration) -> Self {
        assert!(
            !increment.is_zero(),
            "leaky-bucket increment must be non-zero"
        );
        LeakyBucket {
            increment,
            limit,
            level: SimDuration::ZERO,
            last_conforming_arrival: None,
        }
    }

    /// Processes a cell arriving at `t`.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are fed out of time order.
    pub fn arrival(&mut self, t: SimTime) -> Conformance {
        let drained = match self.last_conforming_arrival {
            Some(last) => {
                let dt = t
                    .checked_duration_since(last)
                    .expect("leaky-bucket arrivals must be time-ordered");
                self.level.saturating_sub(dt)
            }
            None => SimDuration::ZERO,
        };
        if drained > self.limit {
            return Conformance::NonConforming;
        }
        self.level = drained + self.increment;
        self.last_conforming_arrival = Some(t);
        Conformance::Conforming
    }

    /// Current bucket content as of the last conforming arrival.
    #[must_use]
    pub fn level(&self) -> SimDuration {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn exactly_paced_stream_conforms() {
        let mut g = Gcra::new(SimDuration::from_us(10), SimDuration::ZERO);
        for i in 0..100 {
            assert_eq!(g.arrival(us(i * 10)), Conformance::Conforming, "cell {i}");
        }
        assert_eq!(g.conforming(), 100);
        assert_eq!(g.non_conforming(), 0);
    }

    #[test]
    fn zero_tolerance_rejects_any_early_cell() {
        let mut g = Gcra::new(SimDuration::from_us(10), SimDuration::ZERO);
        g.arrival(us(0));
        assert_eq!(
            g.arrival(SimTime::from_ns(9_999)),
            Conformance::NonConforming
        );
    }

    #[test]
    fn tolerance_admits_bounded_bursts() {
        // τ = 2T admits a back-to-back burst of 3 cells at t=0 slots.
        let t = SimDuration::from_us(10);
        let mut g = Gcra::new(t, t * 2);
        assert_eq!(g.arrival(us(0)), Conformance::Conforming);
        assert_eq!(g.arrival(us(0)), Conformance::Conforming);
        assert_eq!(g.arrival(us(0)), Conformance::Conforming);
        assert_eq!(g.arrival(us(0)), Conformance::NonConforming);
    }

    #[test]
    fn non_conforming_cells_do_not_update_state() {
        let mut g = Gcra::new(SimDuration::from_us(10), SimDuration::ZERO);
        g.arrival(us(0));
        // A burst of violations must not push the TAT further out.
        for _ in 0..5 {
            assert_eq!(g.arrival(us(1)), Conformance::NonConforming);
        }
        // The legitimately scheduled cell still conforms.
        assert_eq!(g.arrival(us(10)), Conformance::Conforming);
    }

    #[test]
    fn idle_period_resets_effective_state() {
        let mut g = Gcra::new(SimDuration::from_us(10), SimDuration::ZERO);
        g.arrival(us(0));
        // Long silence, then a burst spaced at T again.
        assert_eq!(g.arrival(us(1000)), Conformance::Conforming);
        assert_eq!(g.arrival(us(1010)), Conformance::Conforming);
    }

    #[test]
    fn from_pcr_computes_interval() {
        let g = Gcra::from_pcr(100_000, SimDuration::ZERO); // 100k cells/s
        assert_eq!(g.increment(), SimDuration::from_us(10));
    }

    #[test]
    fn leaky_bucket_matches_virtual_scheduling() {
        // Equivalence of the two formulations over a pseudorandom pattern.
        let t = SimDuration::from_us(7);
        let tau = SimDuration::from_us(11);
        let mut g = Gcra::new(t, tau);
        let mut lb = LeakyBucket::new(t, tau);
        let mut now = SimTime::ZERO;
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        for i in 0..10_000 {
            // xorshift gaps in [0, 16) us
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += SimDuration::from_us(x % 16);
            assert_eq!(g.arrival(now), lb.arrival(now), "arrival {i} at {now}");
        }
        assert!(
            g.conforming() > 0 && g.non_conforming() > 0,
            "pattern should mix verdicts"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_increment_panics() {
        let _ = Gcra::new(SimDuration::ZERO, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn leaky_bucket_rejects_time_travel() {
        let mut lb = LeakyBucket::new(SimDuration::from_us(1), SimDuration::ZERO);
        lb.arrival(us(10));
        lb.arrival(us(5));
    }
}
