//! ATM addressing: virtual path and virtual channel identifiers.
//!
//! The co-simulation interface of the paper (Fig. 4) moves `struct atmdata
//! { int VPI; int VCI; … }` between the network simulator and the VHDL
//! model. Here those fields are proper newtypes with the ITU-T I.361 value
//! ranges enforced at construction: VPI is 8 bits at the UNI and 12 bits at
//! the NNI; VCI is 16 bits; VCIs 0–31 are reserved for layer management.

use crate::error::AtmError;
use std::fmt;

/// Header format of a cell: user-network interface or network-node
/// interface. The NNI trades the 4 GFC bits for 4 more VPI bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HeaderFormat {
    /// User-network interface: 4-bit GFC, 8-bit VPI.
    #[default]
    Uni,
    /// Network-node interface: 12-bit VPI, no GFC.
    Nni,
}

impl HeaderFormat {
    /// Largest VPI representable in this format.
    #[must_use]
    pub const fn max_vpi(self) -> u16 {
        match self {
            HeaderFormat::Uni => 0xFF,
            HeaderFormat::Nni => 0xFFF,
        }
    }
}

impl fmt::Display for HeaderFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderFormat::Uni => write!(f, "UNI"),
            HeaderFormat::Nni => write!(f, "NNI"),
        }
    }
}

/// A virtual path identifier (8 bits UNI / 12 bits NNI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpi(u16);

impl Vpi {
    /// Creates a VPI, validating against the format's width.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::VpiOutOfRange`] when `value` exceeds the field
    /// width of `format`.
    pub fn new(value: u16, format: HeaderFormat) -> Result<Self, AtmError> {
        if value > format.max_vpi() {
            return Err(AtmError::VpiOutOfRange { value, format });
        }
        Ok(Vpi(value))
    }

    /// Creates a UNI-range VPI (≤ 255).
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::VpiOutOfRange`] when `value > 255`.
    pub fn uni(value: u16) -> Result<Self, AtmError> {
        Vpi::new(value, HeaderFormat::Uni)
    }

    /// The raw identifier value.
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Vpi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VPI={}", self.0)
    }
}

/// A virtual channel identifier (16 bits). Values 0–31 are reserved by
/// I.361 for signalling and OAM; [`Vci::is_reserved`] flags them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vci(u16);

impl Vci {
    /// First VCI available for user connections.
    pub const FIRST_USER: u16 = 32;

    /// Creates a VCI (any 16-bit value is representable).
    #[must_use]
    pub const fn new(value: u16) -> Self {
        Vci(value)
    }

    /// The raw identifier value.
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// `true` for the I.361 reserved range 0–31.
    #[must_use]
    pub const fn is_reserved(self) -> bool {
        self.0 < Self::FIRST_USER
    }
}

impl fmt::Display for Vci {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VCI={}", self.0)
    }
}

/// A connection identifier: the (VPI, VCI) pair that switching tables key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VpiVci {
    /// Virtual path part.
    pub vpi: Vpi,
    /// Virtual channel part.
    pub vci: Vci,
}

impl VpiVci {
    /// Bundles a path and channel identifier.
    #[must_use]
    pub const fn new(vpi: Vpi, vci: Vci) -> Self {
        VpiVci { vpi, vci }
    }

    /// Convenience constructor from raw UNI-range values.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::VpiOutOfRange`] when `vpi > 255`.
    pub fn uni(vpi: u16, vci: u16) -> Result<Self, AtmError> {
        Ok(VpiVci::new(Vpi::uni(vpi)?, Vci::new(vci)))
    }
}

impl fmt::Display for VpiVci {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.vpi, self.vci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uni_vpi_range_enforced() {
        assert!(Vpi::uni(255).is_ok());
        let err = Vpi::uni(256).unwrap_err();
        assert!(matches!(err, AtmError::VpiOutOfRange { value: 256, .. }));
    }

    #[test]
    fn nni_vpi_range_is_wider() {
        assert!(Vpi::new(4095, HeaderFormat::Nni).is_ok());
        assert!(Vpi::new(4096, HeaderFormat::Nni).is_err());
        assert!(Vpi::new(4095, HeaderFormat::Uni).is_err());
    }

    #[test]
    fn reserved_vci_detection() {
        assert!(Vci::new(0).is_reserved());
        assert!(Vci::new(31).is_reserved());
        assert!(!Vci::new(32).is_reserved());
        assert!(!Vci::new(65535).is_reserved());
    }

    #[test]
    fn vpivci_ordering_and_display() {
        let a = VpiVci::uni(1, 40).unwrap();
        let b = VpiVci::uni(1, 41).unwrap();
        let c = VpiVci::uni(2, 0).unwrap();
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "VPI=1/VCI=40");
    }

    #[test]
    fn format_display_and_max() {
        assert_eq!(HeaderFormat::Uni.to_string(), "UNI");
        assert_eq!(HeaderFormat::Nni.to_string(), "NNI");
        assert_eq!(HeaderFormat::Uni.max_vpi(), 255);
        assert_eq!(HeaderFormat::Nni.max_vpi(), 4095);
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(Vpi::default().value(), 0);
        assert_eq!(Vci::default().value(), 0);
        assert_eq!(VpiVci::default(), VpiVci::uni(0, 0).unwrap());
    }
}
