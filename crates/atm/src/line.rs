//! Imperfect transmission lines: bit-error injection and receive-side
//! header error handling.
//!
//! Real lines corrupt bits; the HEC exists because of them. [`NoisyLine`]
//! is a network-domain module that forwards cells while flipping wire bits
//! with a configurable bit-error rate, and [`LineReceiver`] applies the
//! I.432 correction/detection automaton on the other end — so the
//! environment can verify that a DUT (and the reference model) behave
//! correctly under line noise, not just on clean streams.

use crate::addr::HeaderFormat;
use crate::cell::{AtmCell, CELL_OCTETS, HEADER_OCTETS};
use crate::hec::{HecOutcome, HecReceiver};
use crate::traffic::source::ATM_CELL_FORMAT;
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Ctx;
use castanet_netsim::packet::Packet;
use castanet_netsim::process::Process;
use castanet_netsim::random::bernoulli;
use std::sync::{Arc, Mutex};

/// Shared counters of a [`NoisyLine`].
#[derive(Debug, Clone, Default)]
pub struct NoiseStats {
    inner: Arc<Mutex<NoiseCounters>>,
}

/// Counter block of [`NoiseStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoiseCounters {
    /// Cells forwarded.
    pub cells: u64,
    /// Bits flipped in total.
    pub bits_flipped: u64,
    /// Cells whose header was hit at least once.
    pub header_hits: u64,
    /// Cells whose payload was hit at least once.
    pub payload_hits: u64,
}

impl NoiseStats {
    /// Snapshot of the counters.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> NoiseCounters {
        *self.inner.lock().expect("noise stats lock poisoned")
    }
}

/// A lossy line segment: cells in on port 0, corrupted cells out on port 0.
///
/// Corruption happens on the *wire image*: each of the 424 bits flips
/// independently with probability `ber`. The (possibly damaged) cell is
/// re-decoded without HEC verification — exactly what arrives at the far
/// end before error control runs.
pub struct NoisyLine {
    ber: f64,
    format: HeaderFormat,
    stats: NoiseStats,
}

impl std::fmt::Debug for NoisyLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoisyLine").field("ber", &self.ber).finish()
    }
}

impl NoisyLine {
    /// Creates a line with the given bit-error rate. Returns the process
    /// and its shared counters.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ber <= 1.0`.
    #[must_use]
    pub fn new(ber: f64, format: HeaderFormat) -> (Self, NoiseStats) {
        assert!(
            (0.0..=1.0).contains(&ber),
            "bit error rate must be in [0, 1]"
        );
        let stats = NoiseStats::default();
        (
            NoisyLine {
                ber,
                format,
                stats: stats.clone(),
            },
            stats,
        )
    }
}

impl Process for NoisyLine {
    fn on_packet(&mut self, ctx: &mut Ctx, _port: PortId, packet: Packet) {
        let Ok(cell) = packet.into_payload::<AtmCell>() else {
            return;
        };
        let Ok(mut wire) = cell.encode(self.format) else {
            return;
        };
        let mut flips = 0u64;
        let mut header_hit = false;
        let mut payload_hit = false;
        if self.ber > 0.0 {
            for (i, byte) in wire.iter_mut().enumerate() {
                for bit in 0..8 {
                    if bernoulli(ctx.rng(), self.ber) {
                        *byte ^= 1 << bit;
                        flips += 1;
                        if i < HEADER_OCTETS {
                            header_hit = true;
                        } else {
                            payload_hit = true;
                        }
                    }
                }
            }
        }
        {
            let mut c = self.stats.inner.lock().expect("noise stats lock poisoned");
            c.cells += 1;
            c.bits_flipped += flips;
            c.header_hits += u64::from(header_hit);
            c.payload_hits += u64::from(payload_hit);
        }
        // Forward the damaged wire image as raw bytes: the receive side is
        // responsible for header error control.
        ctx.send(
            PortId(0),
            Packet::new(ATM_CELL_FORMAT, crate::cell::CELL_BITS).with_payload(wire),
        )
        .expect("noisy line output must be connected");
    }
}

/// Shared counters of a [`LineReceiver`].
#[derive(Debug, Clone, Default)]
pub struct ReceiverStats {
    inner: Arc<Mutex<ReceiverCounters>>,
}

/// Counter block of [`ReceiverStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverCounters {
    /// Cells delivered upward (clean or corrected headers).
    pub delivered: u64,
    /// Headers corrected (single-bit errors in correction mode).
    pub corrected: u64,
    /// Cells discarded by header error control.
    pub discarded: u64,
}

impl ReceiverStats {
    /// Snapshot of the counters.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> ReceiverCounters {
        *self.inner.lock().expect("receiver stats lock poisoned")
    }
}

/// The receive end of a noisy line: applies the I.432 HEC automaton to
/// incoming wire images (as produced by [`NoisyLine`]) and forwards
/// surviving cells on port 0.
pub struct LineReceiver {
    hec: HecReceiver,
    format: HeaderFormat,
    stats: ReceiverStats,
}

impl std::fmt::Debug for LineReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineReceiver")
            .field("correcting", &self.hec.is_correcting())
            .finish()
    }
}

impl LineReceiver {
    /// Creates a receiver in correction mode.
    #[must_use]
    pub fn new(format: HeaderFormat) -> (Self, ReceiverStats) {
        let stats = ReceiverStats::default();
        (
            LineReceiver {
                hec: HecReceiver::new(),
                format,
                stats: stats.clone(),
            },
            stats,
        )
    }
}

impl Process for LineReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx, _port: PortId, packet: Packet) {
        let Ok(mut wire) = packet.into_payload::<[u8; CELL_OCTETS]>() else {
            return;
        };
        let mut header = [0u8; HEADER_OCTETS];
        header.copy_from_slice(&wire[..HEADER_OCTETS]);
        let outcome = self.hec.receive(&header);
        let mut c = self
            .stats
            .inner
            .lock()
            .expect("receiver stats lock poisoned");
        match outcome {
            HecOutcome::Valid => {}
            HecOutcome::Corrected(fixed) => {
                wire[..HEADER_OCTETS].copy_from_slice(&fixed);
                c.corrected += 1;
            }
            HecOutcome::Discarded => {
                c.discarded += 1;
                return;
            }
        }
        c.delivered += 1;
        drop(c);
        if let Ok(cell) = AtmCell::decode(&wire, self.format) {
            ctx.send(
                PortId(0),
                Packet::new(ATM_CELL_FORMAT, crate::cell::CELL_BITS).with_payload(cell),
            )
            .expect("line receiver output must be connected");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VpiVci;
    use crate::traffic::source::TrafficSourceProcess;
    use crate::traffic::Cbr;
    use castanet_netsim::kernel::Kernel;
    use castanet_netsim::process::CollectorProcess;
    use castanet_netsim::time::SimDuration;

    fn build(ber: f64, cells: u64) -> (NoiseCounters, ReceiverCounters, usize) {
        let mut k = Kernel::new(77);
        let n = k.add_node("line");
        let src = k.add_module(
            n,
            "src",
            Box::new(
                TrafficSourceProcess::new(
                    VpiVci::uni(1, 40).unwrap(),
                    Box::new(Cbr::new(SimDuration::from_us(10))),
                )
                .with_limit(cells),
            ),
        );
        let (line, noise) = NoisyLine::new(ber, HeaderFormat::Uni);
        let line_m = k.add_module(n, "line", Box::new(line));
        let (rx, rx_stats) = LineReceiver::new(HeaderFormat::Uni);
        let rx_m = k.add_module(n, "rx", Box::new(rx));
        let (collector, got) = CollectorProcess::new();
        let sink = k.add_module(n, "sink", Box::new(collector));
        k.connect_stream(src, PortId(0), line_m, PortId(0)).unwrap();
        k.connect_stream(line_m, PortId(0), rx_m, PortId(0))
            .unwrap();
        k.connect_stream(rx_m, PortId(0), sink, PortId(0)).unwrap();
        k.run().unwrap();
        (noise.snapshot(), rx_stats.snapshot(), got.len())
    }

    #[test]
    fn clean_line_delivers_everything() {
        let (noise, rx, delivered) = build(0.0, 50);
        assert_eq!(noise.cells, 50);
        assert_eq!(noise.bits_flipped, 0);
        assert_eq!(rx.delivered, 50);
        assert_eq!(rx.corrected, 0);
        assert_eq!(rx.discarded, 0);
        assert_eq!(delivered, 50);
    }

    #[test]
    fn noisy_line_flips_bits_at_roughly_the_configured_rate() {
        let ber = 1e-3;
        let (noise, _, _) = build(ber, 200);
        let bits = 200.0 * 424.0;
        let expected = bits * ber;
        assert!(
            (noise.bits_flipped as f64) > expected * 0.5
                && (noise.bits_flipped as f64) < expected * 1.8,
            "flipped {} vs expected ~{expected}",
            noise.bits_flipped
        );
    }

    #[test]
    fn hec_corrects_single_header_errors_end_to_end() {
        // BER low enough that header hits are mostly single-bit: most hit
        // headers are corrected rather than discarded.
        let (noise, rx, delivered) = build(2e-3, 400);
        assert!(noise.header_hits > 0, "need some header corruption");
        assert!(rx.corrected > 0, "correction must fire");
        assert_eq!(
            rx.delivered + rx.discarded,
            noise.cells,
            "every cell is either delivered or discarded"
        );
        // Delivered = collector count (payload-corrupted cells still pass
        // the header check and count as delivered).
        assert_eq!(delivered as u64, rx.delivered);
        // The overwhelming majority of cells survive at this BER.
        assert!(rx.delivered > 350, "delivered {}", rx.delivered);
    }

    #[test]
    fn heavy_noise_discards_cells() {
        let (_, rx, _) = build(0.02, 200);
        assert!(rx.discarded > 0, "multi-bit headers must discard: {rx:?}");
    }

    #[test]
    #[should_panic(expected = "bit error rate")]
    fn invalid_ber_panics() {
        let _ = NoisyLine::new(1.5, HeaderFormat::Uni);
    }
}
