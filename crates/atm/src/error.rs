//! Error type of the ATM model suite.

use crate::addr::HeaderFormat;
use std::fmt;

/// Errors produced by cell handling, switching and adaptation layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtmError {
    /// A VPI value exceeds the width of its header format.
    VpiOutOfRange {
        /// Offending value.
        value: u16,
        /// Format whose field it must fit.
        format: HeaderFormat,
    },
    /// A GFC value exceeds 4 bits, or is non-zero at the NNI.
    GfcOutOfRange {
        /// Offending value.
        value: u8,
        /// Format being encoded.
        format: HeaderFormat,
    },
    /// A received header failed its HEC check.
    HecMismatch,
    /// A cell buffer was not exactly 53 octets.
    CellLength {
        /// The length that was supplied.
        got: usize,
    },
    /// A switching table has no entry for the given connection.
    NoRoute {
        /// VPI of the unroutable cell.
        vpi: u16,
        /// VCI of the unroutable cell.
        vci: u16,
    },
    /// A switching-table entry would be overwritten.
    RouteExists {
        /// VPI of the existing entry.
        vpi: u16,
        /// VCI of the existing entry.
        vci: u16,
    },
    /// A switch port index was out of range.
    PortOutOfRange {
        /// The requested port.
        port: usize,
        /// Number of ports on the device.
        ports: usize,
    },
    /// AAL5 reassembly failed (CRC-32 or length mismatch, or oversized
    /// frame).
    Aal5 {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An OAM cell failed validation (CRC-10, type or function fields).
    Oam {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A signaling cell failed validation (channel or message format).
    Signaling {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An accounting operation referenced an unregistered connection.
    UnknownConnection {
        /// VPI of the unknown connection.
        vpi: u16,
        /// VCI of the unknown connection.
        vci: u16,
    },
}

impl fmt::Display for AtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmError::VpiOutOfRange { value, format } => {
                write!(
                    f,
                    "vpi {value} does not fit the {format} header (max {})",
                    format.max_vpi()
                )
            }
            AtmError::GfcOutOfRange { value, format } => {
                write!(f, "gfc {value:#x} invalid for {format} header")
            }
            AtmError::HecMismatch => write!(f, "header failed its hec check"),
            AtmError::CellLength { got } => {
                write!(f, "a cell is 53 octets, got {got}")
            }
            AtmError::NoRoute { vpi, vci } => {
                write!(f, "no switching-table entry for VPI={vpi}/VCI={vci}")
            }
            AtmError::RouteExists { vpi, vci } => {
                write!(
                    f,
                    "switching-table entry for VPI={vpi}/VCI={vci} already exists"
                )
            }
            AtmError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range for a {ports}-port device")
            }
            AtmError::Aal5 { reason } => write!(f, "aal5 reassembly failed: {reason}"),
            AtmError::Oam { reason } => write!(f, "oam cell rejected: {reason}"),
            AtmError::Signaling { reason } => write!(f, "signaling cell rejected: {reason}"),
            AtmError::UnknownConnection { vpi, vci } => {
                write!(f, "connection VPI={vpi}/VCI={vci} is not registered")
            }
        }
    }
}

impl std::error::Error for AtmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AtmError::VpiOutOfRange {
            value: 300,
            format: HeaderFormat::Uni,
        };
        assert_eq!(
            e.to_string(),
            "vpi 300 does not fit the UNI header (max 255)"
        );
        assert_eq!(
            AtmError::HecMismatch.to_string(),
            "header failed its hec check"
        );
        assert_eq!(
            AtmError::NoRoute { vpi: 1, vci: 2 }.to_string(),
            "no switching-table entry for VPI=1/VCI=2"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtmError>();
    }
}
