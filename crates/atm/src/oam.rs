//! OAM F5 cells: fault management on ATM connections.
//!
//! The paper targets "verification over several layers of functionality";
//! operations-and-maintenance flows are the layer directly above the cell
//! relay function and a standard target of conformance testing. This
//! module implements the ITU-T I.610 loopback mechanics: the OAM cell
//! payload layout (OAM type, function type, loopback indication,
//! correlation tag), the CRC-10 error check over the payload, and a
//! responder that turns incoming loopback requests around — the function a
//! switch's management block must implement and co-verification must
//! exercise.

use crate::addr::VpiVci;
use crate::cell::{AtmCell, CellHeader, PayloadType, PAYLOAD_OCTETS};
use crate::error::AtmError;

/// CRC-10 generator polynomial `x^10 + x^9 + x^5 + x^4 + x + 1` (I.610 /
/// I.432), the `x^10` term implicit.
pub const CRC10_POLY: u16 = 0x233;

/// Computes the CRC-10 over `data` (MSB first), returning the 10-bit
/// remainder.
#[must_use]
pub fn crc10(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &byte in data {
        crc ^= u16::from(byte) << 2;
        for _ in 0..8 {
            crc = if crc & 0x200 != 0 {
                ((crc << 1) ^ CRC10_POLY) & 0x3FF
            } else {
                (crc << 1) & 0x3FF
            };
        }
    }
    crc
}

/// OAM type field (upper nibble of payload octet 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OamType {
    /// Fault management (AIS, RDI, loopback, continuity check).
    FaultManagement,
    /// Performance management.
    PerformanceManagement,
    /// Activation/deactivation.
    ActivationDeactivation,
}

impl OamType {
    fn bits(self) -> u8 {
        match self {
            OamType::FaultManagement => 0b0001,
            OamType::PerformanceManagement => 0b0010,
            OamType::ActivationDeactivation => 0b1000,
        }
    }

    fn from_bits(bits: u8) -> Option<Self> {
        Some(match bits {
            0b0001 => OamType::FaultManagement,
            0b0010 => OamType::PerformanceManagement,
            0b1000 => OamType::ActivationDeactivation,
            _ => return None,
        })
    }
}

/// Fault-management function types (lower nibble of payload octet 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFunction {
    /// Alarm indication signal.
    Ais,
    /// Remote defect indication.
    Rdi,
    /// Continuity check.
    ContinuityCheck,
    /// Loopback.
    Loopback,
}

impl FaultFunction {
    fn bits(self) -> u8 {
        match self {
            FaultFunction::Ais => 0b0000,
            FaultFunction::Rdi => 0b0001,
            FaultFunction::ContinuityCheck => 0b0100,
            FaultFunction::Loopback => 0b1000,
        }
    }

    fn from_bits(bits: u8) -> Option<Self> {
        Some(match bits {
            0b0000 => FaultFunction::Ais,
            0b0001 => FaultFunction::Rdi,
            0b0100 => FaultFunction::ContinuityCheck,
            0b1000 => FaultFunction::Loopback,
            _ => return None,
        })
    }
}

/// A decoded F5 loopback cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopbackCell {
    /// The connection the flow belongs to.
    pub conn: VpiVci,
    /// `true` for end-to-end F5 (PT 101), `false` for segment (PT 100).
    pub end_to_end: bool,
    /// `true` while the cell still awaits loopback (cleared by the
    /// loopback point).
    pub loopback_indication: bool,
    /// Correlates responses with requests.
    pub correlation_tag: u32,
}

impl LoopbackCell {
    /// Builds a loopback *request* cell.
    #[must_use]
    pub fn request(conn: VpiVci, end_to_end: bool, correlation_tag: u32) -> Self {
        LoopbackCell {
            conn,
            end_to_end,
            loopback_indication: true,
            correlation_tag,
        }
    }

    /// Encodes into a full ATM cell with CRC-10.
    #[must_use]
    pub fn encode(&self) -> AtmCell {
        let mut payload = [0x6A; PAYLOAD_OCTETS];
        payload[0] = (OamType::FaultManagement.bits() << 4) | FaultFunction::Loopback.bits();
        payload[1] = u8::from(self.loopback_indication);
        payload[2..6].copy_from_slice(&self.correlation_tag.to_be_bytes());
        // Loopback location ID (6..22): all-ones = end point.
        for b in &mut payload[6..22] {
            *b = 0xFF;
        }
        // CRC-10 over the payload with the CRC field zeroed.
        payload[46] = 0;
        payload[47] = 0;
        let crc = crc10(&payload);
        payload[46] = (crc >> 8) as u8;
        payload[47] = (crc & 0xFF) as u8;
        AtmCell::with_header(
            CellHeader {
                gfc: 0,
                id: self.conn,
                pt: if self.end_to_end {
                    PayloadType::OamEndToEnd
                } else {
                    PayloadType::OamSegment
                },
                clp: false,
            },
            payload,
        )
    }

    /// Decodes an OAM cell; checks PT, OAM/function types and the CRC-10.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::Oam`] with the failed check's reason.
    pub fn decode(cell: &AtmCell) -> Result<Self, AtmError> {
        let end_to_end = match cell.header.pt {
            PayloadType::OamEndToEnd => true,
            PayloadType::OamSegment => false,
            _ => {
                return Err(AtmError::Oam {
                    reason: "payload type is not an f5 oam flow",
                })
            }
        };
        let mut check = cell.payload;
        let stored = (u16::from(check[46]) << 8) | u16::from(check[47]);
        check[46] = 0;
        check[47] = 0;
        if crc10(&check) != stored & 0x3FF {
            return Err(AtmError::Oam {
                reason: "crc-10 mismatch",
            });
        }
        let oam = OamType::from_bits(cell.payload[0] >> 4).ok_or(AtmError::Oam {
            reason: "unknown oam type",
        })?;
        if oam != OamType::FaultManagement {
            return Err(AtmError::Oam {
                reason: "not a fault-management cell",
            });
        }
        let func = FaultFunction::from_bits(cell.payload[0] & 0x0F).ok_or(AtmError::Oam {
            reason: "unknown function type",
        })?;
        if func != FaultFunction::Loopback {
            return Err(AtmError::Oam {
                reason: "not a loopback cell",
            });
        }
        Ok(LoopbackCell {
            conn: cell.id(),
            end_to_end,
            loopback_indication: cell.payload[1] & 1 == 1,
            correlation_tag: u32::from_be_bytes([
                cell.payload[2],
                cell.payload[3],
                cell.payload[4],
                cell.payload[5],
            ]),
        })
    }
}

/// The loopback point: answers requests by clearing the indication and
/// sending the cell back; drops everything else. Tracks round trips seen.
#[derive(Debug, Default, Clone)]
pub struct LoopbackResponder {
    requests_answered: u64,
    responses_seen: u64,
    errors: u64,
}

impl LoopbackResponder {
    /// Creates a responder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one OAM cell: a request produces the response cell to send
    /// back; a response (indication already cleared) is absorbed.
    pub fn process(&mut self, cell: &AtmCell) -> Option<AtmCell> {
        match LoopbackCell::decode(cell) {
            Ok(lb) if lb.loopback_indication => {
                self.requests_answered += 1;
                let response = LoopbackCell {
                    loopback_indication: false,
                    ..lb
                };
                Some(response.encode())
            }
            Ok(_) => {
                self.responses_seen += 1;
                None
            }
            Err(_) => {
                self.errors += 1;
                None
            }
        }
    }

    /// Requests answered so far.
    #[must_use]
    pub fn requests_answered(&self) -> u64 {
        self.requests_answered
    }

    /// Responses absorbed so far.
    #[must_use]
    pub fn responses_seen(&self) -> u64 {
        self.responses_seen
    }

    /// Malformed OAM cells seen.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> VpiVci {
        VpiVci::uni(1, 42).unwrap()
    }

    #[test]
    fn crc10_known_properties() {
        assert_eq!(crc10(&[]), 0);
        // Appending the CRC (as two bytes, 10 bits right-aligned) gives
        // remainder 0 when recomputed over data with CRC field semantics —
        // checked via the encode/decode roundtrip below. Distinctness:
        assert_ne!(crc10(b"123456789"), crc10(b"123456788"));
        // Stability check against an independently computed value.
        assert_eq!(crc10(b"123456789"), 0x199);
    }

    #[test]
    fn loopback_roundtrip() {
        let lb = LoopbackCell::request(conn(), true, 0xDEAD_BEEF);
        let cell = lb.encode();
        assert_eq!(cell.header.pt, PayloadType::OamEndToEnd);
        let back = LoopbackCell::decode(&cell).unwrap();
        assert_eq!(back, lb);
    }

    #[test]
    fn segment_flow_uses_pt_100() {
        let cell = LoopbackCell::request(conn(), false, 7).encode();
        assert_eq!(cell.header.pt, PayloadType::OamSegment);
        assert!(!LoopbackCell::decode(&cell).unwrap().end_to_end);
    }

    #[test]
    fn corrupted_payload_fails_crc10() {
        let mut cell = LoopbackCell::request(conn(), true, 1).encode();
        cell.payload[10] ^= 0x20;
        assert!(matches!(
            LoopbackCell::decode(&cell),
            Err(AtmError::Oam {
                reason: "crc-10 mismatch"
            })
        ));
    }

    #[test]
    fn user_cells_are_not_loopback() {
        let user = AtmCell::user_data(conn(), [0; PAYLOAD_OCTETS]);
        assert!(matches!(
            LoopbackCell::decode(&user),
            Err(AtmError::Oam {
                reason: "payload type is not an f5 oam flow"
            })
        ));
    }

    #[test]
    fn responder_answers_requests_once() {
        let mut responder = LoopbackResponder::new();
        let request = LoopbackCell::request(conn(), true, 42).encode();
        let response = responder.process(&request).expect("request answered");
        let decoded = LoopbackCell::decode(&response).unwrap();
        assert!(!decoded.loopback_indication);
        assert_eq!(decoded.correlation_tag, 42);
        // Feeding the response back: absorbed, not re-answered.
        assert!(responder.process(&response).is_none());
        assert_eq!(responder.requests_answered(), 1);
        assert_eq!(responder.responses_seen(), 1);
    }

    #[test]
    fn responder_counts_malformed_cells() {
        let mut responder = LoopbackResponder::new();
        let mut bad = LoopbackCell::request(conn(), true, 1).encode();
        bad.payload[46] ^= 0xFF;
        assert!(responder.process(&bad).is_none());
        assert_eq!(responder.errors(), 1);
    }

    #[test]
    fn full_round_trip_correlation() {
        // Originator sends request with tag; loopback point responds; the
        // originator matches the tag.
        let mut responder = LoopbackResponder::new();
        let mut originator_pending = std::collections::HashSet::new();
        for tag in [1u32, 2, 3] {
            originator_pending.insert(tag);
            let req = LoopbackCell::request(conn(), true, tag).encode();
            let resp = responder.process(&req).expect("answered");
            let lb = LoopbackCell::decode(&resp).unwrap();
            assert!(originator_pending.remove(&lb.correlation_tag));
        }
        assert!(originator_pending.is_empty());
    }
}
