//! The ATM accounting unit — reference model of the paper's case study.
//!
//! "We have used CASTANET for the functional verification of an ATM
//! accounting unit" (§4); the charging-algorithm background is the authors'
//! HLDVT'96 case study (reference [9]). The original ASIC is unpublished, so
//! this reference model defines a concrete, hardware-implementable charging
//! algorithm that the RTL twin in `castanet-rtl::dut` reproduces exactly:
//!
//! * per registered connection, every observed cell increments a cell
//!   counter and adds a per-cell tariff `weight` to the charge accumulator;
//! * a periodic *tariff interval* tick adds a `fixed` charge to every
//!   connection that was active (≥ 1 cell) during the elapsed interval and
//!   then re-arms the activity flag;
//! * cells of unregistered connections are counted separately
//!   (`unmatched`), never charged.
//!
//! All arithmetic is unsigned integer, saturating on overflow — exactly
//! what a silicon counter bank does.

use crate::addr::VpiVci;
use crate::error::AtmError;
use std::collections::BTreeMap;
use std::fmt;

/// Charging parameters of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tariff {
    /// Charge units added per conforming cell.
    pub weight: u32,
    /// Charge units added per tariff interval in which the connection was
    /// active.
    pub fixed: u32,
}

impl Tariff {
    /// A purely volume-based tariff.
    #[must_use]
    pub const fn per_cell(weight: u32) -> Self {
        Tariff { weight, fixed: 0 }
    }

    /// A purely time-based tariff.
    #[must_use]
    pub const fn per_interval(fixed: u32) -> Self {
        Tariff { weight: 0, fixed }
    }
}

/// Accumulated accounting state of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccountRecord {
    /// Total cells observed.
    pub cells: u64,
    /// Cells observed since the last interval tick.
    pub cells_this_interval: u64,
    /// Total charge units accumulated.
    pub charge: u64,
    /// Number of intervals in which the connection was active.
    pub active_intervals: u64,
}

/// The accounting unit reference model.
///
/// # Examples
///
/// ```
/// use castanet_atm::accounting::{AccountingUnit, Tariff};
/// use castanet_atm::addr::VpiVci;
///
/// let mut acc = AccountingUnit::new();
/// let conn = VpiVci::uni(1, 42)?;
/// acc.register(conn, Tariff { weight: 2, fixed: 100 })?;
/// acc.on_cell(conn);
/// acc.on_cell(conn);
/// acc.interval_tick();
/// let rec = acc.record(conn).expect("registered");
/// assert_eq!(rec.cells, 2);
/// assert_eq!(rec.charge, 2 * 2 + 100);
/// # Ok::<(), castanet_atm::error::AtmError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct AccountingUnit {
    accounts: BTreeMap<VpiVci, (Tariff, AccountRecord)>,
    unmatched: u64,
    intervals: u64,
}

impl AccountingUnit {
    /// Creates an empty accounting unit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a connection with its tariff.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::RouteExists`] when the connection is already
    /// registered (re-registration would silently discard charges).
    pub fn register(&mut self, conn: VpiVci, tariff: Tariff) -> Result<(), AtmError> {
        if self.accounts.contains_key(&conn) {
            return Err(AtmError::RouteExists {
                vpi: conn.vpi.value(),
                vci: conn.vci.value(),
            });
        }
        self.accounts
            .insert(conn, (tariff, AccountRecord::default()));
        Ok(())
    }

    /// Deregisters a connection, returning its final record.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::UnknownConnection`] when not registered.
    pub fn deregister(&mut self, conn: VpiVci) -> Result<AccountRecord, AtmError> {
        self.accounts
            .remove(&conn)
            .map(|(_, rec)| rec)
            .ok_or(AtmError::UnknownConnection {
                vpi: conn.vpi.value(),
                vci: conn.vci.value(),
            })
    }

    /// Accounts one observed cell of `conn`. Unregistered connections are
    /// tallied in [`AccountingUnit::unmatched`].
    pub fn on_cell(&mut self, conn: VpiVci) {
        match self.accounts.get_mut(&conn) {
            Some((tariff, rec)) => {
                rec.cells = rec.cells.saturating_add(1);
                rec.cells_this_interval = rec.cells_this_interval.saturating_add(1);
                rec.charge = rec.charge.saturating_add(u64::from(tariff.weight));
            }
            None => self.unmatched = self.unmatched.saturating_add(1),
        }
    }

    /// Applies the periodic tariff tick: every connection active during the
    /// elapsed interval is charged its fixed rate; activity flags reset.
    pub fn interval_tick(&mut self) {
        self.intervals += 1;
        for (tariff, rec) in self.accounts.values_mut() {
            if rec.cells_this_interval > 0 {
                rec.charge = rec.charge.saturating_add(u64::from(tariff.fixed));
                rec.active_intervals += 1;
            }
            rec.cells_this_interval = 0;
        }
    }

    /// The record of a registered connection.
    #[must_use]
    pub fn record(&self, conn: VpiVci) -> Option<AccountRecord> {
        self.accounts.get(&conn).map(|(_, rec)| *rec)
    }

    /// The tariff of a registered connection.
    #[must_use]
    pub fn tariff(&self, conn: VpiVci) -> Option<Tariff> {
        self.accounts.get(&conn).map(|(t, _)| *t)
    }

    /// Cells observed on connections nobody registered.
    #[must_use]
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Number of interval ticks applied.
    #[must_use]
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of registered connections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// `true` when no connection is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Iterates `(connection, tariff, record)` in connection order —
    /// the "charging data records" a billing system would collect.
    pub fn iter(&self) -> impl Iterator<Item = (VpiVci, Tariff, AccountRecord)> + '_ {
        self.accounts.iter().map(|(c, (t, r))| (*c, *t, *r))
    }
}

impl fmt::Display for AccountingUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accounting unit: {} connections, {} intervals, {} unmatched cells",
            self.accounts.len(),
            self.intervals,
            self.unmatched
        )?;
        for (conn, _tariff, rec) in self.iter() {
            writeln!(
                f,
                "  {conn}: {} cells, {} units ({} active intervals)",
                rec.cells, rec.charge, rec.active_intervals
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(vpi: u16, vci: u16) -> VpiVci {
        VpiVci::uni(vpi, vci).unwrap()
    }

    #[test]
    fn volume_charging() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_cell(3)).unwrap();
        for _ in 0..7 {
            acc.on_cell(id(1, 40));
        }
        let rec = acc.record(id(1, 40)).unwrap();
        assert_eq!(rec.cells, 7);
        assert_eq!(rec.charge, 21);
        assert_eq!(rec.active_intervals, 0);
    }

    #[test]
    fn interval_charging_only_when_active() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_interval(10)).unwrap();
        acc.register(id(1, 41), Tariff::per_interval(10)).unwrap();
        acc.on_cell(id(1, 40));
        acc.interval_tick();
        // Second interval: nobody active.
        acc.interval_tick();
        assert_eq!(acc.record(id(1, 40)).unwrap().charge, 10);
        assert_eq!(acc.record(id(1, 40)).unwrap().active_intervals, 1);
        assert_eq!(acc.record(id(1, 41)).unwrap().charge, 0);
        assert_eq!(acc.intervals(), 2);
    }

    #[test]
    fn mixed_tariff_accumulates_both_parts() {
        let mut acc = AccountingUnit::new();
        acc.register(
            id(2, 50),
            Tariff {
                weight: 1,
                fixed: 5,
            },
        )
        .unwrap();
        for _ in 0..4 {
            acc.on_cell(id(2, 50));
        }
        acc.interval_tick();
        acc.on_cell(id(2, 50));
        acc.interval_tick();
        let rec = acc.record(id(2, 50)).unwrap();
        assert_eq!(rec.cells, 5);
        assert_eq!(rec.charge, 5 + 2 * 5);
        assert_eq!(rec.active_intervals, 2);
    }

    #[test]
    fn interval_resets_activity_window() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_cell(1)).unwrap();
        acc.on_cell(id(1, 40));
        assert_eq!(acc.record(id(1, 40)).unwrap().cells_this_interval, 1);
        acc.interval_tick();
        assert_eq!(acc.record(id(1, 40)).unwrap().cells_this_interval, 0);
        assert_eq!(acc.record(id(1, 40)).unwrap().cells, 1);
    }

    #[test]
    fn unmatched_cells_counted_not_charged() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_cell(9)).unwrap();
        acc.on_cell(id(1, 41));
        acc.on_cell(id(1, 41));
        assert_eq!(acc.unmatched(), 2);
        assert_eq!(acc.record(id(1, 40)).unwrap().charge, 0);
        assert_eq!(acc.record(id(1, 41)), None);
    }

    #[test]
    fn double_registration_rejected() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_cell(1)).unwrap();
        assert!(matches!(
            acc.register(id(1, 40), Tariff::per_cell(2)),
            Err(AtmError::RouteExists { .. })
        ));
        // The original tariff is preserved.
        assert_eq!(acc.tariff(id(1, 40)), Some(Tariff::per_cell(1)));
    }

    #[test]
    fn deregister_returns_final_record() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_cell(2)).unwrap();
        acc.on_cell(id(1, 40));
        let rec = acc.deregister(id(1, 40)).unwrap();
        assert_eq!(rec.charge, 2);
        assert!(acc.is_empty());
        assert!(matches!(
            acc.deregister(id(1, 40)),
            Err(AtmError::UnknownConnection { .. })
        ));
    }

    #[test]
    fn iter_is_ordered_by_connection() {
        let mut acc = AccountingUnit::new();
        acc.register(id(2, 1), Tariff::per_cell(1)).unwrap();
        acc.register(id(1, 9), Tariff::per_cell(1)).unwrap();
        let conns: Vec<VpiVci> = acc.iter().map(|(c, _, _)| c).collect();
        assert_eq!(conns, vec![id(1, 9), id(2, 1)]);
    }

    #[test]
    fn display_reports_records() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_cell(1)).unwrap();
        acc.on_cell(id(1, 40));
        let s = acc.to_string();
        assert!(s.contains("1 connections"));
        assert!(s.contains("VPI=1/VCI=40: 1 cells, 1 units"));
    }

    #[test]
    fn saturation_instead_of_overflow() {
        let mut acc = AccountingUnit::new();
        acc.register(id(1, 40), Tariff::per_cell(u32::MAX)).unwrap();
        // Force the accumulator close to the limit via direct cells.
        for _ in 0..3 {
            acc.on_cell(id(1, 40));
        }
        // No panic; charge grows monotonically.
        let rec = acc.record(id(1, 40)).unwrap();
        assert_eq!(rec.charge, 3 * u64::from(u32::MAX));
    }
}
