//! The ATM switch reference model: port modules plus a global control unit.
//!
//! The paper's headline workload is "an ATM switch consisting of four port
//! modules, one global control unit" (§2). This module provides that switch
//! as an *algorithm reference model* in the network simulator:
//!
//! * [`RoutingTable`] — the shared VPI/VCI translation table;
//! * [`PortModuleProcess`] — one per line: ingress policing (GCRA),
//!   header translation, fabric forwarding, and an output queue served at
//!   line rate;
//! * [`GlobalControlProcess`] — connection admission, table management and
//!   the sink for unroutable/signalling cells;
//! * [`SwitchNode`] — a builder wiring `N` port modules and the control unit
//!   into one node-domain device.
//!
//! The RTL implementation in `castanet-rtl::dut` realizes the same function
//! at clock level; co-verification compares the two.

use crate::addr::VpiVci;
use crate::cell::{AtmCell, CELL_BITS};
use crate::discard::{DiscardPolicy, DiscardQueue, Verdict};
use crate::error::AtmError;
use crate::gcra::{Conformance, Gcra};
use crate::oam::LoopbackResponder;
use crate::signaling::{CacAgent, SigMessage};
use crate::traffic::source::ATM_CELL_FORMAT;
use castanet_netsim::event::{ModuleId, NodeId, PortId};
use castanet_netsim::kernel::{Ctx, Kernel};
use castanet_netsim::packet::Packet;
use castanet_netsim::process::Process;
use castanet_netsim::time::SimDuration;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// One translation entry: where a connection leaves the switch and under
/// which new identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Egress port index.
    pub out_port: usize,
    /// Identifier the cell carries on the egress line.
    pub out_id: VpiVci,
}

/// The VPI/VCI translation table shared by all port modules. Interior
/// mutability (an `RwLock`) models the table memory both the port hardware
/// and the control unit access.
#[derive(Debug, Default)]
pub struct RoutingTable {
    entries: RwLock<HashMap<VpiVci, RouteEntry>>,
}

impl RoutingTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a route.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::RouteExists`] when `conn` already has an entry.
    ///
    /// # Panics
    ///
    /// Panics if the table lock is poisoned.
    pub fn install(&self, conn: VpiVci, entry: RouteEntry) -> Result<(), AtmError> {
        let mut map = self.entries.write().expect("routing table lock poisoned");
        if map.contains_key(&conn) {
            return Err(AtmError::RouteExists {
                vpi: conn.vpi.value(),
                vci: conn.vci.value(),
            });
        }
        map.insert(conn, entry);
        Ok(())
    }

    /// Removes a route, returning its entry if present.
    ///
    /// # Panics
    ///
    /// Panics if the table lock is poisoned.
    pub fn remove(&self, conn: VpiVci) -> Option<RouteEntry> {
        self.entries
            .write()
            .expect("routing table lock poisoned")
            .remove(&conn)
    }

    /// Looks up the route for `conn`.
    ///
    /// # Panics
    ///
    /// Panics if the table lock is poisoned.
    #[must_use]
    pub fn lookup(&self, conn: VpiVci) -> Option<RouteEntry> {
        self.entries
            .read()
            .expect("routing table lock poisoned")
            .get(&conn)
            .copied()
    }

    /// Number of installed routes.
    ///
    /// # Panics
    ///
    /// Panics if the table lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("routing table lock poisoned")
            .len()
    }

    /// `true` when no routes are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared per-switch counters, readable after the run.
#[derive(Debug, Default)]
pub struct SwitchStats {
    inner: Mutex<SwitchCounters>,
}

/// Raw counter block of [`SwitchStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Cells that arrived on ingress lines.
    pub received: u64,
    /// Cells forwarded to an egress queue.
    pub switched: u64,
    /// Cells dropped by UPC policing.
    pub policed: u64,
    /// Cells without a routing entry (handed to the control unit).
    pub unroutable: u64,
    /// Cells dropped because an egress queue overflowed.
    pub queue_dropped: u64,
    /// Cells transmitted on egress lines.
    pub transmitted: u64,
    /// OAM loopback requests answered by the control unit.
    pub oam_answered: u64,
    /// Signaling messages answered by the control unit.
    pub signaling_answered: u64,
}

impl SwitchStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the counters.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> SwitchCounters {
        *self.inner.lock().expect("switch stats lock poisoned")
    }

    fn update(&self, f: impl FnOnce(&mut SwitchCounters)) {
        f(&mut self.inner.lock().expect("switch stats lock poisoned"));
    }
}

/// Port layout of a [`PortModuleProcess`] with `n` fabric peers:
///
/// * input 0 / output 0 — the external line;
/// * inputs/outputs 1..=n — fabric connections to the other port modules
///   (peer `k` for the module's view of egress port `k`, skipping itself);
/// * output n+1 — stream to the global control unit.
const LINE: PortId = PortId(0);

fn interrupt_code_tx() -> u32 {
    1
}

/// A switch port module: UPC, header translation, fabric forwarding and a
/// line-rate egress queue.
pub struct PortModuleProcess {
    index: usize,
    ports: usize,
    table: Arc<RoutingTable>,
    stats: Arc<SwitchStats>,
    policers: HashMap<VpiVci, Gcra>,
    egress: DiscardQueue,
    cell_time: SimDuration,
    transmitting: bool,
}

impl std::fmt::Debug for PortModuleProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortModuleProcess")
            .field("index", &self.index)
            .field("egress_depth", &self.egress.len())
            .finish()
    }
}

impl PortModuleProcess {
    /// Creates port module `index` of a switch with `ports` lines.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ports` or `egress_capacity` is zero.
    #[must_use]
    pub fn new(
        index: usize,
        ports: usize,
        table: Arc<RoutingTable>,
        stats: Arc<SwitchStats>,
        cell_time: SimDuration,
        egress_capacity: usize,
    ) -> Self {
        Self::with_policy(
            index,
            ports,
            table,
            stats,
            cell_time,
            egress_capacity,
            DiscardPolicy::DropTail,
        )
    }

    /// Like [`PortModuleProcess::new`] with an explicit egress buffer
    /// acceptance policy (CLP-selective or AAL5 frame-aware discard).
    ///
    /// # Panics
    ///
    /// Panics if `index >= ports` or the capacity/policy pair is invalid.
    #[must_use]
    pub fn with_policy(
        index: usize,
        ports: usize,
        table: Arc<RoutingTable>,
        stats: Arc<SwitchStats>,
        cell_time: SimDuration,
        egress_capacity: usize,
        policy: DiscardPolicy,
    ) -> Self {
        assert!(
            index < ports,
            "port index {index} out of range for {ports} ports"
        );
        PortModuleProcess {
            index,
            ports,
            table,
            stats,
            policers: HashMap::new(),
            egress: DiscardQueue::new(egress_capacity, policy),
            cell_time,
            transmitting: false,
        }
    }

    /// Registers a UPC policer for a connection entering on this port.
    pub fn add_policer(&mut self, conn: VpiVci, gcra: Gcra) {
        self.policers.insert(conn, gcra);
    }

    /// The fabric output port on *this* module leading to egress module
    /// `egress_index`.
    fn fabric_out(&self, egress_index: usize) -> PortId {
        debug_assert_ne!(egress_index, self.index, "no self fabric port");
        // Outputs 1..ports map to peers in index order, skipping self.
        let slot = if egress_index < self.index {
            egress_index
        } else {
            egress_index - 1
        };
        PortId(1 + slot)
    }

    fn gcu_out(&self) -> PortId {
        PortId(self.ports) // 1 + (ports-1) fabric slots, then the GCU stream
    }

    fn handle_line_cell(&mut self, ctx: &mut Ctx, mut cell: AtmCell) {
        self.stats.update(|c| c.received += 1);
        if let Some(gcra) = self.policers.get_mut(&cell.id()) {
            if gcra.arrival(ctx.now()) == Conformance::NonConforming {
                self.stats.update(|c| c.policed += 1);
                return;
            }
        }
        if let Some(entry) = self.table.lookup(cell.id()) {
            cell.retag(entry.out_id);
            self.stats.update(|c| c.switched += 1);
            if entry.out_port == self.index {
                self.enqueue_egress(ctx, cell);
            } else {
                let out = self.fabric_out(entry.out_port);
                ctx.send(
                    out,
                    Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(cell),
                )
                .expect("fabric port must be wired");
            }
        } else {
            self.stats.update(|c| c.unroutable += 1);
            ctx.send(
                self.gcu_out(),
                Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(cell),
            )
            .expect("gcu stream must be wired");
        }
    }

    fn enqueue_egress(&mut self, ctx: &mut Ctx, cell: AtmCell) {
        if let Verdict::Dropped(_) = self.egress.offer(cell) {
            self.stats.update(|c| c.queue_dropped += 1);
            return;
        }
        if !self.transmitting {
            self.transmitting = true;
            ctx.schedule_self(self.cell_time, interrupt_code_tx())
                .expect("tx scheduling cannot fail");
        }
    }

    fn transmit_one(&mut self, ctx: &mut Ctx) {
        if let Some(cell) = self.egress.pop() {
            self.stats.update(|c| c.transmitted += 1);
            ctx.send(
                LINE,
                Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(cell),
            )
            .expect("line out must be wired");
        }
        if self.egress.is_empty() {
            self.transmitting = false;
        } else {
            ctx.schedule_self(self.cell_time, interrupt_code_tx())
                .expect("tx scheduling cannot fail");
        }
    }
}

impl Process for PortModuleProcess {
    fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet) {
        let Ok(cell) = packet.into_payload::<AtmCell>() else {
            return; // non-cell packets are ignored by the data path
        };
        if port == LINE {
            self.handle_line_cell(ctx, cell);
        } else {
            // Fabric arrival: already translated; queue for the line.
            self.enqueue_egress(ctx, cell);
        }
    }

    fn on_interrupt(&mut self, ctx: &mut Ctx, code: u32) {
        if code == interrupt_code_tx() {
            self.transmit_one(ctx);
        }
    }
}

/// The global control unit: owns the routing table, performs connection
/// admission, and absorbs unroutable and signalling cells.
pub struct GlobalControlProcess {
    table: Arc<RoutingTable>,
    stats: Arc<SwitchStats>,
    absorbed: u64,
    pending_admissions: Vec<(VpiVci, RouteEntry)>,
    loopback: LoopbackResponder,
    answer_loopback: bool,
    cac: Option<CacAgent>,
    ports: usize,
}

impl std::fmt::Debug for GlobalControlProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalControlProcess")
            .field("absorbed", &self.absorbed)
            .finish()
    }
}

impl GlobalControlProcess {
    /// Creates the control unit over a shared table.
    #[must_use]
    pub fn new(table: Arc<RoutingTable>, stats: Arc<SwitchStats>) -> Self {
        GlobalControlProcess {
            table,
            stats,
            absorbed: 0,
            pending_admissions: Vec::new(),
            loopback: LoopbackResponder::new(),
            answer_loopback: false,
            cac: None,
            ports: 0,
        }
    }

    /// Enables the call-admission-control agent: signaling cells (VCI 5)
    /// reaching the control unit are processed per
    /// [`crate::signaling::CacAgent`], installing and removing routes
    /// dynamically; answers leave on the ingress line.
    #[must_use]
    pub fn with_cac(mut self, ports: usize, budget_pcr: u64) -> Self {
        self.cac = Some(CacAgent::new(Arc::clone(&self.table), ports, budget_pcr));
        self.ports = ports;
        self
    }

    /// Enables OAM F5 loopback handling: requests reaching the control
    /// unit are answered back out of the port they arrived on (the unit's
    /// output `i` must be wired toward port module `i`; `SwitchNode` does
    /// this automatically).
    #[must_use]
    pub fn answering_loopback(mut self) -> Self {
        self.answer_loopback = true;
        self
    }

    /// Queues a connection admission that the unit will install at
    /// simulation start (models signalling that completed before the
    /// measurement window).
    #[must_use]
    pub fn with_admission(mut self, conn: VpiVci, entry: RouteEntry) -> Self {
        self.pending_admissions.push((conn, entry));
        self
    }
}

impl Process for GlobalControlProcess {
    fn init(&mut self, _ctx: &mut Ctx) {
        for (conn, entry) in self.pending_admissions.drain(..) {
            self.table
                .install(conn, entry)
                .expect("pre-run admissions must not conflict");
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx, port: PortId, packet: Packet) {
        self.absorbed += 1;
        let Some(cell) = packet.payload::<AtmCell>() else {
            return;
        };
        // Control-plane traffic: signaling first, then OAM loopback.
        if let Some(agent) = &mut self.cac {
            if SigMessage::is_signaling(cell) {
                if let Ok(msg) = SigMessage::decode(cell) {
                    if let Some(answer) = agent.handle(msg) {
                        self.stats.update(|c| c.signaling_answered += 1);
                        let vpi = cell.id().vpi.value();
                        let answer_cell = answer
                            .encode(vpi)
                            .expect("answer identifiers fit the UNI header");
                        ctx.send(
                            port,
                            Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(answer_cell),
                        )
                        .expect("control unit reverse path must be wired");
                    }
                }
                return;
            }
        }
        if !self.answer_loopback {
            return;
        }
        if let Some(response) = self.loopback.process(cell) {
            self.stats.update(|c| c.oam_answered += 1);
            // Send the answer back toward the line it came from.
            ctx.send(
                port,
                Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(response),
            )
            .expect("control unit reverse path must be wired");
        }
    }
}

/// Handle to a switch built by [`SwitchNode::build`]: the module ids a
/// caller needs for wiring lines, plus the shared table and counters.
#[derive(Debug)]
pub struct SwitchHandle {
    /// The node that contains the switch.
    pub node: NodeId,
    /// Port-module ids, index `i` = line `i`.
    pub port_modules: Vec<ModuleId>,
    /// The global control unit module.
    pub control_unit: ModuleId,
    /// The shared translation table.
    pub table: Arc<RoutingTable>,
    /// The shared counters.
    pub stats: Arc<SwitchStats>,
}

/// Builder for an `N`-port switch node in a [`Kernel`].
#[derive(Debug)]
pub struct SwitchNode {
    ports: usize,
    cell_time: SimDuration,
    egress_capacity: usize,
    egress_policy: DiscardPolicy,
    answer_loopback: bool,
    cac_budget: Option<u64>,
    admissions: Vec<(VpiVci, RouteEntry)>,
    policers: Vec<(usize, VpiVci, Gcra)>,
}

impl SwitchNode {
    /// A switch with `ports` lines and the given egress cell time
    /// (line rate).
    ///
    /// # Panics
    ///
    /// Panics if `ports < 2` or `cell_time` is zero.
    #[must_use]
    pub fn new(ports: usize, cell_time: SimDuration) -> Self {
        assert!(ports >= 2, "a switch needs at least two ports");
        assert!(!cell_time.is_zero(), "cell time must be non-zero");
        SwitchNode {
            ports,
            cell_time,
            egress_capacity: 128,
            egress_policy: DiscardPolicy::DropTail,
            answer_loopback: false,
            cac_budget: None,
            admissions: Vec::new(),
            policers: Vec::new(),
        }
    }

    /// Sets the egress buffer acceptance policy (default drop-tail).
    #[must_use]
    pub fn with_egress_policy(mut self, policy: DiscardPolicy) -> Self {
        self.egress_policy = policy;
        self
    }

    /// Makes the control unit answer OAM F5 loopback requests.
    #[must_use]
    pub fn answering_loopback(mut self) -> Self {
        self.answer_loopback = true;
        self
    }

    /// Enables call admission control with a total PCR budget: signaling
    /// cells on VCI 5 install/remove routes dynamically.
    #[must_use]
    pub fn with_cac(mut self, budget_pcr: u64) -> Self {
        self.cac_budget = Some(budget_pcr);
        self
    }

    /// Overrides the egress queue capacity (cells per port; default 128).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    #[must_use]
    pub fn with_egress_capacity(mut self, cells: usize) -> Self {
        assert!(cells > 0, "egress capacity must be non-zero");
        self.egress_capacity = cells;
        self
    }

    /// Pre-admits a connection (installed by the control unit at start).
    ///
    /// # Panics
    ///
    /// Panics if `out_port` is out of range.
    #[must_use]
    pub fn with_route(mut self, conn: VpiVci, out_port: usize, out_id: VpiVci) -> Self {
        assert!(out_port < self.ports, "out_port {out_port} out of range");
        self.admissions
            .push((conn, RouteEntry { out_port, out_id }));
        self
    }

    /// Adds a UPC policer on ingress port `port` for `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    #[must_use]
    pub fn with_policer(mut self, port: usize, conn: VpiVci, gcra: Gcra) -> Self {
        assert!(port < self.ports, "port {port} out of range");
        self.policers.push((port, conn, gcra));
        self
    }

    /// Instantiates the switch in `kernel` under `name`, wiring the fabric
    /// and control streams. Line ports (input/output 0 of each port module)
    /// are left for the caller to connect.
    pub fn build(self, kernel: &mut Kernel, name: &str) -> SwitchHandle {
        let node = kernel.add_node(name);
        let table = Arc::new(RoutingTable::new());
        let stats = Arc::new(SwitchStats::new());

        let mut gcu = GlobalControlProcess::new(Arc::clone(&table), Arc::clone(&stats));
        if self.answer_loopback {
            gcu = gcu.answering_loopback();
        }
        if let Some(budget) = self.cac_budget {
            gcu = gcu.with_cac(self.ports, budget);
        }
        for (conn, entry) in self.admissions {
            gcu = gcu.with_admission(conn, entry);
        }

        let mut port_processes: Vec<PortModuleProcess> = (0..self.ports)
            .map(|i| {
                PortModuleProcess::with_policy(
                    i,
                    self.ports,
                    Arc::clone(&table),
                    Arc::clone(&stats),
                    self.cell_time,
                    self.egress_capacity,
                    self.egress_policy,
                )
            })
            .collect();
        for (port, conn, gcra) in self.policers {
            port_processes[port].add_policer(conn, gcra);
        }

        let port_modules: Vec<ModuleId> = port_processes
            .into_iter()
            .enumerate()
            .map(|(i, p)| kernel.add_module(node, format!("port{i}"), Box::new(p)))
            .collect();
        let control_unit = kernel.add_module(node, "gcu", Box::new(gcu));

        // Fabric wiring: output slot of i toward j connects to an input port
        // on j. Fabric inputs on j use the same slot numbering as outputs,
        // so any input port != 0 is "from fabric"; exact index is irrelevant
        // to the receiving module but must be unique per source.
        for i in 0..self.ports {
            for j in 0..self.ports {
                if i == j {
                    continue;
                }
                let out_slot = if j < i { j } else { j - 1 };
                let in_slot = if i < j { i } else { i - 1 };
                kernel
                    .connect_stream(
                        port_modules[i],
                        PortId(1 + out_slot),
                        port_modules[j],
                        PortId(1 + in_slot),
                    )
                    .expect("fabric wiring cannot conflict");
            }
            kernel
                .connect_stream(port_modules[i], PortId(self.ports), control_unit, PortId(i))
                .expect("gcu wiring cannot conflict");
            // Reverse path: the control unit can queue management responses
            // (e.g. OAM loopback answers) onto port i's egress line.
            kernel
                .connect_stream(control_unit, PortId(i), port_modules[i], PortId(self.ports))
                .expect("gcu reverse wiring cannot conflict");
        }

        SwitchHandle {
            node,
            port_modules,
            control_unit,
            table,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::PAYLOAD_OCTETS;
    use crate::traffic::source::{payload_seq, sequenced_payload, TrafficSourceProcess};
    use crate::traffic::Cbr;
    use castanet_netsim::process::CollectorProcess;
    use castanet_netsim::time::SimTime;

    fn id(vpi: u16, vci: u16) -> VpiVci {
        VpiVci::uni(vpi, vci).unwrap()
    }

    #[test]
    fn routing_table_crud() {
        let t = RoutingTable::new();
        assert!(t.is_empty());
        let e = RouteEntry {
            out_port: 2,
            out_id: id(9, 99),
        };
        t.install(id(1, 40), e).unwrap();
        assert_eq!(t.lookup(id(1, 40)), Some(e));
        assert_eq!(t.len(), 1);
        assert!(matches!(
            t.install(id(1, 40), e),
            Err(AtmError::RouteExists { vpi: 1, vci: 40 })
        ));
        assert_eq!(t.remove(id(1, 40)), Some(e));
        assert_eq!(t.lookup(id(1, 40)), None);
    }

    /// Builds a 4-port switch with a CBR source on port 0 routed to port 2,
    /// and collectors on every egress line.
    fn switch_fixture(
        routes: Vec<(VpiVci, usize, VpiVci)>,
        policer: Option<(usize, VpiVci, Gcra)>,
        cells: u64,
        rate_interval: SimDuration,
    ) -> (
        Kernel,
        SwitchHandle,
        Vec<castanet_netsim::process::CollectorHandle>,
    ) {
        let mut kernel = Kernel::new(3);
        let mut sw = SwitchNode::new(4, SimDuration::from_us(1));
        for (conn, port, out) in routes {
            sw = sw.with_route(conn, port, out);
        }
        if let Some((port, conn, g)) = policer {
            sw = sw.with_policer(port, conn, g);
        }
        let handle = sw.build(&mut kernel, "switch");

        let src_node = kernel.add_node("sources");
        let src = kernel.add_module(
            src_node,
            "cbr",
            Box::new(
                TrafficSourceProcess::new(id(1, 40), Box::new(Cbr::new(rate_interval)))
                    .with_limit(cells),
            ),
        );
        kernel
            .connect_stream(src, PortId(0), handle.port_modules[0], LINE)
            .unwrap();

        let sink_node = kernel.add_node("sinks");
        let mut handles = Vec::new();
        for (i, &pm) in handle.port_modules.iter().enumerate() {
            let (c, h) = CollectorProcess::new();
            let m = kernel.add_module(sink_node, format!("sink{i}"), Box::new(c));
            kernel.connect_stream(pm, LINE, m, PortId(0)).unwrap();
            handles.push(h);
        }
        (kernel, handle, handles)
    }

    #[test]
    fn cells_are_switched_and_retagged() {
        let (mut kernel, handle, sinks) = switch_fixture(
            vec![(id(1, 40), 2, id(7, 70))],
            None,
            10,
            SimDuration::from_us(10),
        );
        kernel.run().unwrap();
        let got = sinks[2].take();
        assert_eq!(got.len(), 10);
        for (i, (_, pkt)) in got.iter().enumerate() {
            let cell = pkt.payload::<AtmCell>().unwrap();
            assert_eq!(cell.id(), id(7, 70), "header translated");
            assert_eq!(payload_seq(&cell.payload), i as u64, "order preserved");
        }
        // Nothing leaked to other ports.
        assert!(sinks[0].is_empty() && sinks[1].is_empty() && sinks[3].is_empty());
        let c = handle.stats.snapshot();
        assert_eq!(c.received, 10);
        assert_eq!(c.switched, 10);
        assert_eq!(c.transmitted, 10);
        assert_eq!(c.unroutable, 0);
    }

    #[test]
    fn unroutable_cells_go_to_the_control_unit() {
        let (mut kernel, handle, sinks) = switch_fixture(vec![], None, 5, SimDuration::from_us(10));
        kernel.run().unwrap();
        let c = handle.stats.snapshot();
        assert_eq!(c.unroutable, 5);
        assert_eq!(c.switched, 0);
        assert!(sinks
            .iter()
            .all(castanet_netsim::process::CollectorHandle::is_empty));
        // The GCU handled 5 packet events (+1 init).
        assert_eq!(kernel.module_event_count(handle.control_unit), 6);
    }

    #[test]
    fn egress_paces_at_line_rate() {
        // Source emits 5 cells back-to-back (every 1 ns) but the line serves
        // one per microsecond, so departures are 1 us apart.
        let (mut kernel, _handle, sinks) = switch_fixture(
            vec![(id(1, 40), 1, id(1, 40))],
            None,
            5,
            SimDuration::from_ns(1),
        );
        kernel.run().unwrap();
        let got = sinks[1].take();
        assert_eq!(got.len(), 5);
        for w in got.windows(2) {
            assert_eq!(w[1].0 - w[0].0, SimDuration::from_us(1));
        }
    }

    #[test]
    fn egress_overflow_drops() {
        let mut kernel = Kernel::new(0);
        let sw = SwitchNode::new(2, SimDuration::from_ms(1)) // very slow line
            .with_egress_capacity(2)
            .with_route(id(1, 40), 1, id(1, 40));
        let handle = sw.build(&mut kernel, "sw");
        let src_node = kernel.add_node("src");
        let src = kernel.add_module(
            src_node,
            "burst",
            Box::new(
                TrafficSourceProcess::new(id(1, 40), Box::new(Cbr::new(SimDuration::from_ns(1))))
                    .with_limit(10),
            ),
        );
        kernel
            .connect_stream(src, PortId(0), handle.port_modules[0], LINE)
            .unwrap();
        let (c, h) = CollectorProcess::new();
        let sink = kernel.add_module(src_node, "sink", Box::new(c));
        kernel
            .connect_stream(handle.port_modules[1], LINE, sink, PortId(0))
            .unwrap();
        kernel.run().unwrap();
        let counters = handle.stats.snapshot();
        // 10 offered; one in service chain: capacity 2 queue + drops.
        assert!(
            counters.queue_dropped > 0,
            "expected drops, got {counters:?}"
        );
        assert_eq!(counters.transmitted as usize, h.len());
        assert_eq!(counters.queue_dropped + counters.transmitted, 10);
    }

    #[test]
    fn policer_discards_nonconforming_cells() {
        // Contract of 1 cell / 10 us with zero tolerance against a source at
        // 1 cell / 5 us: every second cell is non-conforming.
        let g = Gcra::new(SimDuration::from_us(10), SimDuration::ZERO);
        let (mut kernel, handle, sinks) = switch_fixture(
            vec![(id(1, 40), 3, id(2, 50))],
            Some((0, id(1, 40), g)),
            10,
            SimDuration::from_us(5),
        );
        kernel.run().unwrap();
        let c = handle.stats.snapshot();
        assert_eq!(c.received, 10);
        assert_eq!(c.policed, 5);
        assert_eq!(c.switched, 5);
        assert_eq!(sinks[3].len(), 5);
    }

    #[test]
    fn local_turnaround_route_works() {
        // Route back out of the ingress port itself.
        let (mut kernel, _handle, sinks) = switch_fixture(
            vec![(id(1, 40), 0, id(3, 60))],
            None,
            4,
            SimDuration::from_us(10),
        );
        kernel.run().unwrap();
        assert_eq!(sinks[0].len(), 4);
    }

    #[test]
    fn two_sources_interleave_without_loss() {
        let mut kernel = Kernel::new(9);
        let sw = SwitchNode::new(4, SimDuration::from_us(1))
            .with_route(id(1, 40), 2, id(1, 40))
            .with_route(id(1, 41), 2, id(1, 41));
        let handle = sw.build(&mut kernel, "sw");
        let srcs = kernel.add_node("srcs");
        for (i, conn) in [id(1, 40), id(1, 41)].into_iter().enumerate() {
            let m = kernel.add_module(
                srcs,
                format!("s{i}"),
                Box::new(
                    TrafficSourceProcess::new(conn, Box::new(Cbr::new(SimDuration::from_us(7))))
                        .with_limit(20),
                ),
            );
            kernel
                .connect_stream(m, PortId(0), handle.port_modules[i], LINE)
                .unwrap();
        }
        let (c, h) = CollectorProcess::new();
        let sink = kernel.add_module(srcs, "sink", Box::new(c));
        kernel
            .connect_stream(handle.port_modules[2], LINE, sink, PortId(0))
            .unwrap();
        kernel.run().unwrap();
        assert_eq!(h.len(), 40);
        let counters = handle.stats.snapshot();
        assert_eq!(counters.queue_dropped, 0);
        assert_eq!(counters.transmitted, 40);
    }

    #[test]
    fn sequenced_payload_survives_switching() {
        let (mut kernel, _h, sinks) = switch_fixture(
            vec![(id(1, 40), 1, id(9, 90))],
            None,
            3,
            SimDuration::from_us(10),
        );
        kernel.run().unwrap();
        let got = sinks[1].take();
        for (i, (_t, pkt)) in got.iter().enumerate() {
            let cell = pkt.payload::<AtmCell>().unwrap();
            assert_eq!(cell.payload, sequenced_payload(i as u64));
            assert_eq!(cell.payload.len(), PAYLOAD_OCTETS);
        }
    }

    #[test]
    #[should_panic(expected = "at least two ports")]
    fn one_port_switch_rejected() {
        let _ = SwitchNode::new(1, SimDuration::from_us(1));
    }

    #[test]
    fn gcu_answers_oam_loopback_requests() {
        use crate::oam::LoopbackCell;
        let mut kernel = Kernel::new(4);
        let sw = SwitchNode::new(2, SimDuration::from_us(1)).answering_loopback();
        let handle = sw.build(&mut kernel, "sw");
        // Inject a loopback request on line 0 (no route: it reaches the
        // control unit, which answers back out of line 0).
        let request = LoopbackCell::request(id(1, 3), true, 0xC0FFEE).encode();
        kernel
            .inject_packet(
                handle.port_modules[0],
                LINE,
                Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(request),
                castanet_netsim::time::SimTime::from_us(1),
            )
            .unwrap();
        let (c, h) = CollectorProcess::new();
        let node = kernel.add_node("mon");
        let sink = kernel.add_module(node, "sink", Box::new(c));
        kernel
            .connect_stream(handle.port_modules[0], LINE, sink, PortId(0))
            .unwrap();
        kernel.run().unwrap();
        let got = h.take();
        assert_eq!(got.len(), 1, "one loopback answer on the ingress line");
        let cell = got[0].1.payload::<AtmCell>().unwrap();
        let lb = LoopbackCell::decode(cell).unwrap();
        assert!(
            !lb.loopback_indication,
            "indication cleared by the loopback point"
        );
        assert_eq!(lb.correlation_tag, 0xC0FFEE);
        assert_eq!(handle.stats.snapshot().oam_answered, 1);
    }

    #[test]
    fn gcu_without_loopback_support_absorbs_oam() {
        use crate::oam::LoopbackCell;
        let mut kernel = Kernel::new(4);
        let handle = SwitchNode::new(2, SimDuration::from_us(1)).build(&mut kernel, "sw");
        let request = LoopbackCell::request(id(1, 3), true, 1).encode();
        kernel
            .inject_packet(
                handle.port_modules[0],
                LINE,
                Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(request),
                castanet_netsim::time::SimTime::from_us(1),
            )
            .unwrap();
        let (c, h) = CollectorProcess::new();
        let node = kernel.add_node("mon");
        let sink = kernel.add_module(node, "sink", Box::new(c));
        kernel
            .connect_stream(handle.port_modules[0], LINE, sink, PortId(0))
            .unwrap();
        kernel.run().unwrap();
        assert!(h.is_empty());
        assert_eq!(handle.stats.snapshot().oam_answered, 0);
    }

    #[test]
    fn frame_aware_egress_policy_keeps_whole_frames() {
        use crate::aal5;
        use crate::discard::DiscardPolicy;
        // Slow egress + frame-aware buffer: overload discards whole AAL5
        // frames, so whatever leaves the switch reassembles.
        let mut kernel = Kernel::new(8);
        let sw = SwitchNode::new(2, SimDuration::from_us(50)) // slow line
            .with_egress_capacity(8)
            .with_egress_policy(DiscardPolicy::FrameAware { epd_threshold: 5 })
            .with_route(id(1, 40), 1, id(1, 40));
        let handle = sw.build(&mut kernel, "sw");
        // Blast 6 frames of 4 cells back-to-back into line 0.
        let mut t = castanet_netsim::time::SimTime::from_us(1);
        for _ in 0..6 {
            for cell in aal5::segment(id(1, 40), &[0x5A; 150]).unwrap() {
                kernel
                    .inject_packet(
                        handle.port_modules[0],
                        LINE,
                        Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(cell),
                        t,
                    )
                    .unwrap();
                t += SimDuration::from_us(1);
            }
        }
        let (c, h) = CollectorProcess::new();
        let node = kernel.add_node("mon");
        let sink = kernel.add_module(node, "sink", Box::new(c));
        kernel
            .connect_stream(handle.port_modules[1], LINE, sink, PortId(0))
            .unwrap();
        kernel.run().unwrap();
        let counters = handle.stats.snapshot();
        assert!(
            counters.queue_dropped > 0,
            "overload must drop: {counters:?}"
        );
        // Everything that left the switch reassembles into whole frames.
        let mut assembler = aal5::Reassembler::new();
        let mut frames = 0;
        for (_, pkt) in h.take() {
            let cell = pkt.payload::<AtmCell>().unwrap().clone();
            if let Ok(Some(frame)) = assembler.push(cell) {
                assert_eq!(frame, vec![0x5A; 150]);
                frames += 1;
            }
        }
        assert!(frames >= 1, "at least one whole frame survives");
        assert_eq!(assembler.errors(), 0, "no partial frames leaked");
        assert_eq!(assembler.pending_cells(), 0, "no dangling tail");
    }

    #[test]
    fn signaling_establishes_a_call_end_to_end() {
        use crate::signaling::{SigMessage, SIGNALING_VCI};
        use castanet_netsim::time::SimTime;
        let mut kernel = Kernel::new(21);
        let handle = SwitchNode::new(2, SimDuration::from_us(1))
            .with_cac(1_000_000)
            .build(&mut kernel, "sw");
        // Collectors on both egress lines.
        let node = kernel.add_node("mon");
        let (c0, got0) = CollectorProcess::new();
        let sink0 = kernel.add_module(node, "sink0", Box::new(c0));
        kernel
            .connect_stream(handle.port_modules[0], LINE, sink0, PortId(0))
            .unwrap();
        let (c1, got1) = CollectorProcess::new();
        let sink1 = kernel.add_module(node, "sink1", Box::new(c1));
        kernel
            .connect_stream(handle.port_modules[1], LINE, sink1, PortId(0))
            .unwrap();

        // 1. SETUP on line 0: VPI=1/VCI=100 -> port 1 as VPI=7/VCI=100.
        let setup = SigMessage::Setup {
            call_ref: 42,
            conn: id(1, 100),
            out_port: 1,
            out: id(7, 100),
            pcr: 100_000,
        };
        kernel
            .inject_packet(
                handle.port_modules[0],
                LINE,
                Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(setup.encode(0).unwrap()),
                SimTime::from_us(1),
            )
            .unwrap();
        // 2. Data cell on the new connection, after call establishment.
        kernel
            .inject_packet(
                handle.port_modules[0],
                LINE,
                Packet::new(ATM_CELL_FORMAT, CELL_BITS)
                    .with_payload(AtmCell::user_data(id(1, 100), [0x77; 48])),
                SimTime::from_us(50),
            )
            .unwrap();
        kernel.run().unwrap();

        // The CONNECT answer left on line 0's signaling channel.
        let answers = got0.take();
        assert_eq!(answers.len(), 1);
        let answer_cell = answers[0].1.payload::<AtmCell>().unwrap();
        assert_eq!(answer_cell.id().vci.value(), SIGNALING_VCI);
        assert_eq!(
            SigMessage::decode(answer_cell).unwrap(),
            SigMessage::Connect { call_ref: 42 }
        );
        // The data cell used the dynamically installed route.
        let data = got1.take();
        assert_eq!(data.len(), 1);
        let cell = data[0].1.payload::<AtmCell>().unwrap();
        assert_eq!(cell.id(), id(7, 100));
        assert_eq!(handle.stats.snapshot().signaling_answered, 1);
        assert_eq!(handle.table.len(), 1);
    }

    #[test]
    fn cac_refusal_travels_back_as_release_complete() {
        use crate::signaling::{cause, SigMessage};
        use castanet_netsim::time::SimTime;
        let mut kernel = Kernel::new(22);
        let handle = SwitchNode::new(2, SimDuration::from_us(1))
            .with_cac(50_000) // tiny budget
            .build(&mut kernel, "sw");
        let node = kernel.add_node("mon");
        let (c0, got0) = CollectorProcess::new();
        let sink0 = kernel.add_module(node, "sink0", Box::new(c0));
        kernel
            .connect_stream(handle.port_modules[0], LINE, sink0, PortId(0))
            .unwrap();
        let setup = SigMessage::Setup {
            call_ref: 7,
            conn: id(1, 100),
            out_port: 1,
            out: id(7, 100),
            pcr: 100_000, // exceeds the budget
        };
        kernel
            .inject_packet(
                handle.port_modules[0],
                LINE,
                Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(setup.encode(0).unwrap()),
                SimTime::from_us(1),
            )
            .unwrap();
        kernel.run().unwrap();
        let answers = got0.take();
        assert_eq!(answers.len(), 1);
        let msg = SigMessage::decode(answers[0].1.payload::<AtmCell>().unwrap()).unwrap();
        assert_eq!(
            msg,
            SigMessage::ReleaseComplete {
                call_ref: 7,
                cause: cause::NO_BANDWIDTH
            }
        );
        assert!(handle.table.is_empty(), "refused call installs nothing");
    }

    #[test]
    fn first_cell_departure_time_includes_service() {
        let (mut kernel, _h, sinks) = switch_fixture(
            vec![(id(1, 40), 1, id(1, 40))],
            None,
            1,
            SimDuration::from_us(10),
        );
        kernel.run().unwrap();
        let got = sinks[1].take();
        // Arrival at 10 us + 1 us service.
        assert_eq!(got[0].0, SimTime::from_us(11));
    }
}
