//! AAL5 — the ATM adaptation layer used by data traffic.
//!
//! Higher-layer frames (IP packets, signalling messages) reach the cell
//! stream through AAL5: the CPCS-PDU is the payload padded to a multiple of
//! 48 octets with an 8-octet trailer (UU, CPI, 16-bit length, CRC-32), then
//! cut into cells; the last cell of a frame is marked by the SDU-type bit of
//! the payload-type field. The ATM model suite needs this layer so that
//! frame-level traffic (e.g. the MPEG frames of the traffic library) can be
//! carried as standard cell streams through the switch and the DUT.

use crate::addr::VpiVci;
use crate::cell::{AtmCell, CellHeader, PayloadType, PAYLOAD_OCTETS};
use crate::error::AtmError;

/// Maximum CPCS-SDU size in octets (16-bit length field).
pub const MAX_SDU: usize = 65_535;

/// CRC-32 with the IEEE 802.3 polynomial in the non-reflected (MSB-first)
/// form AAL5 uses: init all-ones, final complement.
#[must_use]
pub fn crc32_aal5(data: &[u8]) -> u32 {
    const POLY: u32 = 0x04C1_1DB7;
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= u32::from(b) << 24;
        for _ in 0..8 {
            crc = if crc & 0x8000_0000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    !crc
}

/// Segments `sdu` into the cells of one AAL5 frame on connection `conn`.
///
/// All cells carry PT `User0` except the final cell (`User1`, the
/// end-of-frame marker).
///
/// # Errors
///
/// Returns [`AtmError::Aal5`] when `sdu` exceeds [`MAX_SDU`].
///
/// # Examples
///
/// ```
/// use castanet_atm::aal5::{reassemble, segment};
/// use castanet_atm::addr::VpiVci;
///
/// let conn = VpiVci::uni(1, 42)?;
/// let frame = b"hello atm adaptation layer".to_vec();
/// let cells = segment(conn, &frame)?;
/// assert_eq!(reassemble(&cells)?, frame);
/// # Ok::<(), castanet_atm::error::AtmError>(())
/// ```
pub fn segment(conn: VpiVci, sdu: &[u8]) -> Result<Vec<AtmCell>, AtmError> {
    if sdu.len() > MAX_SDU {
        return Err(AtmError::Aal5 {
            reason: "sdu exceeds 65535 octets",
        });
    }
    // CPCS-PDU = SDU + pad + 8-octet trailer, length multiple of 48.
    let content = sdu.len() + 8;
    let padded = content.div_ceil(PAYLOAD_OCTETS) * PAYLOAD_OCTETS;
    let mut pdu = Vec::with_capacity(padded);
    pdu.extend_from_slice(sdu);
    pdu.resize(padded - 8, 0);
    pdu.push(0); // CPCS-UU
    pdu.push(0); // CPI
    pdu.extend_from_slice(&(sdu.len() as u16).to_be_bytes());
    let crc = crc32_aal5(&pdu);
    pdu.extend_from_slice(&crc.to_be_bytes());
    debug_assert_eq!(pdu.len() % PAYLOAD_OCTETS, 0);

    let n = pdu.len() / PAYLOAD_OCTETS;
    let mut cells = Vec::with_capacity(n);
    for (i, chunk) in pdu.chunks_exact(PAYLOAD_OCTETS).enumerate() {
        let mut payload = [0u8; PAYLOAD_OCTETS];
        payload.copy_from_slice(chunk);
        let pt = if i + 1 == n {
            PayloadType::User1
        } else {
            PayloadType::User0
        };
        cells.push(AtmCell::with_header(
            CellHeader {
                gfc: 0,
                id: conn,
                pt,
                clp: false,
            },
            payload,
        ));
    }
    Ok(cells)
}

/// Reassembles one AAL5 frame from its cells (in order, ending with the
/// `User1` end-of-frame cell), verifying length and CRC-32.
///
/// # Errors
///
/// Returns [`AtmError::Aal5`] on an empty input, a missing end-of-frame
/// marker, an inconsistent length field, or a CRC mismatch.
pub fn reassemble(cells: &[AtmCell]) -> Result<Vec<u8>, AtmError> {
    let Some(last) = cells.last() else {
        return Err(AtmError::Aal5 { reason: "no cells" });
    };
    if !last.header.pt.sdu_type1() {
        return Err(AtmError::Aal5 {
            reason: "last cell is not an end-of-frame cell",
        });
    }
    if let Some(early_end) = cells[..cells.len() - 1]
        .iter()
        .position(|c| c.header.pt.sdu_type1())
    {
        let _ = early_end;
        return Err(AtmError::Aal5 {
            reason: "end-of-frame marker before the last cell",
        });
    }
    let mut pdu = Vec::with_capacity(cells.len() * PAYLOAD_OCTETS);
    for c in cells {
        pdu.extend_from_slice(&c.payload);
    }
    let trailer_at = pdu.len() - 8;
    let length = u16::from_be_bytes([pdu[trailer_at + 2], pdu[trailer_at + 3]]) as usize;
    let stored_crc = u32::from_be_bytes([
        pdu[trailer_at + 4],
        pdu[trailer_at + 5],
        pdu[trailer_at + 6],
        pdu[trailer_at + 7],
    ]);
    if crc32_aal5(&pdu[..trailer_at + 4]) != stored_crc {
        return Err(AtmError::Aal5 {
            reason: "crc-32 mismatch",
        });
    }
    if length > trailer_at {
        return Err(AtmError::Aal5 {
            reason: "length field exceeds pdu",
        });
    }
    // Padding must fit within the final cell's worth of data.
    if trailer_at - length >= PAYLOAD_OCTETS {
        return Err(AtmError::Aal5 {
            reason: "padding longer than one cell",
        });
    }
    pdu.truncate(length);
    Ok(pdu)
}

/// Incremental reassembler for interleaved streams: feed cells one at a
/// time; completed frames pop out.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: Vec<AtmCell>,
    frames: u64,
    errors: u64,
}

impl Reassembler {
    /// Creates an empty reassembler for one connection's stream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one cell. Returns a completed frame when `cell` ends one.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::Aal5`] when the completed frame fails validation;
    /// the partial state is discarded either way.
    pub fn push(&mut self, cell: AtmCell) -> Result<Option<Vec<u8>>, AtmError> {
        let ends = cell.header.pt.sdu_type1();
        self.partial.push(cell);
        if !ends {
            return Ok(None);
        }
        let cells = std::mem::take(&mut self.partial);
        match reassemble(&cells) {
            Ok(frame) => {
                self.frames += 1;
                Ok(Some(frame))
            }
            Err(e) => {
                self.errors += 1;
                Err(e)
            }
        }
    }

    /// Cells of the frame currently in flight.
    #[must_use]
    pub fn pending_cells(&self) -> usize {
        self.partial.len()
    }

    /// Frames successfully reassembled.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Frames discarded due to validation failures.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> VpiVci {
        VpiVci::uni(1, 42).unwrap()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for size in [0usize, 1, 39, 40, 41, 47, 48, 96, 1000] {
            let sdu: Vec<u8> = (0..size).map(|i| i as u8).collect();
            let cells = segment(conn(), &sdu).unwrap();
            // Exactly enough cells for sdu + trailer.
            assert_eq!(cells.len(), (size + 8).div_ceil(48).max(1));
            let back = reassemble(&cells).unwrap();
            assert_eq!(back, sdu, "size {size}");
        }
    }

    #[test]
    fn only_last_cell_is_marked() {
        let cells = segment(conn(), &[0u8; 100]).unwrap();
        for c in &cells[..cells.len() - 1] {
            assert!(!c.header.pt.sdu_type1());
        }
        assert!(cells.last().unwrap().header.pt.sdu_type1());
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut cells = segment(conn(), b"payload integrity matters").unwrap();
        cells[0].payload[3] ^= 0x40;
        assert!(matches!(
            reassemble(&cells),
            Err(AtmError::Aal5 {
                reason: "crc-32 mismatch"
            })
        ));
    }

    #[test]
    fn lost_last_cell_detected() {
        let cells = segment(conn(), &[7u8; 120]).unwrap();
        let missing_end = &cells[..cells.len() - 1];
        assert!(matches!(
            reassemble(missing_end),
            Err(AtmError::Aal5 {
                reason: "last cell is not an end-of-frame cell"
            })
        ));
    }

    #[test]
    fn lost_middle_cell_detected() {
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let cells = segment(conn(), &frame).unwrap();
        assert!(cells.len() >= 3);
        let mut broken = cells.clone();
        broken.remove(1);
        assert!(reassemble(&broken).is_err());
    }

    #[test]
    fn oversized_sdu_rejected() {
        let sdu = vec![0u8; MAX_SDU + 1];
        assert!(matches!(
            segment(conn(), &sdu),
            Err(AtmError::Aal5 {
                reason: "sdu exceeds 65535 octets"
            })
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            reassemble(&[]),
            Err(AtmError::Aal5 { reason: "no cells" })
        ));
    }

    #[test]
    fn incremental_reassembler_matches_batch() {
        let frames: Vec<Vec<u8>> = vec![b"first frame".to_vec(), vec![0xEE; 300], Vec::new()];
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for f in &frames {
            for cell in segment(conn(), f).unwrap() {
                if let Some(done) = r.push(cell).unwrap() {
                    out.push(done);
                }
            }
        }
        assert_eq!(out, frames);
        assert_eq!(r.frames(), 3);
        assert_eq!(r.errors(), 0);
        assert_eq!(r.pending_cells(), 0);
    }

    #[test]
    fn reassembler_recovers_after_error() {
        let mut r = Reassembler::new();
        let mut cells = segment(conn(), b"will be damaged").unwrap();
        cells[0].payload[0] ^= 1;
        for cell in cells {
            let _ = r.push(cell);
        }
        assert_eq!(r.errors(), 1);
        // Next frame still reassembles.
        for cell in segment(conn(), b"clean").unwrap() {
            if let Some(done) = r.push(cell).unwrap() {
                assert_eq!(done, b"clean");
            }
        }
        assert_eq!(r.frames(), 1);
    }

    #[test]
    fn crc32_known_properties() {
        // CRC of empty data is the complement of the init register run
        // through zero bytes: a fixed, non-trivial constant.
        assert_eq!(crc32_aal5(&[]), 0); // == 0x0000_0000
                                        // Changing any byte changes the CRC.
        assert_ne!(crc32_aal5(b"abc"), crc32_aal5(b"abd"));
        // MSB-first non-reflected known vector: "123456789" under
        // CRC-32/BZIP2 is 0xFC891918.
        assert_eq!(crc32_aal5(b"123456789"), 0xFC89_1918);
    }
}
