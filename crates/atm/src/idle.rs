//! Idle cells and cell-rate decoupling.
//!
//! §3.2: "one can identify time-periods where idle cells are inserted into
//! the ATM cell stream". The physical layer keeps the line continuously
//! filled: when no assigned cell is ready at a slot boundary, an *idle cell*
//! (ITU-T I.432: header `00 00 00 01`, payload octets `0x6A`) is sent, and
//! the receiver strips idle cells before handing the stream up. The
//! [`CellRateDecoupler`] implements both directions and counts how much of
//! the line was idle — exactly the slot structure that gives the network
//! simulator its cell-time step.

use crate::cell::{AtmCell, CELL_OCTETS, HEADER_OCTETS};
use crate::hec;

/// The fixed 4 leading header octets of an idle cell.
pub const IDLE_HEADER: [u8; 4] = [0x00, 0x00, 0x00, 0x01];
/// The payload filler octet of an idle cell.
pub const IDLE_PAYLOAD_OCTET: u8 = 0x6A;

/// Builds the 53-octet wire image of an idle cell.
#[must_use]
pub fn idle_cell_bytes() -> [u8; CELL_OCTETS] {
    let mut out = [IDLE_PAYLOAD_OCTET; CELL_OCTETS];
    out[..4].copy_from_slice(&IDLE_HEADER);
    out[4] = hec::compute(&IDLE_HEADER);
    out
}

/// `true` when the 53-octet buffer is an idle cell (header match only —
/// the payload content of idle cells is not significant to the receiver).
#[must_use]
pub fn is_idle_cell(bytes: &[u8]) -> bool {
    bytes.len() == CELL_OCTETS && bytes[..4] == IDLE_HEADER && hec::check(&bytes[..HEADER_OCTETS])
}

/// What occupies one cell slot on the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// An assigned cell.
    Assigned(AtmCell),
    /// An idle (filler) cell.
    Idle,
}

/// Transmit/receive-side cell-rate decoupling with occupancy accounting.
///
/// # Examples
///
/// ```
/// use castanet_atm::idle::{CellRateDecoupler, Slot};
/// use castanet_atm::cell::AtmCell;
/// use castanet_atm::addr::VpiVci;
///
/// let mut d = CellRateDecoupler::new();
/// let cell = AtmCell::user_data(VpiVci::uni(1, 42)?, [0; 48]);
/// // Transmit: a ready cell goes out as-is, an empty slot becomes idle.
/// assert!(matches!(d.fill_slot(Some(cell.clone())), Slot::Assigned(_)));
/// assert!(matches!(d.fill_slot(None), Slot::Idle));
/// // Receive: idle slots are stripped.
/// assert_eq!(d.strip_slot(Slot::Assigned(cell.clone())), Some(cell));
/// assert_eq!(d.strip_slot(Slot::Idle), None);
/// assert_eq!(d.idle_sent(), 1);
/// # Ok::<(), castanet_atm::error::AtmError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct CellRateDecoupler {
    assigned_sent: u64,
    idle_sent: u64,
    assigned_received: u64,
    idle_received: u64,
}

impl CellRateDecoupler {
    /// Creates a decoupler with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Transmit side: wraps a ready cell, or produces an idle slot.
    pub fn fill_slot(&mut self, ready: Option<AtmCell>) -> Slot {
        if let Some(cell) = ready {
            self.assigned_sent += 1;
            Slot::Assigned(cell)
        } else {
            self.idle_sent += 1;
            Slot::Idle
        }
    }

    /// Receive side: strips idle slots, passing assigned cells through.
    pub fn strip_slot(&mut self, slot: Slot) -> Option<AtmCell> {
        match slot {
            Slot::Assigned(cell) => {
                self.assigned_received += 1;
                Some(cell)
            }
            Slot::Idle => {
                self.idle_received += 1;
                None
            }
        }
    }

    /// Assigned cells sent.
    #[must_use]
    pub fn assigned_sent(&self) -> u64 {
        self.assigned_sent
    }

    /// Idle cells inserted on transmit.
    #[must_use]
    pub fn idle_sent(&self) -> u64 {
        self.idle_sent
    }

    /// Assigned cells passed up on receive.
    #[must_use]
    pub fn assigned_received(&self) -> u64 {
        self.assigned_received
    }

    /// Idle cells stripped on receive.
    #[must_use]
    pub fn idle_received(&self) -> u64 {
        self.idle_received
    }

    /// Fraction of transmitted slots that were idle (0 when nothing sent).
    #[must_use]
    pub fn idle_ratio(&self) -> f64 {
        let total = self.assigned_sent + self.idle_sent;
        if total == 0 {
            0.0
        } else {
            self.idle_sent as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{HeaderFormat, VpiVci};
    use crate::cell::PAYLOAD_OCTETS;

    #[test]
    fn idle_cell_has_valid_hec_and_filler() {
        let bytes = idle_cell_bytes();
        assert!(hec::check(&bytes[..HEADER_OCTETS]));
        assert!(bytes[HEADER_OCTETS..]
            .iter()
            .all(|&b| b == IDLE_PAYLOAD_OCTET));
        assert_eq!(bytes[..4], IDLE_HEADER);
    }

    #[test]
    fn idle_detection() {
        assert!(is_idle_cell(&idle_cell_bytes()));
        let user = AtmCell::user_data(VpiVci::uni(0, 1).unwrap(), [0x6A; PAYLOAD_OCTETS]);
        let wire = user.encode(HeaderFormat::Uni).unwrap();
        assert!(!is_idle_cell(&wire));
        assert!(!is_idle_cell(&[0u8; 10]));
        // Corrupted HEC on an otherwise idle header is not an idle cell.
        let mut broken = idle_cell_bytes();
        broken[4] ^= 0xFF;
        assert!(!is_idle_cell(&broken));
    }

    #[test]
    fn counters_and_ratio() {
        let mut d = CellRateDecoupler::new();
        let cell = AtmCell::user_data(VpiVci::uni(1, 32).unwrap(), [0; PAYLOAD_OCTETS]);
        d.fill_slot(Some(cell.clone()));
        d.fill_slot(None);
        d.fill_slot(None);
        d.fill_slot(None);
        assert_eq!(d.assigned_sent(), 1);
        assert_eq!(d.idle_sent(), 3);
        assert!((d.idle_ratio() - 0.75).abs() < 1e-12);

        d.strip_slot(Slot::Idle);
        d.strip_slot(Slot::Assigned(cell));
        assert_eq!(d.idle_received(), 1);
        assert_eq!(d.assigned_received(), 1);
    }

    #[test]
    fn idle_ratio_zero_when_unused() {
        assert_eq!(CellRateDecoupler::new().idle_ratio(), 0.0);
    }

    #[test]
    fn slot_roundtrip_preserves_cell() {
        let mut d = CellRateDecoupler::new();
        let cell = AtmCell::user_data(VpiVci::uni(9, 99).unwrap(), [9; PAYLOAD_OCTETS]);
        let slot = d.fill_slot(Some(cell.clone()));
        assert_eq!(d.strip_slot(slot), Some(cell));
    }
}
