//! Connection signaling and call admission control.
//!
//! The paper's introduction places the hardware/software verification gap
//! exactly here: "HW functionality … is interacting with the complexity of
//! embedded control software, that implements higher-layer functionality,
//! such as call admission control agents and signaling protocols". This
//! module provides that higher layer in miniature — a Q.2931-flavoured
//! message set carried in cells on the reserved signaling channel (VCI 5),
//! a call-admission-control policy over peak cell rates, and an agent FSM
//! that installs/removes switch routes as calls come and go — so
//! co-verification scenarios can exercise the control plane, not just the
//! cell relay.

use crate::addr::{Vci, VpiVci};
use crate::cell::{AtmCell, CellHeader, PayloadType, PAYLOAD_OCTETS};
use crate::error::AtmError;
use crate::switch::{RouteEntry, RoutingTable};
use std::collections::HashMap;
use std::sync::Arc;

/// The reserved VCI signaling messages travel on (Q.2931 uses VCI 5).
pub const SIGNALING_VCI: u16 = 5;

/// A signaling message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigMessage {
    /// Request a connection: `conn` with a peak cell rate, toward an egress
    /// port, retagged as `out`.
    Setup {
        /// Call reference chosen by the caller.
        call_ref: u32,
        /// Requested ingress identifier.
        conn: VpiVci,
        /// Requested egress port.
        out_port: u8,
        /// Identifier on the egress line.
        out: VpiVci,
        /// Peak cell rate in cells/second.
        pcr: u32,
    },
    /// The call was admitted.
    Connect {
        /// Echoed call reference.
        call_ref: u32,
    },
    /// The call was refused (CAC or identifier conflict).
    ReleaseComplete {
        /// Echoed call reference.
        call_ref: u32,
        /// Diagnostic cause code.
        cause: u8,
    },
    /// Tear a connection down.
    Release {
        /// Call reference of the call to clear.
        call_ref: u32,
    },
}

/// Cause codes for refusals.
pub mod cause {
    /// Requested bandwidth exceeds the CAC budget.
    pub const NO_BANDWIDTH: u8 = 37;
    /// The requested identifier is already in use.
    pub const VPCI_IN_USE: u8 = 35;
    /// The egress port does not exist.
    pub const INVALID_PORT: u8 = 82;
    /// The call reference is unknown (release of a non-existent call).
    pub const UNKNOWN_CALL: u8 = 81;
}

const TAG_SETUP: u8 = 1;
const TAG_CONNECT: u8 = 2;
const TAG_RELEASE_COMPLETE: u8 = 3;
const TAG_RELEASE: u8 = 4;

impl SigMessage {
    /// Encodes the message into a signaling cell on `channel_vpi`
    /// (VCI = [`SIGNALING_VCI`]).
    ///
    /// # Errors
    ///
    /// Propagates identifier-range errors.
    pub fn encode(&self, channel_vpi: u16) -> Result<AtmCell, AtmError> {
        let mut p = [0u8; PAYLOAD_OCTETS];
        match *self {
            SigMessage::Setup {
                call_ref,
                conn,
                out_port,
                out,
                pcr,
            } => {
                p[0] = TAG_SETUP;
                p[1..5].copy_from_slice(&call_ref.to_be_bytes());
                p[5..7].copy_from_slice(&conn.vpi.value().to_be_bytes());
                p[7..9].copy_from_slice(&conn.vci.value().to_be_bytes());
                p[9] = out_port;
                p[10..12].copy_from_slice(&out.vpi.value().to_be_bytes());
                p[12..14].copy_from_slice(&out.vci.value().to_be_bytes());
                p[14..18].copy_from_slice(&pcr.to_be_bytes());
            }
            SigMessage::Connect { call_ref } => {
                p[0] = TAG_CONNECT;
                p[1..5].copy_from_slice(&call_ref.to_be_bytes());
            }
            SigMessage::ReleaseComplete { call_ref, cause } => {
                p[0] = TAG_RELEASE_COMPLETE;
                p[1..5].copy_from_slice(&call_ref.to_be_bytes());
                p[5] = cause;
            }
            SigMessage::Release { call_ref } => {
                p[0] = TAG_RELEASE;
                p[1..5].copy_from_slice(&call_ref.to_be_bytes());
            }
        }
        Ok(AtmCell::with_header(
            CellHeader {
                gfc: 0,
                id: VpiVci::uni(channel_vpi, SIGNALING_VCI)?,
                pt: PayloadType::User0,
                clp: false,
            },
            p,
        ))
    }

    /// Decodes a signaling cell.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::Signaling`] for non-signaling cells or unknown
    /// message tags.
    pub fn decode(cell: &AtmCell) -> Result<Self, AtmError> {
        if cell.id().vci.value() != SIGNALING_VCI {
            return Err(AtmError::Signaling {
                reason: "not on the signaling channel",
            });
        }
        let p = &cell.payload;
        let call_ref = u32::from_be_bytes([p[1], p[2], p[3], p[4]]);
        Ok(match p[0] {
            TAG_SETUP => SigMessage::Setup {
                call_ref,
                conn: VpiVci::uni(
                    u16::from_be_bytes([p[5], p[6]]),
                    u16::from_be_bytes([p[7], p[8]]),
                )?,
                out_port: p[9],
                out: VpiVci::uni(
                    u16::from_be_bytes([p[10], p[11]]),
                    u16::from_be_bytes([p[12], p[13]]),
                )?,
                pcr: u32::from_be_bytes([p[14], p[15], p[16], p[17]]),
            },
            TAG_CONNECT => SigMessage::Connect { call_ref },
            TAG_RELEASE_COMPLETE => SigMessage::ReleaseComplete {
                call_ref,
                cause: p[5],
            },
            TAG_RELEASE => SigMessage::Release { call_ref },
            _ => {
                return Err(AtmError::Signaling {
                    reason: "unknown message tag",
                })
            }
        })
    }

    /// `true` when `cell` travels on the signaling channel.
    #[must_use]
    pub fn is_signaling(cell: &AtmCell) -> bool {
        cell.id().vci == Vci::new(SIGNALING_VCI)
    }
}

#[derive(Debug, Clone, Copy)]
struct Call {
    conn: VpiVci,
    pcr: u32,
}

/// The call-admission-control agent: the control-plane software the global
/// control unit runs. Owns a bandwidth budget (total admitted PCR) and the
/// switch's routing table; processes signaling messages, answering each.
#[derive(Debug)]
pub struct CacAgent {
    table: Arc<RoutingTable>,
    ports: usize,
    budget_pcr: u64,
    admitted_pcr: u64,
    calls: HashMap<u32, Call>,
    refused: u64,
}

impl CacAgent {
    /// Creates an agent managing `table` with a total PCR budget.
    #[must_use]
    pub fn new(table: Arc<RoutingTable>, ports: usize, budget_pcr: u64) -> Self {
        CacAgent {
            table,
            ports,
            budget_pcr,
            admitted_pcr: 0,
            calls: HashMap::new(),
            refused: 0,
        }
    }

    /// Handles one signaling message, returning the answer to send back.
    /// `Connect`/`ReleaseComplete` inputs are absorbed (answers to *our*
    /// outgoing messages are out of scope for this mini stack).
    pub fn handle(&mut self, msg: SigMessage) -> Option<SigMessage> {
        match msg {
            SigMessage::Setup {
                call_ref,
                conn,
                out_port,
                out,
                pcr,
            } => Some(self.handle_setup(call_ref, conn, out_port, out, pcr)),
            SigMessage::Release { call_ref } => Some(self.handle_release(call_ref)),
            SigMessage::Connect { .. } | SigMessage::ReleaseComplete { .. } => None,
        }
    }

    fn handle_setup(
        &mut self,
        call_ref: u32,
        conn: VpiVci,
        out_port: u8,
        out: VpiVci,
        pcr: u32,
    ) -> SigMessage {
        if usize::from(out_port) >= self.ports {
            self.refused += 1;
            return SigMessage::ReleaseComplete {
                call_ref,
                cause: cause::INVALID_PORT,
            };
        }
        if self.admitted_pcr + u64::from(pcr) > self.budget_pcr {
            self.refused += 1;
            return SigMessage::ReleaseComplete {
                call_ref,
                cause: cause::NO_BANDWIDTH,
            };
        }
        let entry = RouteEntry {
            out_port: usize::from(out_port),
            out_id: out,
        };
        if self.table.install(conn, entry).is_err() || self.calls.contains_key(&call_ref) {
            self.refused += 1;
            return SigMessage::ReleaseComplete {
                call_ref,
                cause: cause::VPCI_IN_USE,
            };
        }
        self.admitted_pcr += u64::from(pcr);
        self.calls.insert(call_ref, Call { conn, pcr });
        SigMessage::Connect { call_ref }
    }

    fn handle_release(&mut self, call_ref: u32) -> SigMessage {
        match self.calls.remove(&call_ref) {
            Some(call) => {
                self.table.remove(call.conn);
                self.admitted_pcr -= u64::from(call.pcr);
                SigMessage::ReleaseComplete { call_ref, cause: 0 }
            }
            None => SigMessage::ReleaseComplete {
                call_ref,
                cause: cause::UNKNOWN_CALL,
            },
        }
    }

    /// Active calls.
    #[must_use]
    pub fn calls(&self) -> usize {
        self.calls.len()
    }

    /// Currently admitted aggregate PCR.
    #[must_use]
    pub fn admitted_pcr(&self) -> u64 {
        self.admitted_pcr
    }

    /// Refused set-ups so far.
    #[must_use]
    pub fn refused(&self) -> u64 {
        self.refused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(vpi: u16, vci: u16) -> VpiVci {
        VpiVci::uni(vpi, vci).unwrap()
    }

    fn setup(call_ref: u32, vci: u16, pcr: u32) -> SigMessage {
        SigMessage::Setup {
            call_ref,
            conn: id(1, vci),
            out_port: 1,
            out: id(7, vci),
            pcr,
        }
    }

    #[test]
    fn message_codec_roundtrip() {
        let msgs = [
            setup(0xABCD, 100, 50_000),
            SigMessage::Connect { call_ref: 1 },
            SigMessage::ReleaseComplete {
                call_ref: 2,
                cause: cause::NO_BANDWIDTH,
            },
            SigMessage::Release { call_ref: 3 },
        ];
        for m in msgs {
            let cell = m.encode(0).unwrap();
            assert!(SigMessage::is_signaling(&cell));
            assert_eq!(SigMessage::decode(&cell).unwrap(), m);
        }
    }

    #[test]
    fn non_signaling_cells_rejected() {
        let user = AtmCell::user_data(id(1, 40), [0; PAYLOAD_OCTETS]);
        assert!(!SigMessage::is_signaling(&user));
        assert!(matches!(
            SigMessage::decode(&user),
            Err(AtmError::Signaling {
                reason: "not on the signaling channel"
            })
        ));
        let mut junk = AtmCell::user_data(id(1, SIGNALING_VCI), [0; PAYLOAD_OCTETS]);
        junk.payload[0] = 99;
        assert!(matches!(
            SigMessage::decode(&junk),
            Err(AtmError::Signaling {
                reason: "unknown message tag"
            })
        ));
    }

    #[test]
    fn setup_installs_route_and_connects() {
        let table = Arc::new(RoutingTable::new());
        let mut agent = CacAgent::new(Arc::clone(&table), 4, 1_000_000);
        let answer = agent.handle(setup(1, 100, 100_000)).unwrap();
        assert_eq!(answer, SigMessage::Connect { call_ref: 1 });
        assert_eq!(agent.calls(), 1);
        assert_eq!(agent.admitted_pcr(), 100_000);
        let entry = table.lookup(id(1, 100)).expect("route installed");
        assert_eq!(entry.out_port, 1);
        assert_eq!(entry.out_id, id(7, 100));
    }

    #[test]
    fn cac_refuses_over_budget_calls() {
        let table = Arc::new(RoutingTable::new());
        let mut agent = CacAgent::new(Arc::clone(&table), 4, 150_000);
        assert_eq!(
            agent.handle(setup(1, 100, 100_000)).unwrap(),
            SigMessage::Connect { call_ref: 1 }
        );
        let refusal = agent.handle(setup(2, 101, 100_000)).unwrap();
        assert_eq!(
            refusal,
            SigMessage::ReleaseComplete {
                call_ref: 2,
                cause: cause::NO_BANDWIDTH
            }
        );
        assert!(
            table.lookup(id(1, 101)).is_none(),
            "refused call installs nothing"
        );
        assert_eq!(agent.refused(), 1);
        // A smaller call still fits.
        assert_eq!(
            agent.handle(setup(3, 102, 50_000)).unwrap(),
            SigMessage::Connect { call_ref: 3 }
        );
    }

    #[test]
    fn release_frees_bandwidth_and_route() {
        let table = Arc::new(RoutingTable::new());
        let mut agent = CacAgent::new(Arc::clone(&table), 4, 100_000);
        agent.handle(setup(1, 100, 100_000));
        // Full: next call refused.
        assert!(matches!(
            agent.handle(setup(2, 101, 1)).unwrap(),
            SigMessage::ReleaseComplete { cause: 37, .. }
        ));
        // Release call 1: bandwidth and identifier come back.
        assert_eq!(
            agent.handle(SigMessage::Release { call_ref: 1 }).unwrap(),
            SigMessage::ReleaseComplete {
                call_ref: 1,
                cause: 0
            }
        );
        assert!(table.lookup(id(1, 100)).is_none());
        assert_eq!(agent.admitted_pcr(), 0);
        assert_eq!(
            agent.handle(setup(3, 100, 100_000)).unwrap(),
            SigMessage::Connect { call_ref: 3 }
        );
    }

    #[test]
    fn duplicate_identifier_refused() {
        let table = Arc::new(RoutingTable::new());
        let mut agent = CacAgent::new(Arc::clone(&table), 4, u64::MAX);
        agent.handle(setup(1, 100, 1));
        let refusal = agent.handle(setup(2, 100, 1)).unwrap();
        assert_eq!(
            refusal,
            SigMessage::ReleaseComplete {
                call_ref: 2,
                cause: cause::VPCI_IN_USE
            }
        );
    }

    #[test]
    fn invalid_port_and_unknown_release() {
        let table = Arc::new(RoutingTable::new());
        let mut agent = CacAgent::new(Arc::clone(&table), 2, u64::MAX);
        let msg = SigMessage::Setup {
            call_ref: 1,
            conn: id(1, 100),
            out_port: 9,
            out: id(7, 100),
            pcr: 1,
        };
        assert!(matches!(
            agent.handle(msg).unwrap(),
            SigMessage::ReleaseComplete { cause: 82, .. }
        ));
        assert!(matches!(
            agent.handle(SigMessage::Release { call_ref: 55 }).unwrap(),
            SigMessage::ReleaseComplete { cause: 81, .. }
        ));
    }

    #[test]
    fn answers_are_absorbed() {
        let table = Arc::new(RoutingTable::new());
        let mut agent = CacAgent::new(table, 2, 100);
        assert!(agent.handle(SigMessage::Connect { call_ref: 1 }).is_none());
        assert!(agent
            .handle(SigMessage::ReleaseComplete {
                call_ref: 1,
                cause: 0
            })
            .is_none());
    }
}
