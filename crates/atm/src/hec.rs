//! Header error control: the CRC-8 protecting the 4-byte cell header.
//!
//! ITU-T I.432 defines the HEC as the CRC over the first four header octets
//! with generator polynomial `x^8 + x^2 + x + 1`, XORed with the coset
//! leader `0x55` before transmission. Because the code has Hamming distance
//! 4 over the 40-bit header, a receiver can *correct* any single-bit error —
//! and I.432 prescribes a two-state correction/detection automaton doing
//! exactly that, implemented here as [`HecReceiver`].

/// CRC-8 generator polynomial `x^8 + x^2 + x + 1` (the `x^8` term implicit).
pub const POLY: u8 = 0x07;

/// Coset leader XORed into the CRC remainder per I.432 §7.3.2.2.
pub const COSET: u8 = 0x55;

/// Computes the raw CRC-8 remainder of `bytes` (no coset).
#[must_use]
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Computes the transmitted HEC octet for the four leading header octets.
///
/// # Panics
///
/// Panics when `header` is not exactly 4 bytes.
///
/// # Examples
///
/// ```
/// use castanet_atm::hec::{compute, check};
/// let header = [0x00, 0x10, 0x02, 0xA0];
/// let hec = compute(&header);
/// assert!(check(&[header[0], header[1], header[2], header[3], hec]));
/// ```
#[must_use]
pub fn compute(header: &[u8]) -> u8 {
    assert_eq!(
        header.len(),
        4,
        "HEC covers exactly the four leading header octets"
    );
    crc8(header) ^ COSET
}

/// Checks a full 5-octet header (4 octets + HEC). `true` when consistent.
///
/// # Panics
///
/// Panics when `header5` is not exactly 5 bytes.
#[must_use]
pub fn check(header5: &[u8]) -> bool {
    assert_eq!(header5.len(), 5, "a cell header is five octets");
    compute(&header5[..4]) == header5[4]
}

/// The 40-bit error syndrome of a received header: remainder of the received
/// word against the generator. Zero means "consistent".
#[must_use]
fn syndrome(header5: &[u8; 5]) -> u8 {
    let mut data = *header5;
    data[4] ^= COSET;
    crc8(&data)
}

/// Builds the syndrome → single-bit-position table once. Entry `s` holds the
/// bit index (0 = MSB of octet 0 … 39 = LSB of octet 4) whose flip produces
/// syndrome `s`, or `None` for multi-bit syndromes.
fn single_bit_table() -> [Option<u8>; 256] {
    let mut table = [None; 256];
    for bit in 0..40u8 {
        let mut h = [0u8; 5];
        h[4] = COSET; // so that the unflipped word has syndrome 0
        h[usize::from(bit / 8)] ^= 0x80 >> (bit % 8);
        let mut data = h;
        data[4] ^= COSET;
        let s = crc8(&data);
        table[usize::from(s)] = Some(bit);
    }
    table
}

/// Outcome of feeding one header to the [`HecReceiver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HecOutcome {
    /// Header consistent; cell accepted.
    Valid,
    /// A single-bit error was corrected (only possible in correction mode);
    /// carries the corrected 5-octet header.
    Corrected([u8; 5]),
    /// The header was discarded (multi-bit error, or any error while in
    /// detection mode).
    Discarded,
}

/// Receiver-side automaton of I.432 §7.3.5.1.1: starts in *correction mode*;
/// after acting on an error it switches to *detection mode* (where **all**
/// errored cells are discarded) and returns to correction mode after the
/// next error-free header.
///
/// # Examples
///
/// ```
/// use castanet_atm::hec::{compute, HecOutcome, HecReceiver};
/// let mut rx = HecReceiver::new();
/// let mut h = [0x01, 0x02, 0x03, 0x04, 0x00];
/// h[4] = compute(&h[..4]);
/// // Flip one bit: corrected, but the receiver drops to detection mode.
/// let mut bad = h;
/// bad[1] ^= 0x10;
/// assert!(matches!(rx.receive(&bad), HecOutcome::Corrected(c) if c == h));
/// // Same single-bit error again: now discarded.
/// assert_eq!(rx.receive(&bad), HecOutcome::Discarded);
/// // A clean header re-arms correction.
/// assert_eq!(rx.receive(&h), HecOutcome::Valid);
/// assert!(matches!(rx.receive(&bad), HecOutcome::Corrected(_)));
/// ```
#[derive(Debug, Clone)]
pub struct HecReceiver {
    correcting: bool,
    table: [Option<u8>; 256],
    corrected: u64,
    discarded: u64,
    accepted: u64,
}

impl Default for HecReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl HecReceiver {
    /// Creates a receiver in correction mode.
    #[must_use]
    pub fn new() -> Self {
        HecReceiver {
            correcting: true,
            table: single_bit_table(),
            corrected: 0,
            discarded: 0,
            accepted: 0,
        }
    }

    /// `true` while in correction mode.
    #[must_use]
    pub fn is_correcting(&self) -> bool {
        self.correcting
    }

    /// Number of headers accepted unmodified.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of single-bit corrections performed.
    #[must_use]
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Number of headers discarded.
    #[must_use]
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Processes one received 5-octet header.
    pub fn receive(&mut self, header5: &[u8; 5]) -> HecOutcome {
        let s = syndrome(header5);
        if s == 0 {
            self.accepted += 1;
            self.correcting = true;
            return HecOutcome::Valid;
        }
        if self.correcting {
            self.correcting = false;
            if let Some(bit) = self.table[usize::from(s)] {
                let mut fixed = *header5;
                fixed[usize::from(bit / 8)] ^= 0x80 >> (bit % 8);
                debug_assert_eq!(syndrome(&fixed), 0);
                self.corrected += 1;
                return HecOutcome::Corrected(fixed);
            }
        }
        self.discarded += 1;
        HecOutcome::Discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_with_hec(bytes: [u8; 4]) -> [u8; 5] {
        let hec = compute(&bytes);
        [bytes[0], bytes[1], bytes[2], bytes[3], hec]
    }

    #[test]
    fn known_crc_vector() {
        // CRC-8/ATM ("ITU") check value for "123456789" with init 0 and no
        // final XOR is 0xF4 for plain poly 0x07.
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn compute_then_check_roundtrip() {
        for pattern in [[0u8; 4], [0xFF; 4], [0x12, 0x34, 0x56, 0x78]] {
            let h = header_with_hec(pattern);
            assert!(check(&h));
        }
    }

    #[test]
    fn check_fails_on_corruption() {
        let mut h = header_with_hec([1, 2, 3, 4]);
        h[2] ^= 0x01;
        assert!(!check(&h));
    }

    #[test]
    fn every_single_bit_error_is_correctable() {
        let good = header_with_hec([0xA5, 0x5A, 0x0F, 0xF0]);
        for bit in 0..40 {
            let mut rx = HecReceiver::new();
            let mut bad = good;
            bad[bit / 8] ^= 0x80 >> (bit % 8);
            match rx.receive(&bad) {
                HecOutcome::Corrected(fixed) => assert_eq!(fixed, good, "bit {bit}"),
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn double_bit_errors_are_discarded_not_miscorrected_often() {
        // With d=4 every 2-bit error is detectable: syndrome != 0 and the
        // automaton in correction mode either discards (syndrome not in the
        // single-bit table) — miscorrection to a *different* codeword cannot
        // produce the original, so we only assert it never "validates".
        let good = header_with_hec([0x11, 0x22, 0x33, 0x44]);
        for b1 in 0..40 {
            for b2 in (b1 + 1)..40 {
                let mut bad = good;
                bad[b1 / 8] ^= 0x80 >> (b1 % 8);
                bad[b2 / 8] ^= 0x80 >> (b2 % 8);
                let mut rx = HecReceiver::new();
                match rx.receive(&bad) {
                    HecOutcome::Valid => panic!("2-bit error validated: {b1},{b2}"),
                    HecOutcome::Corrected(fixed) => {
                        assert_ne!(fixed, bad, "correction must change the word");
                    }
                    HecOutcome::Discarded => {}
                }
            }
        }
    }

    #[test]
    fn automaton_mode_switching() {
        let good = header_with_hec([9, 8, 7, 6]);
        let mut bad = good;
        bad[0] ^= 0x01;
        let mut rx = HecReceiver::new();
        assert!(rx.is_correcting());
        assert!(matches!(rx.receive(&bad), HecOutcome::Corrected(_)));
        assert!(!rx.is_correcting());
        // In detection mode even single-bit errors discard.
        assert_eq!(rx.receive(&bad), HecOutcome::Discarded);
        assert_eq!(rx.receive(&good), HecOutcome::Valid);
        assert!(rx.is_correcting());
        assert_eq!(rx.accepted(), 1);
        assert_eq!(rx.corrected(), 1);
        assert_eq!(rx.discarded(), 1);
    }

    #[test]
    fn valid_streak_keeps_correcting() {
        let good = header_with_hec([0, 0, 0, 1]);
        let mut rx = HecReceiver::new();
        for _ in 0..10 {
            assert_eq!(rx.receive(&good), HecOutcome::Valid);
            assert!(rx.is_correcting());
        }
        assert_eq!(rx.accepted(), 10);
    }

    #[test]
    #[should_panic(expected = "four leading header octets")]
    fn compute_rejects_wrong_length() {
        let _ = compute(&[0u8; 5]);
    }
}
