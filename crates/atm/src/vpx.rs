//! VP cross-connects: virtual-path-level switching.
//!
//! A VP cross-connect switches on the VPI alone and carries whole virtual
//! paths transparently — VCIs inside a path pass through untranslated.
//! ATM networks layer VC switches (the `switch` module) over a backbone of
//! VP cross-connects; the HW functionality "distributed over a number of
//! hardware devices" that the paper's verification problem spans includes
//! exactly this split.

use crate::addr::{HeaderFormat, Vpi, VpiVci};
use crate::cell::AtmCell;
use crate::error::AtmError;
use std::collections::HashMap;

/// One VP routing entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpRoute {
    /// Egress port.
    pub out_port: usize,
    /// VPI on the egress line.
    pub out_vpi: Vpi,
}

/// A virtual-path cross-connect: VPI-keyed routing, VCI-transparent.
///
/// # Examples
///
/// ```
/// use castanet_atm::vpx::VpCrossConnect;
/// use castanet_atm::addr::{HeaderFormat, Vpi, VpiVci};
/// use castanet_atm::cell::AtmCell;
///
/// let mut vpx = VpCrossConnect::new(4, HeaderFormat::Uni);
/// vpx.install(Vpi::uni(5)?, 2, Vpi::uni(9)?)?;
/// let cell = AtmCell::user_data(VpiVci::uni(5, 1234)?, [0; 48]);
/// let (port, out) = vpx.route(cell)?;
/// assert_eq!(port, 2);
/// assert_eq!(out.id(), VpiVci::uni(9, 1234)?, "VCI passes through untouched");
/// # Ok::<(), castanet_atm::error::AtmError>(())
/// ```
#[derive(Debug)]
pub struct VpCrossConnect {
    ports: usize,
    format: HeaderFormat,
    table: HashMap<Vpi, VpRoute>,
    switched: u64,
    unroutable: u64,
}

impl VpCrossConnect {
    /// Creates a cross-connect with `ports` egress lines.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(ports: usize, format: HeaderFormat) -> Self {
        assert!(ports > 0, "a cross-connect needs at least one port");
        VpCrossConnect {
            ports,
            format,
            table: HashMap::new(),
            switched: 0,
            unroutable: 0,
        }
    }

    /// Installs a VP route.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::RouteExists`] for a duplicate VPI,
    /// [`AtmError::PortOutOfRange`] for a bad port, or
    /// [`AtmError::VpiOutOfRange`] when `out_vpi` does not fit the format.
    pub fn install(&mut self, in_vpi: Vpi, out_port: usize, out_vpi: Vpi) -> Result<(), AtmError> {
        if out_port >= self.ports {
            return Err(AtmError::PortOutOfRange {
                port: out_port,
                ports: self.ports,
            });
        }
        if out_vpi.value() > self.format.max_vpi() {
            return Err(AtmError::VpiOutOfRange {
                value: out_vpi.value(),
                format: self.format,
            });
        }
        if self.table.contains_key(&in_vpi) {
            return Err(AtmError::RouteExists {
                vpi: in_vpi.value(),
                vci: 0,
            });
        }
        self.table.insert(in_vpi, VpRoute { out_port, out_vpi });
        Ok(())
    }

    /// Removes a VP route, returning it if present.
    pub fn remove(&mut self, in_vpi: Vpi) -> Option<VpRoute> {
        self.table.remove(&in_vpi)
    }

    /// Routes one cell: translates the VPI, preserves the VCI (and GFC, PT,
    /// CLP), and reports the egress port.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::NoRoute`] for an unknown VPI (the cell is
    /// counted and handed back inside the error's context — callers send
    /// unroutable cells to management).
    pub fn route(&mut self, mut cell: AtmCell) -> Result<(usize, AtmCell), AtmError> {
        let Some(route) = self.table.get(&cell.id().vpi) else {
            self.unroutable += 1;
            return Err(AtmError::NoRoute {
                vpi: cell.id().vpi.value(),
                vci: cell.id().vci.value(),
            });
        };
        let new_id = VpiVci::new(route.out_vpi, cell.id().vci);
        cell.retag(new_id);
        self.switched += 1;
        Ok((route.out_port, cell))
    }

    /// Installed routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no route is installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Cells switched.
    #[must_use]
    pub fn switched(&self) -> u64 {
        self.switched
    }

    /// Cells with no matching path.
    #[must_use]
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpi(v: u16) -> Vpi {
        Vpi::uni(v).unwrap()
    }

    #[test]
    fn vci_transparency_across_a_path() {
        let mut vpx = VpCrossConnect::new(2, HeaderFormat::Uni);
        vpx.install(vpi(1), 1, vpi(8)).unwrap();
        for vci in [0u16, 32, 5000, u16::MAX] {
            let cell = AtmCell::user_data(VpiVci::new(vpi(1), crate::addr::Vci::new(vci)), [1; 48]);
            let (port, out) = vpx.route(cell).unwrap();
            assert_eq!(port, 1);
            assert_eq!(out.id().vpi, vpi(8));
            assert_eq!(out.id().vci.value(), vci, "vci must pass through");
        }
        assert_eq!(vpx.switched(), 4);
    }

    #[test]
    fn pt_and_clp_preserved() {
        use crate::cell::{CellHeader, PayloadType};
        let mut vpx = VpCrossConnect::new(1, HeaderFormat::Uni);
        vpx.install(vpi(3), 0, vpi(4)).unwrap();
        let cell = AtmCell::with_header(
            CellHeader {
                gfc: 0xA,
                id: VpiVci::uni(3, 99).unwrap(),
                pt: PayloadType::OamEndToEnd,
                clp: true,
            },
            [7; 48],
        );
        let (_, out) = vpx.route(cell).unwrap();
        assert_eq!(out.header.pt, PayloadType::OamEndToEnd);
        assert!(out.header.clp);
        assert_eq!(out.header.gfc, 0xA);
    }

    #[test]
    fn unknown_path_is_an_error_and_counted() {
        let mut vpx = VpCrossConnect::new(1, HeaderFormat::Uni);
        let cell = AtmCell::user_data(VpiVci::uni(9, 1).unwrap(), [0; 48]);
        assert!(matches!(
            vpx.route(cell),
            Err(AtmError::NoRoute { vpi: 9, .. })
        ));
        assert_eq!(vpx.unroutable(), 1);
    }

    #[test]
    fn installation_validation() {
        let mut vpx = VpCrossConnect::new(2, HeaderFormat::Uni);
        vpx.install(vpi(1), 0, vpi(2)).unwrap();
        assert!(matches!(
            vpx.install(vpi(1), 1, vpi(3)),
            Err(AtmError::RouteExists { vpi: 1, .. })
        ));
        assert!(matches!(
            vpx.install(vpi(2), 5, vpi(3)),
            Err(AtmError::PortOutOfRange { port: 5, ports: 2 })
        ));
        assert_eq!(vpx.len(), 1);
        assert_eq!(
            vpx.remove(vpi(1)),
            Some(VpRoute {
                out_port: 0,
                out_vpi: vpi(2)
            })
        );
        assert!(vpx.is_empty());
    }

    #[test]
    fn chained_cross_connects_compose() {
        // Two VPX hops then a VC switch boundary: VCI is intact end to end.
        let mut a = VpCrossConnect::new(2, HeaderFormat::Uni);
        let mut b = VpCrossConnect::new(2, HeaderFormat::Uni);
        a.install(vpi(1), 0, vpi(10)).unwrap();
        b.install(vpi(10), 1, vpi(20)).unwrap();
        let cell = AtmCell::user_data(VpiVci::uni(1, 777).unwrap(), [3; 48]);
        let (_, cell) = a.route(cell).unwrap();
        let (port, cell) = b.route(cell).unwrap();
        assert_eq!(port, 1);
        assert_eq!(cell.id(), VpiVci::uni(20, 777).unwrap());
    }
}
