//! The ATM cell: 53 octets of header + payload.
//!
//! "One cell comprises 53 octets" (§3.2) — 5 octets of header and 48 of
//! payload. The header carries GFC (UNI only), VPI, VCI, the 3-bit payload
//! type indicator, the cell-loss priority bit and the HEC octet. Encoding
//! and decoding to the exact wire layout is what the abstraction interface
//! of Fig. 4 performs when mapping a network-simulator packet onto the
//! 8-bit-wide `atmdata` VHDL port over 53 clock cycles.

use crate::addr::{HeaderFormat, Vci, Vpi, VpiVci};
use crate::error::AtmError;
use crate::hec;
use std::fmt;

/// Number of octets in a cell.
pub const CELL_OCTETS: usize = 53;
/// Number of header octets.
pub const HEADER_OCTETS: usize = 5;
/// Number of payload octets.
pub const PAYLOAD_OCTETS: usize = 48;
/// Cell length in bits (what link serialization delays are computed from).
pub const CELL_BITS: u32 = (CELL_OCTETS * 8) as u32;

/// The 3-bit payload type indicator (I.361 table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PayloadType {
    /// User data, no congestion, SDU type 0.
    #[default]
    User0 = 0b000,
    /// User data, no congestion, SDU type 1 (e.g. AAL5 end-of-frame).
    User1 = 0b001,
    /// User data, congestion experienced, SDU type 0.
    User0Congested = 0b010,
    /// User data, congestion experienced, SDU type 1.
    User1Congested = 0b011,
    /// Segment OAM F5 flow.
    OamSegment = 0b100,
    /// End-to-end OAM F5 flow.
    OamEndToEnd = 0b101,
    /// Resource management (e.g. ABR RM cells).
    ResourceManagement = 0b110,
    /// Reserved.
    Reserved = 0b111,
}

impl PayloadType {
    /// Decodes the 3-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 7`.
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            0b000 => PayloadType::User0,
            0b001 => PayloadType::User1,
            0b010 => PayloadType::User0Congested,
            0b011 => PayloadType::User1Congested,
            0b100 => PayloadType::OamSegment,
            0b101 => PayloadType::OamEndToEnd,
            0b110 => PayloadType::ResourceManagement,
            0b111 => PayloadType::Reserved,
            _ => panic!("payload type is a 3-bit field, got {bits}"),
        }
    }

    /// The 3-bit encoding.
    #[must_use]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// `true` for the four user-data code points.
    #[must_use]
    pub fn is_user_data(self) -> bool {
        self.bits() & 0b100 == 0
    }

    /// `true` when the congestion-experienced bit is set (user data only).
    #[must_use]
    pub fn congestion_experienced(self) -> bool {
        self.is_user_data() && self.bits() & 0b010 != 0
    }

    /// `true` when the SDU-type bit is set (marks AAL5 frame ends).
    #[must_use]
    pub fn sdu_type1(self) -> bool {
        self.is_user_data() && self.bits() & 0b001 != 0
    }
}

/// The decoded 5-octet cell header (HEC is derived, not stored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CellHeader {
    /// Generic flow control (UNI only; must be 0 for NNI).
    pub gfc: u8,
    /// Connection identifier.
    pub id: VpiVci,
    /// Payload type indicator.
    pub pt: PayloadType,
    /// Cell loss priority (`true` = may be dropped first).
    pub clp: bool,
}

impl CellHeader {
    /// Encodes the header (including computed HEC) for the given format.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::VpiOutOfRange`] if the VPI does not fit `format`,
    /// or [`AtmError::GfcOutOfRange`] for a GFC above 4 bits (or non-zero
    /// GFC at the NNI).
    pub fn encode(&self, format: HeaderFormat) -> Result<[u8; HEADER_OCTETS], AtmError> {
        if self.gfc > 0xF || (format == HeaderFormat::Nni && self.gfc != 0) {
            return Err(AtmError::GfcOutOfRange {
                value: self.gfc,
                format,
            });
        }
        let vpi = self.id.vpi.value();
        if vpi > format.max_vpi() {
            return Err(AtmError::VpiOutOfRange { value: vpi, format });
        }
        let vci = self.id.vci.value();
        let mut h = [0u8; HEADER_OCTETS];
        match format {
            HeaderFormat::Uni => {
                h[0] = (self.gfc << 4) | ((vpi >> 4) as u8 & 0x0F);
                h[1] = (((vpi & 0x0F) as u8) << 4) | ((vci >> 12) as u8 & 0x0F);
            }
            HeaderFormat::Nni => {
                h[0] = (vpi >> 4) as u8;
                h[1] = (((vpi & 0x0F) as u8) << 4) | ((vci >> 12) as u8 & 0x0F);
            }
        }
        h[2] = (vci >> 4) as u8;
        h[3] = (((vci & 0x0F) as u8) << 4) | (self.pt.bits() << 1) | u8::from(self.clp);
        h[4] = hec::compute(&h[..4]);
        Ok(h)
    }

    /// Decodes a 5-octet header, verifying the HEC.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::HecMismatch`] when the HEC octet is inconsistent.
    pub fn decode(bytes: &[u8; HEADER_OCTETS], format: HeaderFormat) -> Result<Self, AtmError> {
        if !hec::check(bytes) {
            return Err(AtmError::HecMismatch);
        }
        Ok(Self::decode_unchecked(bytes, format))
    }

    /// Decodes a header without HEC verification (for already-corrected or
    /// synthetic headers).
    #[must_use]
    pub fn decode_unchecked(bytes: &[u8; HEADER_OCTETS], format: HeaderFormat) -> Self {
        let (gfc, vpi) = match format {
            HeaderFormat::Uni => (
                bytes[0] >> 4,
                (u16::from(bytes[0] & 0x0F) << 4) | u16::from(bytes[1] >> 4),
            ),
            HeaderFormat::Nni => (0, (u16::from(bytes[0]) << 4) | u16::from(bytes[1] >> 4)),
        };
        let vci = (u16::from(bytes[1] & 0x0F) << 12)
            | (u16::from(bytes[2]) << 4)
            | u16::from(bytes[3] >> 4);
        let pt = PayloadType::from_bits((bytes[3] >> 1) & 0b111);
        let clp = bytes[3] & 1 != 0;
        CellHeader {
            gfc,
            id: VpiVci::new(
                Vpi::new(vpi, format).expect("decoded VPI always fits its format"),
                Vci::new(vci),
            ),
            pt,
            clp,
        }
    }
}

impl fmt::Display for CellHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pt={:?} clp={}", self.id, self.pt, u8::from(self.clp))
    }
}

/// A complete ATM cell: header plus 48-octet payload.
///
/// # Examples
///
/// ```
/// use castanet_atm::cell::AtmCell;
/// use castanet_atm::addr::{HeaderFormat, VpiVci};
///
/// let cell = AtmCell::user_data(VpiVci::uni(1, 42)?, [0xAB; 48]);
/// let wire = cell.encode(HeaderFormat::Uni)?;
/// assert_eq!(wire.len(), 53);
/// let back = AtmCell::decode(&wire, HeaderFormat::Uni)?;
/// assert_eq!(back, cell);
/// # Ok::<(), castanet_atm::error::AtmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AtmCell {
    /// The decoded header.
    pub header: CellHeader,
    /// The 48-octet payload.
    pub payload: [u8; PAYLOAD_OCTETS],
}

impl Default for AtmCell {
    fn default() -> Self {
        AtmCell {
            header: CellHeader::default(),
            payload: [0u8; PAYLOAD_OCTETS],
        }
    }
}

impl AtmCell {
    /// Creates a user-data cell (PT `User0`, CLP 0, GFC 0).
    #[must_use]
    pub fn user_data(id: VpiVci, payload: [u8; PAYLOAD_OCTETS]) -> Self {
        AtmCell {
            header: CellHeader {
                gfc: 0,
                id,
                pt: PayloadType::User0,
                clp: false,
            },
            payload,
        }
    }

    /// Creates a cell with an explicit header.
    #[must_use]
    pub fn with_header(header: CellHeader, payload: [u8; PAYLOAD_OCTETS]) -> Self {
        AtmCell { header, payload }
    }

    /// Serializes the full 53-octet wire image.
    ///
    /// # Errors
    ///
    /// Propagates header-encoding errors (see [`CellHeader::encode`]).
    pub fn encode(&self, format: HeaderFormat) -> Result<[u8; CELL_OCTETS], AtmError> {
        let mut out = [0u8; CELL_OCTETS];
        out[..HEADER_OCTETS].copy_from_slice(&self.header.encode(format)?);
        out[HEADER_OCTETS..].copy_from_slice(&self.payload);
        Ok(out)
    }

    /// Parses 53 octets, verifying the HEC.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::CellLength`] for a wrong-size slice or
    /// [`AtmError::HecMismatch`] for a corrupted header.
    pub fn decode(bytes: &[u8], format: HeaderFormat) -> Result<Self, AtmError> {
        if bytes.len() != CELL_OCTETS {
            return Err(AtmError::CellLength { got: bytes.len() });
        }
        let mut hdr = [0u8; HEADER_OCTETS];
        hdr.copy_from_slice(&bytes[..HEADER_OCTETS]);
        let header = CellHeader::decode(&hdr, format)?;
        let mut payload = [0u8; PAYLOAD_OCTETS];
        payload.copy_from_slice(&bytes[HEADER_OCTETS..]);
        Ok(AtmCell { header, payload })
    }

    /// The connection the cell belongs to.
    #[must_use]
    pub fn id(&self) -> VpiVci {
        self.header.id
    }

    /// Rewrites the connection identifier (what a switch's VPI/VCI
    /// translation stage does).
    pub fn retag(&mut self, id: VpiVci) {
        self.header.id = id;
    }
}

impl fmt::Display for AtmCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell[{}]", self.header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(vpi: u16, vci: u16) -> VpiVci {
        VpiVci::uni(vpi, vci).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip_uni() {
        let cell = AtmCell::with_header(
            CellHeader {
                gfc: 0xA,
                id: id(0x5C, 0xBEEF),
                pt: PayloadType::User1,
                clp: true,
            },
            [0x5A; PAYLOAD_OCTETS],
        );
        let wire = cell.encode(HeaderFormat::Uni).unwrap();
        assert_eq!(AtmCell::decode(&wire, HeaderFormat::Uni).unwrap(), cell);
    }

    #[test]
    fn encode_decode_roundtrip_nni() {
        let header = CellHeader {
            gfc: 0,
            id: VpiVci::new(
                Vpi::new(0xABC, HeaderFormat::Nni).unwrap(),
                Vci::new(0x1234),
            ),
            pt: PayloadType::OamEndToEnd,
            clp: false,
        };
        let cell = AtmCell::with_header(header, [1; PAYLOAD_OCTETS]);
        let wire = cell.encode(HeaderFormat::Nni).unwrap();
        let back = AtmCell::decode(&wire, HeaderFormat::Nni).unwrap();
        assert_eq!(back.header, header);
    }

    #[test]
    fn header_bit_layout_matches_i361() {
        // GFC=0b0101, VPI=0b1010_1100, VCI=0b0001_0010_0011_0100,
        // PT=0b011, CLP=1.
        let h = CellHeader {
            gfc: 0b0101,
            id: id(0b1010_1100, 0b0001_0010_0011_0100),
            pt: PayloadType::User1Congested,
            clp: true,
        };
        let e = h.encode(HeaderFormat::Uni).unwrap();
        assert_eq!(e[0], 0b0101_1010); // GFC | VPI[7:4]
        assert_eq!(e[1], 0b1100_0001); // VPI[3:0] | VCI[15:12]
        assert_eq!(e[2], 0b0010_0011); // VCI[11:4]
        assert_eq!(e[3], 0b0100_0111); // VCI[3:0] | PT | CLP
        assert!(hec::check(&e));
    }

    #[test]
    fn decode_rejects_bad_hec() {
        let cell = AtmCell::user_data(id(1, 40), [0; PAYLOAD_OCTETS]);
        let mut wire = cell.encode(HeaderFormat::Uni).unwrap();
        wire[0] ^= 0x80;
        assert_eq!(
            AtmCell::decode(&wire, HeaderFormat::Uni).unwrap_err(),
            AtmError::HecMismatch
        );
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let err = AtmCell::decode(&[0u8; 52], HeaderFormat::Uni).unwrap_err();
        assert_eq!(err, AtmError::CellLength { got: 52 });
    }

    #[test]
    fn payload_corruption_is_not_detected_by_hec() {
        // HEC protects only the header; payload errors pass (AAL layers
        // carry their own CRC).
        let cell = AtmCell::user_data(id(1, 40), [7; PAYLOAD_OCTETS]);
        let mut wire = cell.encode(HeaderFormat::Uni).unwrap();
        wire[20] ^= 0xFF;
        let back = AtmCell::decode(&wire, HeaderFormat::Uni).unwrap();
        assert_ne!(back.payload, cell.payload);
        assert_eq!(back.header, cell.header);
    }

    #[test]
    fn gfc_validation() {
        let mut h = CellHeader {
            gfc: 0x1F,
            ..CellHeader::default()
        };
        assert!(matches!(
            h.encode(HeaderFormat::Uni),
            Err(AtmError::GfcOutOfRange { .. })
        ));
        h.gfc = 0x5;
        assert!(h.encode(HeaderFormat::Uni).is_ok());
        // NNI has no GFC field at all.
        assert!(matches!(
            h.encode(HeaderFormat::Nni),
            Err(AtmError::GfcOutOfRange { .. })
        ));
    }

    #[test]
    fn payload_type_properties() {
        assert!(PayloadType::User0.is_user_data());
        assert!(!PayloadType::OamSegment.is_user_data());
        assert!(PayloadType::User1Congested.congestion_experienced());
        assert!(!PayloadType::User1.congestion_experienced());
        assert!(PayloadType::User1.sdu_type1());
        assert!(!PayloadType::User0Congested.sdu_type1());
        for bits in 0..8 {
            assert_eq!(PayloadType::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn retag_changes_only_the_id() {
        let mut cell = AtmCell::user_data(id(1, 40), [3; PAYLOAD_OCTETS]);
        cell.retag(id(2, 50));
        assert_eq!(cell.id(), id(2, 50));
        assert_eq!(cell.payload, [3; PAYLOAD_OCTETS]);
    }

    #[test]
    fn display_is_informative() {
        let cell = AtmCell::user_data(id(3, 77), [0; PAYLOAD_OCTETS]);
        assert_eq!(cell.to_string(), "cell[VPI=3/VCI=77 pt=User0 clp=0]");
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(HEADER_OCTETS + PAYLOAD_OCTETS, CELL_OCTETS);
        assert_eq!(CELL_BITS, 424);
    }
}
