//! The ATM traffic-management suite: noise + header error control, OAM
//! loopback through the switch's control unit, and frame-aware discard
//! under overload — "a wide range of applications, especially in the ATM
//! traffic management sector" (paper §4).
//!
//! Run with: `cargo run --example traffic_management`

use castanet_atm::aal5;
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::{AtmCell, CELL_BITS};
use castanet_atm::discard::DiscardPolicy;
use castanet_atm::line::{LineReceiver, NoisyLine};
use castanet_atm::oam::LoopbackCell;
use castanet_atm::switch::SwitchNode;
use castanet_atm::traffic::source::{TrafficSourceProcess, ATM_CELL_FORMAT};
use castanet_atm::traffic::Cbr;
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::packet::Packet;
use castanet_netsim::process::CollectorProcess;
use castanet_netsim::time::{SimDuration, SimTime};

fn main() {
    part1_noise_and_hec();
    part2_oam_loopback();
    part3_frame_discard();
}

fn part1_noise_and_hec() {
    println!("== line noise vs header error control ==");
    for &ber in &[0.0f64, 1e-3, 1e-2] {
        let mut k = Kernel::new(42);
        let n = k.add_node("line");
        let conn = VpiVci::uni(1, 40).expect("id");
        let src = k.add_module(
            n,
            "src",
            Box::new(
                TrafficSourceProcess::new(conn, Box::new(Cbr::new(SimDuration::from_us(10))))
                    .with_limit(500),
            ),
        );
        let (line, noise) = NoisyLine::new(ber, HeaderFormat::Uni);
        let line_m = k.add_module(n, "line", Box::new(line));
        let (rx, rx_stats) = LineReceiver::new(HeaderFormat::Uni);
        let rx_m = k.add_module(n, "rx", Box::new(rx));
        let (collector, got) = CollectorProcess::new();
        let sink = k.add_module(n, "sink", Box::new(collector));
        k.connect_stream(src, PortId(0), line_m, PortId(0))
            .expect("wire");
        k.connect_stream(line_m, PortId(0), rx_m, PortId(0))
            .expect("wire");
        k.connect_stream(rx_m, PortId(0), sink, PortId(0))
            .expect("wire");
        k.run().expect("run");
        let ns = noise.snapshot();
        let rs = rx_stats.snapshot();
        println!(
            "  BER {ber:>6}: {} bits flipped | {} corrected, {} discarded, {} delivered ({} collected)",
            ns.bits_flipped, rs.corrected, rs.discarded, rs.delivered, got.len()
        );
    }
    println!();
}

fn part2_oam_loopback() {
    println!("== OAM F5 loopback through the switch control unit ==");
    let mut k = Kernel::new(7);
    let handle = SwitchNode::new(2, SimDuration::from_us(1))
        .answering_loopback()
        .build(&mut k, "switch");
    let (collector, got) = CollectorProcess::new();
    let node = k.add_node("mgmt");
    let sink = k.add_module(node, "sink", Box::new(collector));
    k.connect_stream(handle.port_modules[0], PortId(0), sink, PortId(0))
        .expect("wire");
    for tag in 1..=3u32 {
        let request = LoopbackCell::request(VpiVci::uni(9, 9).expect("id"), true, tag).encode();
        k.inject_packet(
            handle.port_modules[0],
            PortId(0),
            Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(request),
            SimTime::from_us(u64::from(tag) * 10),
        )
        .expect("inject");
    }
    k.run().expect("run");
    for (t, pkt) in got.take() {
        let cell = pkt.payload::<AtmCell>().expect("cell");
        let lb = LoopbackCell::decode(cell).expect("loopback");
        println!(
            "  answer tag {} at {t} (indication cleared: {})",
            lb.correlation_tag, !lb.loopback_indication
        );
    }
    println!(
        "  control unit answered {} requests\n",
        handle.stats.snapshot().oam_answered
    );
}

fn part3_frame_discard() {
    println!("== EPD/PPD vs drop-tail under overload (AAL5 goodput) ==");
    for (label, policy) in [
        ("drop-tail   ", DiscardPolicy::DropTail),
        (
            "frame-aware ",
            DiscardPolicy::FrameAware { epd_threshold: 5 },
        ),
    ] {
        let mut k = Kernel::new(5);
        let conn = VpiVci::uni(1, 40).expect("id");
        let sw = SwitchNode::new(2, SimDuration::from_us(40)) // slow egress line
            .with_egress_capacity(8)
            .with_egress_policy(policy)
            .with_route(conn, 1, conn);
        let handle = sw.build(&mut k, "switch");
        // 30 frames of 4 cells, injected faster than the line drains.
        let mut t = SimTime::from_us(1);
        for _ in 0..30 {
            for cell in aal5::segment(conn, &[0x5A; 150]).expect("segment") {
                k.inject_packet(
                    handle.port_modules[0],
                    PortId(0),
                    Packet::new(ATM_CELL_FORMAT, CELL_BITS).with_payload(cell),
                    t,
                )
                .expect("inject");
                t += SimDuration::from_us(2);
            }
        }
        let (collector, got) = CollectorProcess::new();
        let node = k.add_node("mon");
        let sink = k.add_module(node, "sink", Box::new(collector));
        k.connect_stream(handle.port_modules[1], PortId(0), sink, PortId(0))
            .expect("wire");
        k.run().expect("run");
        let mut assembler = aal5::Reassembler::new();
        let mut frames = 0u32;
        let mut broken = 0u32;
        for (_, pkt) in got.take() {
            let cell = pkt.payload::<AtmCell>().expect("cell").clone();
            match assembler.push(cell) {
                Ok(Some(_)) => frames += 1,
                Ok(None) => {}
                Err(_) => broken += 1,
            }
        }
        let c = handle.stats.snapshot();
        println!(
            "  {label}: {} cells dropped -> {frames} whole frames delivered, {broken} broken frames",
            c.queue_dropped
        );
    }
    println!("\n  -> frame-aware discard converts cell loss into whole-frame loss: higher goodput, no wasted cells.");
}
