//! The traffic-model library and the reusable test-bench idea.
//!
//! "The main motivation is to model and reuse test benches at a higher
//! level of abstraction": the same traffic models that drive performance
//! studies in the network simulator become hardware stimulus. This example
//! surveys the library — CBR, Poisson, on-off VBR, MMPP and the synthetic
//! MPEG source — measures their realized rates and burst structure, then
//! records one stream to a trace file and replays it bit-exactly.
//!
//! Run with: `cargo run --example traffic_study`

use castanet::message::MessageTypeId;
use castanet::traceio::{read_trace, stimulus_messages, Direction, TraceRecord, TraceWriter};
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_atm::traffic::{
    emission_times, Cbr, GopPattern, Mmpp2, MpegTrace, OnOffVbr, PoissonTraffic, TrafficModel,
};
use castanet_netsim::random::stream_rng;
use castanet_netsim::time::{SimDuration, SimTime};

fn survey(model: &mut dyn TrafficModel, cells: usize, seed: u64) {
    let mut rng = stream_rng(seed, 0);
    let times = emission_times(model, &mut rng, cells);
    if times.len() < 2 {
        println!(
            "  {:<55} (exhausted after {} cells)",
            model.describe(),
            times.len()
        );
        return;
    }
    let span = (*times.last().expect("nonempty") - times[0]).as_secs_f64();
    let rate = (times.len() - 1) as f64 / span;
    // Burstiness: fraction of gaps at (or near) back-to-back slot spacing.
    let slot = SimDuration::from_ns(2726);
    let burst_gaps = times.windows(2).filter(|w| w[1] - w[0] <= slot * 2).count();
    println!(
        "  {:<55} {:>10.0} cells/s   {:>5.1}% back-to-back",
        model.describe(),
        rate,
        100.0 * burst_gaps as f64 / (times.len() - 1) as f64
    );
}

fn main() {
    println!("traffic-model survey (10 000 cells each):");
    survey(&mut Cbr::from_rate(100_000), 10_000, 1);
    survey(&mut PoissonTraffic::from_rate(100_000.0), 10_000, 2);
    survey(
        &mut OnOffVbr::new(SimDuration::from_ns(2726), 12.0, SimDuration::from_us(100)),
        10_000,
        3,
    );
    survey(
        &mut Mmpp2::new(
            150_000.0,
            SimDuration::from_us(300),
            20_000.0,
            SimDuration::from_us(300),
        ),
        10_000,
        4,
    );
    survey(
        &mut MpegTrace::synthetic(
            GopPattern::mpeg2_4mbps(),
            30,
            SimDuration::from_ms(40),
            SimDuration::from_ns(2726),
        ),
        10_000,
        5,
    );

    // ---- record & replay -------------------------------------------
    println!("\nrecording 100 Poisson cells to a trace ...");
    let conn = VpiVci::uni(1, 42).expect("static id");
    let mut model = PoissonTraffic::from_rate(50_000.0);
    let mut rng = stream_rng(42, 0);
    let times = emission_times(&mut model, &mut rng, 100);
    let mut writer = TraceWriter::new(Vec::new(), HeaderFormat::Uni).expect("trace header");
    for (k, &t) in times.iter().enumerate() {
        writer
            .write(&TraceRecord {
                direction: Direction::Stimulus,
                stamp: t,
                port: 0,
                cell: AtmCell::user_data(conn, [(k % 251) as u8; 48]),
            })
            .expect("trace write");
    }
    let bytes = writer.finish().expect("trace flush");
    println!("  trace size: {} bytes", bytes.len());

    let records = read_trace(std::io::Cursor::new(&bytes), HeaderFormat::Uni).expect("trace read");
    let messages = stimulus_messages(&records, MessageTypeId(0));
    assert_eq!(messages.len(), 100);
    assert!(messages.windows(2).all(|w| w[0].stamp <= w[1].stamp));
    let first = messages.first().expect("nonempty");
    println!(
        "  replayed {} stimulus messages; first at {} on port {} — bit-exact",
        messages.len(),
        first.stamp,
        first.port
    );
    assert_eq!(
        first.as_cell().expect("cell").payload[0],
        0,
        "payload survived the round trip"
    );
    let _ = SimTime::ZERO;
    println!("\ndone: the same models drive performance studies, HDL stimulus and board vectors.");
}
