//! Quickstart: verify one ATM cell's journey through an RTL device.
//!
//! The smallest possible CASTANET session: a network-level source emits a
//! handful of cells, the coupling conditions them onto the byte-serial
//! pins of an RTL switch, and the switched cells come back into the
//! network model where they are compared against the reference
//! expectation.
//!
//! Run with: `cargo run --example quickstart`

use castanet_netsim::time::SimTime;
use coverify::scenarios::{compare_switch_output, switch_cosim, SwitchScenarioConfig};

fn main() {
    let config = SwitchScenarioConfig {
        cells_per_source: 25,
        mixed_traffic: false,
        ..SwitchScenarioConfig::default()
    };
    println!(
        "co-verifying a {}-port ATM switch with {} cells ...",
        config.ports,
        config.total_cells()
    );

    let scenario = switch_cosim(config);
    let mut coupling = scenario.coupling;
    let stats = coupling
        .run(SimTime::from_ms(10))
        .expect("co-simulation failed");

    println!("network events executed : {}", stats.net_events);
    println!("cells sent to the DUT   : {}", stats.messages_to_follower);
    println!("responses from the DUT  : {}", stats.responses);
    println!(
        "sync messages (null)    : {} ({})",
        coupling.sync_stats().messages,
        coupling.sync_stats().null_messages
    );

    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    println!("{report}");
    assert!(
        report.passed(),
        "DUT responses must match the reference model"
    );
    println!("PASS: every cell came back translated and in order.");
}
