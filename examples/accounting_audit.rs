//! The §4 case study: functional verification of an ATM accounting unit.
//!
//! Multiple connections with different tariffs share one line; the RTL
//! accounting unit observes the byte-serial cell stream, counts and
//! charges; the algorithm reference model sees the identical stream at the
//! network level. After the coupled run, every connection's record is read
//! back through the chip's pin interface and audited against the
//! reference.
//!
//! Run with: `cargo run --example accounting_audit`

use castanet_atm::addr::VpiVci;
use castanet_netsim::time::SimDuration;
use coverify::scenarios::{accounting_cosim, AccountingScenarioConfig};

fn main() {
    let config = AccountingScenarioConfig {
        connections: vec![
            (VpiVci::uni(1, 40).expect("static id"), 2, 50), // volume + interval
            (VpiVci::uni(1, 41).expect("static id"), 1, 10), // cheap
            (VpiVci::uni(2, 50).expect("static id"), 0, 100), // flat rate
            (VpiVci::uni(3, 60).expect("static id"), 5, 0),  // pure volume
        ],
        cells_per_conn: 100,
        cell_gap: SimDuration::from_us(10),
        tick_interval: SimDuration::from_us(200),
        ..AccountingScenarioConfig::default()
    };
    println!(
        "auditing an accounting unit over {} connections x {} cells ...\n",
        config.connections.len(),
        config.cells_per_conn
    );

    let mut scenario = accounting_cosim(config);
    let horizon = scenario.horizon();
    let stats = scenario
        .coupling
        .run(horizon)
        .expect("co-simulation failed");
    println!(
        "stream complete: {} cells through the DUT, {} tariff ticks\n",
        stats.messages_to_follower,
        scenario.ticks.len()
    );

    let reference = scenario.reference();
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>8}",
        "connection", "cells", "charge(RTL)", "charge(ref)", "verdict"
    );
    let mut all_ok = true;
    let conns: Vec<VpiVci> = scenario.config.connections.iter().map(|c| c.0).collect();
    for conn in conns {
        let (cells, charge) = scenario
            .read_rtl_record(conn)
            .expect("connection registered in the DUT");
        let rec = reference
            .record(conn)
            .expect("connection registered in the reference");
        let ok = cells == rec.cells && charge == rec.charge;
        all_ok &= ok;
        println!(
            "{:<18} {:>10} {:>12} {:>12} {:>8}",
            conn.to_string(),
            cells,
            charge,
            rec.charge,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    assert!(all_ok, "accounting unit diverged from the reference model");
    println!("\nPASS: every charging record matches the algorithm reference model.");
}
