//! Hardware in the simulation loop (§3.3): the test board, test cycles and
//! the timing faults only real-time verification catches.
//!
//! Part 1 runs cells through a "prototype chip" (the RTL switch's
//! data-path subset) mounted on the test board, showing the SW/HW activity
//! split of the test-cycle state machine. Part 2 clocks a timing-marginal
//! chip above its rated frequency: the functional content is identical, but
//! at real-time speed the setup-time failures corrupt cells — "as long as
//! one does not run the hardware at the targeted speed its behaviour can
//! not be fully verified".
//!
//! Run with: `cargo run --example hardware_in_loop`

use castanet::coupling::CoupledSimulator;
use castanet::message::{Message, MessageTypeId};
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_netsim::time::SimTime;
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
use castanet_testboard::board::TestBoard;
use castanet_testboard::dut::{MappedCycleDut, PortSubsetDut, TimingFaultDut};
use castanet_testboard::scsi::ScsiBus;
use coverify::scenarios::switch_on_board;

fn main() {
    part1_functional_chip_verification();
    part2_timing_fault_detection();
}

fn part1_functional_chip_verification() {
    println!("== functional chip verification on the test board ==");
    let mut cosim = switch_on_board(512, MessageTypeId(1));
    for k in 0..8u64 {
        let cell = AtmCell::user_data(VpiVci::uni(1, 40).expect("static id"), [k as u8; 48]);
        cosim
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell))
            .expect("stimulus delivery failed");
    }
    let responses = cosim
        .advance_until(SimTime::from_ms(1))
        .expect("board session failed");
    println!(
        "  {} cells in, {} cells back (translated to VPI=7/VCI=70)",
        8,
        responses.len()
    );
    let s = cosim.session_stats();
    println!(
        "  test cycles: {} | hw time {:?} | sw (SCSI) time {:?} | efficiency {:.1}%",
        s.cycles,
        s.hw_time,
        s.sw_time,
        s.efficiency() * 100.0
    );
    for r in responses.iter().take(2) {
        println!(
            "  response: {} at {}",
            r.as_cell()
                .map(std::string::ToString::to_string)
                .unwrap_or_default(),
            r.stamp
        );
    }
    println!();
}

fn part2_timing_fault_detection() {
    println!("== real-time verification catches timing violations ==");
    // A chip rated for 10 MHz.
    let build_chip = || {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 64,
            table_capacity: 8,
        });
        assert!(switch.install_route(1, 40, 1, 7, 70));
        PortSubsetDut::new(Box::new(switch), (0..6).collect(), (0..6).collect())
    };

    for &(clock_hz, label) in &[
        (10_000_000u64, "within spec (10 MHz)"),
        (20_000_000, "overclocked (20 MHz)"),
    ] {
        let (mapped, lanes) = MappedCycleDut::auto_mapped(Box::new(build_chip()));
        let map = mapped.map().clone();
        let mut chip = TimingFaultDut::new(mapped, 10_000_000);
        chip.set_board_clock_hz(clock_hz);
        let mut board = TestBoard::with_memory_depth(1 << 14);
        board
            .configure(map.clone(), lanes, clock_hz)
            .expect("board config");

        // Build 4 cells of stimulus byte-serially on line 0.
        let mut frames = Vec::new();
        for k in 0..4u64 {
            let cell = AtmCell::user_data(VpiVci::uni(1, 40).expect("static id"), [k as u8; 48]);
            let wire = cell.encode(HeaderFormat::Uni).expect("encode");
            for (i, &b) in wire.iter().enumerate() {
                let mut f = [0u8; 16];
                map.encode_inport(0, u64::from(b), &mut f).expect("map");
                map.encode_inport(1, u64::from(i == 0), &mut f)
                    .expect("map");
                map.encode_inport(2, 1, &mut f).expect("map");
                frames.push(f);
            }
        }
        // Room to drain.
        frames.extend(std::iter::repeat_n([0u8; 16], 200));

        board.load_stimulus(frames).expect("stimulus");
        let _bus = ScsiBus::default();
        board.run_hw_cycle_auto(&mut chip).expect("hw cycle");

        // Reassemble egress line 1 and verify HECs.
        let mut good = 0u32;
        let mut bad = 0u32;
        let mut assembler = castanet::convert::ByteStreamAssembler::new(HeaderFormat::Uni);
        for frame in board.response() {
            if map.decode_outport(5, frame).expect("valid port") != 1 {
                continue;
            }
            let data = map.decode_outport(3, frame).expect("data port") as u8;
            let sync = map.decode_outport(4, frame).expect("sync port") == 1;
            match assembler.push(data, sync) {
                Ok(Some(_)) => good += 1,
                Ok(None) => {}
                Err(_) => bad += 1,
            }
        }
        println!(
            "  {label}: {good} clean cells, {bad} corrupted ({} faults injected by the silicon model)",
            chip.faults_injected()
        );
    }
    println!("\n  -> the same netlist passes at 10 MHz and fails at 20 MHz;");
    println!("     only running at target speed exposes it.");
}
