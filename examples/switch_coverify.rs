//! The paper's headline scenario: co-verification of a 4-port ATM switch
//! with a global control unit, and the throughput comparison against the
//! classic pure-RTL regression test bench (§2 of the paper).
//!
//! The paper reports ≈1300 DUT clock cycles/s for the co-simulation versus
//! ≈300 cycles/s for the pure-RTL test bench on an UltraSparc. Absolute
//! numbers differ on modern hardware; the *ratio* — co-simulation several
//! times faster because test-bench work runs at the system level and idle
//! line time is never simulated — is what this example demonstrates.
//!
//! Run with: `cargo run --release --example switch_coverify`

use castanet::coupling::CoupledSimulator;
use castanet::verify::{clocks_in, timed};
use castanet_netsim::time::SimTime;
use coverify::scenarios::{
    compare_switch_output, pure_rtl_clocks, switch_cosim, switch_cosim_cycle, switch_pure_rtl,
    SwitchScenarioConfig,
};

fn main() {
    let config = SwitchScenarioConfig {
        cells_per_source: 250, // 1000 cells total: quick demo; repro uses 10 000
        mixed_traffic: true,
        ..SwitchScenarioConfig::default()
    };
    println!(
        "workload: {} cells through a {}-port switch + global control unit\n",
        config.total_cells(),
        config.ports
    );

    // --- CASTANET co-simulation -------------------------------------
    let scenario = switch_cosim(config);
    let mut coupling = scenario.coupling;
    let (result, cosim_wall) = timed(|| coupling.run(SimTime::from_secs(1)));
    let stats = result.expect("co-simulation failed");
    let cosim_clocks = clocks_in(coupling.follower().now(), config.clock_period);
    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    assert!(report.passed(), "co-simulation mismatch:\n{report}");
    println!("CASTANET co-simulation:");
    println!(
        "  {} cells verified, {} network events",
        stats.responses, stats.net_events
    );
    println!(
        "  {} DUT clocks in {:.3} s -> {:.0} clock cycles/s",
        cosim_clocks,
        cosim_wall.as_secs_f64(),
        cosim_clocks as f64 / cosim_wall.as_secs_f64()
    );

    // --- pure-RTL regression bench (the baseline practice) -----------
    let mut tb = switch_pure_rtl(config);
    let clocks = pure_rtl_clocks(&config);
    let (result, rtl_wall) = timed(|| tb.run_clocks(clocks));
    result.expect("pure-RTL bench failed");
    let received: usize = (0..config.ports)
        .map(|p| {
            tb.monitor(p)
                .take()
                .iter()
                .filter(|(_, c)| !castanet_atm::idle::is_idle_cell(c))
                .count()
        })
        .sum();
    println!("\npure-RTL regression bench:");
    println!("  {received} cells delivered, every line clock simulated (idle cells included)");
    println!(
        "  {} DUT clocks in {:.3} s -> {:.0} clock cycles/s",
        clocks,
        rtl_wall.as_secs_f64(),
        clocks as f64 / rtl_wall.as_secs_f64()
    );

    // --- CASTANET with cycle-based integration (§5) -------------------
    let scenario = switch_cosim_cycle(config);
    let mut cy = scenario.coupling;
    let (result, cy_wall) = timed(|| cy.run(SimTime::from_secs(1)));
    result.expect("cycle-based co-simulation failed");
    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    assert!(report.passed(), "cycle-based mismatch:\n{report}");
    let cy_clocks = cy.follower().clocks_evaluated() + cy.follower().clocks_skipped();
    println!("\nCASTANET with cycle-based integration (idle skipping):");
    println!(
        "  {} DUT clocks covered ({} evaluated, {} skipped) in {:.3} s -> {:.0} clock cycles/s",
        cy_clocks,
        cy.follower().clocks_evaluated(),
        cy.follower().clocks_skipped(),
        cy_wall.as_secs_f64(),
        cy_clocks as f64 / cy_wall.as_secs_f64()
    );

    let cosim_rate = cosim_clocks as f64 / cosim_wall.as_secs_f64();
    let rtl_rate = clocks as f64 / rtl_wall.as_secs_f64();
    let cy_rate = cy_clocks as f64 / cy_wall.as_secs_f64();
    println!("\nspeedups over the pure-RTL regression bench:");
    println!(
        "  event-driven co-simulation : {:.1}x (paper: ~4.3x)",
        cosim_rate / rtl_rate
    );
    println!("  + cycle-based integration  : {:.1}x", cy_rate / rtl_rate);
}
