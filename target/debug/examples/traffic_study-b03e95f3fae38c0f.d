/root/repo/target/debug/examples/traffic_study-b03e95f3fae38c0f.d: examples/traffic_study.rs

/root/repo/target/debug/examples/traffic_study-b03e95f3fae38c0f: examples/traffic_study.rs

examples/traffic_study.rs:
