/root/repo/target/debug/examples/switch_coverify-70bcd5f798755b18.d: examples/switch_coverify.rs

/root/repo/target/debug/examples/libswitch_coverify-70bcd5f798755b18.rmeta: examples/switch_coverify.rs

examples/switch_coverify.rs:
