/root/repo/target/debug/examples/switch_coverify-45adf8cbdb7d0bbe.d: examples/switch_coverify.rs

/root/repo/target/debug/examples/switch_coverify-45adf8cbdb7d0bbe: examples/switch_coverify.rs

examples/switch_coverify.rs:
