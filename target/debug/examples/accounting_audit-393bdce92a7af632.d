/root/repo/target/debug/examples/accounting_audit-393bdce92a7af632.d: examples/accounting_audit.rs

/root/repo/target/debug/examples/accounting_audit-393bdce92a7af632: examples/accounting_audit.rs

examples/accounting_audit.rs:
