/root/repo/target/debug/examples/traffic_study-a1ab2be772058266.d: examples/traffic_study.rs

/root/repo/target/debug/examples/libtraffic_study-a1ab2be772058266.rmeta: examples/traffic_study.rs

examples/traffic_study.rs:
