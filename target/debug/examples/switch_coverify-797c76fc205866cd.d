/root/repo/target/debug/examples/switch_coverify-797c76fc205866cd.d: examples/switch_coverify.rs Cargo.toml

/root/repo/target/debug/examples/libswitch_coverify-797c76fc205866cd.rmeta: examples/switch_coverify.rs Cargo.toml

examples/switch_coverify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
