/root/repo/target/debug/examples/quickstart-000715d45da04802.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-000715d45da04802: examples/quickstart.rs

examples/quickstart.rs:
