/root/repo/target/debug/examples/accounting_audit-3905dde61a6cc295.d: examples/accounting_audit.rs

/root/repo/target/debug/examples/libaccounting_audit-3905dde61a6cc295.rmeta: examples/accounting_audit.rs

examples/accounting_audit.rs:
