/root/repo/target/debug/examples/traffic_study-db8e80ccbae122c9.d: examples/traffic_study.rs Cargo.toml

/root/repo/target/debug/examples/libtraffic_study-db8e80ccbae122c9.rmeta: examples/traffic_study.rs Cargo.toml

examples/traffic_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
