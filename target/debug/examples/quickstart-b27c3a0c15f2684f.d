/root/repo/target/debug/examples/quickstart-b27c3a0c15f2684f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b27c3a0c15f2684f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
