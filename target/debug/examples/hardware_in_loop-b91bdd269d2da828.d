/root/repo/target/debug/examples/hardware_in_loop-b91bdd269d2da828.d: examples/hardware_in_loop.rs

/root/repo/target/debug/examples/hardware_in_loop-b91bdd269d2da828: examples/hardware_in_loop.rs

examples/hardware_in_loop.rs:
