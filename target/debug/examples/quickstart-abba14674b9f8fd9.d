/root/repo/target/debug/examples/quickstart-abba14674b9f8fd9.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-abba14674b9f8fd9.rmeta: examples/quickstart.rs

examples/quickstart.rs:
