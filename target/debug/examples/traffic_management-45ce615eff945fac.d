/root/repo/target/debug/examples/traffic_management-45ce615eff945fac.d: examples/traffic_management.rs Cargo.toml

/root/repo/target/debug/examples/libtraffic_management-45ce615eff945fac.rmeta: examples/traffic_management.rs Cargo.toml

examples/traffic_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
