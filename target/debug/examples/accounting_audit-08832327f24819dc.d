/root/repo/target/debug/examples/accounting_audit-08832327f24819dc.d: examples/accounting_audit.rs Cargo.toml

/root/repo/target/debug/examples/libaccounting_audit-08832327f24819dc.rmeta: examples/accounting_audit.rs Cargo.toml

examples/accounting_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
