/root/repo/target/debug/examples/traffic_management-326bf6d23ff27d36.d: examples/traffic_management.rs

/root/repo/target/debug/examples/libtraffic_management-326bf6d23ff27d36.rmeta: examples/traffic_management.rs

examples/traffic_management.rs:
