/root/repo/target/debug/examples/traffic_management-2ee2fb6a84f096fd.d: examples/traffic_management.rs

/root/repo/target/debug/examples/traffic_management-2ee2fb6a84f096fd: examples/traffic_management.rs

examples/traffic_management.rs:
