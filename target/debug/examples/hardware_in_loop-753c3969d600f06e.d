/root/repo/target/debug/examples/hardware_in_loop-753c3969d600f06e.d: examples/hardware_in_loop.rs

/root/repo/target/debug/examples/libhardware_in_loop-753c3969d600f06e.rmeta: examples/hardware_in_loop.rs

examples/hardware_in_loop.rs:
