/root/repo/target/debug/examples/hardware_in_loop-b8b2a77c9ce1118f.d: examples/hardware_in_loop.rs Cargo.toml

/root/repo/target/debug/examples/libhardware_in_loop-b8b2a77c9ce1118f.rmeta: examples/hardware_in_loop.rs Cargo.toml

examples/hardware_in_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
