/root/repo/target/debug/deps/coverify-4d2174d9b8d9a184.d: src/lib.rs src/scenarios.rs

/root/repo/target/debug/deps/coverify-4d2174d9b8d9a184: src/lib.rs src/scenarios.rs

src/lib.rs:
src/scenarios.rs:
