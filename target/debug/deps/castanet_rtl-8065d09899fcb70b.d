/root/repo/target/debug/deps/castanet_rtl-8065d09899fcb70b.d: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/cycle.rs crates/rtl/src/dut/mod.rs crates/rtl/src/dut/accounting.rs crates/rtl/src/dut/cell_rx.rs crates/rtl/src/dut/cell_tx.rs crates/rtl/src/dut/switch.rs crates/rtl/src/error.rs crates/rtl/src/logic.rs crates/rtl/src/signal.rs crates/rtl/src/sim.rs crates/rtl/src/testbench.rs crates/rtl/src/timing.rs crates/rtl/src/vector.rs crates/rtl/src/wave.rs

/root/repo/target/debug/deps/libcastanet_rtl-8065d09899fcb70b.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/cycle.rs crates/rtl/src/dut/mod.rs crates/rtl/src/dut/accounting.rs crates/rtl/src/dut/cell_rx.rs crates/rtl/src/dut/cell_tx.rs crates/rtl/src/dut/switch.rs crates/rtl/src/error.rs crates/rtl/src/logic.rs crates/rtl/src/signal.rs crates/rtl/src/sim.rs crates/rtl/src/testbench.rs crates/rtl/src/timing.rs crates/rtl/src/vector.rs crates/rtl/src/wave.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comp.rs:
crates/rtl/src/cycle.rs:
crates/rtl/src/dut/mod.rs:
crates/rtl/src/dut/accounting.rs:
crates/rtl/src/dut/cell_rx.rs:
crates/rtl/src/dut/cell_tx.rs:
crates/rtl/src/dut/switch.rs:
crates/rtl/src/error.rs:
crates/rtl/src/logic.rs:
crates/rtl/src/signal.rs:
crates/rtl/src/sim.rs:
crates/rtl/src/testbench.rs:
crates/rtl/src/timing.rs:
crates/rtl/src/vector.rs:
crates/rtl/src/wave.rs:
