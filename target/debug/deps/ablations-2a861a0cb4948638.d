/root/repo/target/debug/deps/ablations-2a861a0cb4948638.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-2a861a0cb4948638.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
