/root/repo/target/debug/deps/criterion-a1cc87404c139004.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-a1cc87404c139004.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
