/root/repo/target/debug/deps/castanet_testboard-67c268921c3e9a6a.d: crates/testboard/src/lib.rs crates/testboard/src/board.rs crates/testboard/src/cycle.rs crates/testboard/src/dut.rs crates/testboard/src/error.rs crates/testboard/src/lane.rs crates/testboard/src/memory.rs crates/testboard/src/pinmap.rs crates/testboard/src/scsi.rs

/root/repo/target/debug/deps/libcastanet_testboard-67c268921c3e9a6a.rmeta: crates/testboard/src/lib.rs crates/testboard/src/board.rs crates/testboard/src/cycle.rs crates/testboard/src/dut.rs crates/testboard/src/error.rs crates/testboard/src/lane.rs crates/testboard/src/memory.rs crates/testboard/src/pinmap.rs crates/testboard/src/scsi.rs

crates/testboard/src/lib.rs:
crates/testboard/src/board.rs:
crates/testboard/src/cycle.rs:
crates/testboard/src/dut.rs:
crates/testboard/src/error.rs:
crates/testboard/src/lane.rs:
crates/testboard/src/memory.rs:
crates/testboard/src/pinmap.rs:
crates/testboard/src/scsi.rs:
