/root/repo/target/debug/deps/replay_and_conformance-fd2cfe4b298cb04b.d: tests/replay_and_conformance.rs

/root/repo/target/debug/deps/replay_and_conformance-fd2cfe4b298cb04b: tests/replay_and_conformance.rs

tests/replay_and_conformance.rs:
