/root/repo/target/debug/deps/castanet_bench-32af05b980fff5ea.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcastanet_bench-32af05b980fff5ea.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
