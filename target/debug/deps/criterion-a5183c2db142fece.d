/root/repo/target/debug/deps/criterion-a5183c2db142fece.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-a5183c2db142fece.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
