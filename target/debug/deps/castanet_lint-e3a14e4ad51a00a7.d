/root/repo/target/debug/deps/castanet_lint-e3a14e4ad51a00a7.d: src/bin/castanet-lint.rs Cargo.toml

/root/repo/target/debug/deps/libcastanet_lint-e3a14e4ad51a00a7.rmeta: src/bin/castanet-lint.rs Cargo.toml

src/bin/castanet-lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
