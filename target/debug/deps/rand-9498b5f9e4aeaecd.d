/root/repo/target/debug/deps/rand-9498b5f9e4aeaecd.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-9498b5f9e4aeaecd.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
