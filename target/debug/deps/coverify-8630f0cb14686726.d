/root/repo/target/debug/deps/coverify-8630f0cb14686726.d: src/lib.rs src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libcoverify-8630f0cb14686726.rmeta: src/lib.rs src/scenarios.rs Cargo.toml

src/lib.rs:
src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
