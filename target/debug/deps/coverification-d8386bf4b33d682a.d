/root/repo/target/debug/deps/coverification-d8386bf4b33d682a.d: tests/coverification.rs

/root/repo/target/debug/deps/coverification-d8386bf4b33d682a: tests/coverification.rs

tests/coverification.rs:
