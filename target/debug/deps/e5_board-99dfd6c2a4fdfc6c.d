/root/repo/target/debug/deps/e5_board-99dfd6c2a4fdfc6c.d: crates/bench/benches/e5_board.rs

/root/repo/target/debug/deps/libe5_board-99dfd6c2a4fdfc6c.rmeta: crates/bench/benches/e5_board.rs

crates/bench/benches/e5_board.rs:
