/root/repo/target/debug/deps/e6_accounting-1e5c4e51575425b3.d: crates/bench/benches/e6_accounting.rs

/root/repo/target/debug/deps/libe6_accounting-1e5c4e51575425b3.rmeta: crates/bench/benches/e6_accounting.rs

crates/bench/benches/e6_accounting.rs:
