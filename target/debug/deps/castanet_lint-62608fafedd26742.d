/root/repo/target/debug/deps/castanet_lint-62608fafedd26742.d: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs

/root/repo/target/debug/deps/libcastanet_lint-62608fafedd26742.rmeta: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs

crates/lint/src/lib.rs:
crates/lint/src/diagnostic.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/interface.rs:
crates/lint/src/passes/pinmap.rs:
crates/lint/src/passes/sync_liveness.rs:
crates/lint/src/passes/topology.rs:
crates/lint/src/report.rs:
