/root/repo/target/debug/deps/castanet_lint-907f3d9b2654ac8b.d: src/bin/castanet-lint.rs

/root/repo/target/debug/deps/libcastanet_lint-907f3d9b2654ac8b.rmeta: src/bin/castanet-lint.rs

src/bin/castanet-lint.rs:
