/root/repo/target/debug/deps/repro-73943d9359ad55b7.d: src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-73943d9359ad55b7.rmeta: src/bin/repro.rs Cargo.toml

src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
