/root/repo/target/debug/deps/castanet_lint-55b7f2747db60714.d: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs

/root/repo/target/debug/deps/castanet_lint-55b7f2747db60714: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs

crates/lint/src/lib.rs:
crates/lint/src/diagnostic.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/interface.rs:
crates/lint/src/passes/pinmap.rs:
crates/lint/src/passes/sync_liveness.rs:
crates/lint/src/passes/topology.rs:
crates/lint/src/report.rs:
