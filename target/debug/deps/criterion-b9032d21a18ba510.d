/root/repo/target/debug/deps/criterion-b9032d21a18ba510.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b9032d21a18ba510.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
