/root/repo/target/debug/deps/castanet_bench-867a7656f4edbefe.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcastanet_bench-867a7656f4edbefe.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcastanet_bench-867a7656f4edbefe.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
