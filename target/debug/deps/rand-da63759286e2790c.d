/root/repo/target/debug/deps/rand-da63759286e2790c.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-da63759286e2790c.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
