/root/repo/target/debug/deps/castanet_bench-1c4b32e74fe1275b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcastanet_bench-1c4b32e74fe1275b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
