/root/repo/target/debug/deps/criterion-3a0ca086f89680ea.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3a0ca086f89680ea.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3a0ca086f89680ea.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
