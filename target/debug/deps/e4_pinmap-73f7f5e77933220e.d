/root/repo/target/debug/deps/e4_pinmap-73f7f5e77933220e.d: crates/bench/benches/e4_pinmap.rs

/root/repo/target/debug/deps/libe4_pinmap-73f7f5e77933220e.rmeta: crates/bench/benches/e4_pinmap.rs

crates/bench/benches/e4_pinmap.rs:
