/root/repo/target/debug/deps/castanet_lint-2054580e7111cc06.d: src/bin/castanet-lint.rs Cargo.toml

/root/repo/target/debug/deps/libcastanet_lint-2054580e7111cc06.rmeta: src/bin/castanet-lint.rs Cargo.toml

src/bin/castanet-lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
