/root/repo/target/debug/deps/castanet_lint-c0ca379b4c75b84c.d: src/bin/castanet-lint.rs

/root/repo/target/debug/deps/libcastanet_lint-c0ca379b4c75b84c.rmeta: src/bin/castanet-lint.rs

src/bin/castanet-lint.rs:
