/root/repo/target/debug/deps/sync_and_transport-7bcb5c081b7bdbcf.d: tests/sync_and_transport.rs

/root/repo/target/debug/deps/libsync_and_transport-7bcb5c081b7bdbcf.rmeta: tests/sync_and_transport.rs

tests/sync_and_transport.rs:
