/root/repo/target/debug/deps/e3_interface-1ea4660db4182db4.d: crates/bench/benches/e3_interface.rs Cargo.toml

/root/repo/target/debug/deps/libe3_interface-1ea4660db4182db4.rmeta: crates/bench/benches/e3_interface.rs Cargo.toml

crates/bench/benches/e3_interface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
