/root/repo/target/debug/deps/repro-878ebac5e50ee0c3.d: src/bin/repro.rs

/root/repo/target/debug/deps/librepro-878ebac5e50ee0c3.rmeta: src/bin/repro.rs

src/bin/repro.rs:
