/root/repo/target/debug/deps/lint-3e91ae13c6c200c5.d: tests/lint.rs

/root/repo/target/debug/deps/liblint-3e91ae13c6c200c5.rmeta: tests/lint.rs

tests/lint.rs:
