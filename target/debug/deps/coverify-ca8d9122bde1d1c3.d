/root/repo/target/debug/deps/coverify-ca8d9122bde1d1c3.d: src/lib.rs src/scenarios.rs

/root/repo/target/debug/deps/libcoverify-ca8d9122bde1d1c3.rlib: src/lib.rs src/scenarios.rs

/root/repo/target/debug/deps/libcoverify-ca8d9122bde1d1c3.rmeta: src/lib.rs src/scenarios.rs

src/lib.rs:
src/scenarios.rs:
