/root/repo/target/debug/deps/e5_board-763882bea7e0dfd6.d: crates/bench/benches/e5_board.rs Cargo.toml

/root/repo/target/debug/deps/libe5_board-763882bea7e0dfd6.rmeta: crates/bench/benches/e5_board.rs Cargo.toml

crates/bench/benches/e5_board.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
