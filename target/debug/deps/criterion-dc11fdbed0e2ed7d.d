/root/repo/target/debug/deps/criterion-dc11fdbed0e2ed7d.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-dc11fdbed0e2ed7d: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
