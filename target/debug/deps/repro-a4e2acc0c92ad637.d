/root/repo/target/debug/deps/repro-a4e2acc0c92ad637.d: src/bin/repro.rs

/root/repo/target/debug/deps/repro-a4e2acc0c92ad637: src/bin/repro.rs

src/bin/repro.rs:
