/root/repo/target/debug/deps/castanet_bench-90cc078793745167.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcastanet_bench-90cc078793745167.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
