/root/repo/target/debug/deps/sync_and_transport-585333adfe8d0737.d: tests/sync_and_transport.rs Cargo.toml

/root/repo/target/debug/deps/libsync_and_transport-585333adfe8d0737.rmeta: tests/sync_and_transport.rs Cargo.toml

tests/sync_and_transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
