/root/repo/target/debug/deps/castanet_bench-8855b7785b7b7cef.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcastanet_bench-8855b7785b7b7cef.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
