/root/repo/target/debug/deps/sync_and_transport-5a2b10b9cdb462be.d: tests/sync_and_transport.rs

/root/repo/target/debug/deps/sync_and_transport-5a2b10b9cdb462be: tests/sync_and_transport.rs

tests/sync_and_transport.rs:
