/root/repo/target/debug/deps/e7_engines-1b9ec312b14e1db8.d: crates/bench/benches/e7_engines.rs

/root/repo/target/debug/deps/libe7_engines-1b9ec312b14e1db8.rmeta: crates/bench/benches/e7_engines.rs

crates/bench/benches/e7_engines.rs:
