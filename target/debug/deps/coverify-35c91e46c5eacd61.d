/root/repo/target/debug/deps/coverify-35c91e46c5eacd61.d: src/lib.rs src/scenarios.rs

/root/repo/target/debug/deps/libcoverify-35c91e46c5eacd61.rmeta: src/lib.rs src/scenarios.rs

src/lib.rs:
src/scenarios.rs:
