/root/repo/target/debug/deps/ablations-ba19e00a36e08500.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-ba19e00a36e08500.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
