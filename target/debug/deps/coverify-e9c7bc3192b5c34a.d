/root/repo/target/debug/deps/coverify-e9c7bc3192b5c34a.d: src/lib.rs src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libcoverify-e9c7bc3192b5c34a.rmeta: src/lib.rs src/scenarios.rs Cargo.toml

src/lib.rs:
src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
