/root/repo/target/debug/deps/rand-e6cc5614ffcd5e64.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-e6cc5614ffcd5e64: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
