/root/repo/target/debug/deps/coverification-67e85cddda368fc2.d: tests/coverification.rs

/root/repo/target/debug/deps/libcoverification-67e85cddda368fc2.rmeta: tests/coverification.rs

tests/coverification.rs:
