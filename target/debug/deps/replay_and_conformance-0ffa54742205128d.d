/root/repo/target/debug/deps/replay_and_conformance-0ffa54742205128d.d: tests/replay_and_conformance.rs

/root/repo/target/debug/deps/libreplay_and_conformance-0ffa54742205128d.rmeta: tests/replay_and_conformance.rs

tests/replay_and_conformance.rs:
