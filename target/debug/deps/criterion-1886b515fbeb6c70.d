/root/repo/target/debug/deps/criterion-1886b515fbeb6c70.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1886b515fbeb6c70.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
