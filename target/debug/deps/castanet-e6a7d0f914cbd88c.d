/root/repo/target/debug/deps/castanet-e6a7d0f914cbd88c.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/conformance.rs crates/core/src/convert.rs crates/core/src/coupling.rs crates/core/src/cyclecosim.rs crates/core/src/entity.rs crates/core/src/error.rs crates/core/src/hwloop.rs crates/core/src/interface.rs crates/core/src/ipc.rs crates/core/src/message.rs crates/core/src/remote.rs crates/core/src/sync/mod.rs crates/core/src/sync/conservative.rs crates/core/src/sync/lockstep.rs crates/core/src/sync/optimistic.rs crates/core/src/traceio.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libcastanet-e6a7d0f914cbd88c.rmeta: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/conformance.rs crates/core/src/convert.rs crates/core/src/coupling.rs crates/core/src/cyclecosim.rs crates/core/src/entity.rs crates/core/src/error.rs crates/core/src/hwloop.rs crates/core/src/interface.rs crates/core/src/ipc.rs crates/core/src/message.rs crates/core/src/remote.rs crates/core/src/sync/mod.rs crates/core/src/sync/conservative.rs crates/core/src/sync/lockstep.rs crates/core/src/sync/optimistic.rs crates/core/src/traceio.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/conformance.rs:
crates/core/src/convert.rs:
crates/core/src/coupling.rs:
crates/core/src/cyclecosim.rs:
crates/core/src/entity.rs:
crates/core/src/error.rs:
crates/core/src/hwloop.rs:
crates/core/src/interface.rs:
crates/core/src/ipc.rs:
crates/core/src/message.rs:
crates/core/src/remote.rs:
crates/core/src/sync/mod.rs:
crates/core/src/sync/conservative.rs:
crates/core/src/sync/lockstep.rs:
crates/core/src/sync/optimistic.rs:
crates/core/src/traceio.rs:
crates/core/src/verify.rs:
