/root/repo/target/debug/deps/e3_interface-0ae54521218ed5dd.d: crates/bench/benches/e3_interface.rs

/root/repo/target/debug/deps/libe3_interface-0ae54521218ed5dd.rmeta: crates/bench/benches/e3_interface.rs

crates/bench/benches/e3_interface.rs:
