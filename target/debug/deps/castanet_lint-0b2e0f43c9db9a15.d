/root/repo/target/debug/deps/castanet_lint-0b2e0f43c9db9a15.d: src/bin/castanet-lint.rs

/root/repo/target/debug/deps/castanet_lint-0b2e0f43c9db9a15: src/bin/castanet-lint.rs

src/bin/castanet-lint.rs:
