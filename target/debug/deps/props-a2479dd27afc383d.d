/root/repo/target/debug/deps/props-a2479dd27afc383d.d: tests/props.rs

/root/repo/target/debug/deps/props-a2479dd27afc383d: tests/props.rs

tests/props.rs:
