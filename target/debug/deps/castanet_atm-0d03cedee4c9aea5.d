/root/repo/target/debug/deps/castanet_atm-0d03cedee4c9aea5.d: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/accounting.rs crates/atm/src/addr.rs crates/atm/src/cell.rs crates/atm/src/discard.rs crates/atm/src/error.rs crates/atm/src/gcra.rs crates/atm/src/hec.rs crates/atm/src/idle.rs crates/atm/src/line.rs crates/atm/src/oam.rs crates/atm/src/signaling.rs crates/atm/src/switch.rs crates/atm/src/traffic/mod.rs crates/atm/src/traffic/cbr.rs crates/atm/src/traffic/mmpp.rs crates/atm/src/traffic/mpeg.rs crates/atm/src/traffic/onoff.rs crates/atm/src/traffic/poisson.rs crates/atm/src/traffic/source.rs crates/atm/src/vpx.rs

/root/repo/target/debug/deps/libcastanet_atm-0d03cedee4c9aea5.rmeta: crates/atm/src/lib.rs crates/atm/src/aal5.rs crates/atm/src/accounting.rs crates/atm/src/addr.rs crates/atm/src/cell.rs crates/atm/src/discard.rs crates/atm/src/error.rs crates/atm/src/gcra.rs crates/atm/src/hec.rs crates/atm/src/idle.rs crates/atm/src/line.rs crates/atm/src/oam.rs crates/atm/src/signaling.rs crates/atm/src/switch.rs crates/atm/src/traffic/mod.rs crates/atm/src/traffic/cbr.rs crates/atm/src/traffic/mmpp.rs crates/atm/src/traffic/mpeg.rs crates/atm/src/traffic/onoff.rs crates/atm/src/traffic/poisson.rs crates/atm/src/traffic/source.rs crates/atm/src/vpx.rs

crates/atm/src/lib.rs:
crates/atm/src/aal5.rs:
crates/atm/src/accounting.rs:
crates/atm/src/addr.rs:
crates/atm/src/cell.rs:
crates/atm/src/discard.rs:
crates/atm/src/error.rs:
crates/atm/src/gcra.rs:
crates/atm/src/hec.rs:
crates/atm/src/idle.rs:
crates/atm/src/line.rs:
crates/atm/src/oam.rs:
crates/atm/src/signaling.rs:
crates/atm/src/switch.rs:
crates/atm/src/traffic/mod.rs:
crates/atm/src/traffic/cbr.rs:
crates/atm/src/traffic/mmpp.rs:
crates/atm/src/traffic/mpeg.rs:
crates/atm/src/traffic/onoff.rs:
crates/atm/src/traffic/poisson.rs:
crates/atm/src/traffic/source.rs:
crates/atm/src/vpx.rs:
