/root/repo/target/debug/deps/lint-3817e55017f9c5d3.d: tests/lint.rs Cargo.toml

/root/repo/target/debug/deps/liblint-3817e55017f9c5d3.rmeta: tests/lint.rs Cargo.toml

tests/lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
