/root/repo/target/debug/deps/props-f6940d8f1242655e.d: tests/props.rs

/root/repo/target/debug/deps/libprops-f6940d8f1242655e.rmeta: tests/props.rs

tests/props.rs:
