/root/repo/target/debug/deps/rand-cde7c7c550b5dade.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-cde7c7c550b5dade.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
