/root/repo/target/debug/deps/castanet_testboard-cfc08f9a1755c05a.d: crates/testboard/src/lib.rs crates/testboard/src/board.rs crates/testboard/src/cycle.rs crates/testboard/src/dut.rs crates/testboard/src/error.rs crates/testboard/src/lane.rs crates/testboard/src/memory.rs crates/testboard/src/pinmap.rs crates/testboard/src/scsi.rs Cargo.toml

/root/repo/target/debug/deps/libcastanet_testboard-cfc08f9a1755c05a.rmeta: crates/testboard/src/lib.rs crates/testboard/src/board.rs crates/testboard/src/cycle.rs crates/testboard/src/dut.rs crates/testboard/src/error.rs crates/testboard/src/lane.rs crates/testboard/src/memory.rs crates/testboard/src/pinmap.rs crates/testboard/src/scsi.rs Cargo.toml

crates/testboard/src/lib.rs:
crates/testboard/src/board.rs:
crates/testboard/src/cycle.rs:
crates/testboard/src/dut.rs:
crates/testboard/src/error.rs:
crates/testboard/src/lane.rs:
crates/testboard/src/memory.rs:
crates/testboard/src/pinmap.rs:
crates/testboard/src/scsi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
