/root/repo/target/debug/deps/rand-c84e7ecbd88b8293.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c84e7ecbd88b8293.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
