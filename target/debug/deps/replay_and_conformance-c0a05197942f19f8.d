/root/repo/target/debug/deps/replay_and_conformance-c0a05197942f19f8.d: tests/replay_and_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libreplay_and_conformance-c0a05197942f19f8.rmeta: tests/replay_and_conformance.rs Cargo.toml

tests/replay_and_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
