/root/repo/target/debug/deps/castanet_bench-553231ac080b511f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/castanet_bench-553231ac080b511f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
