/root/repo/target/debug/deps/e6_accounting-93e2db53297ceb69.d: crates/bench/benches/e6_accounting.rs Cargo.toml

/root/repo/target/debug/deps/libe6_accounting-93e2db53297ceb69.rmeta: crates/bench/benches/e6_accounting.rs Cargo.toml

crates/bench/benches/e6_accounting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
