/root/repo/target/debug/deps/e4_pinmap-35f2e95a1f393222.d: crates/bench/benches/e4_pinmap.rs Cargo.toml

/root/repo/target/debug/deps/libe4_pinmap-35f2e95a1f393222.rmeta: crates/bench/benches/e4_pinmap.rs Cargo.toml

crates/bench/benches/e4_pinmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
