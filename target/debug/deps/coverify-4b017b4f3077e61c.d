/root/repo/target/debug/deps/coverify-4b017b4f3077e61c.d: src/lib.rs src/scenarios.rs

/root/repo/target/debug/deps/libcoverify-4b017b4f3077e61c.rmeta: src/lib.rs src/scenarios.rs

src/lib.rs:
src/scenarios.rs:
