/root/repo/target/debug/deps/castanet_lint-a56fa92fd538a7eb.d: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libcastanet_lint-a56fa92fd538a7eb.rmeta: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/diagnostic.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/interface.rs:
crates/lint/src/passes/pinmap.rs:
crates/lint/src/passes/sync_liveness.rs:
crates/lint/src/passes/topology.rs:
crates/lint/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
