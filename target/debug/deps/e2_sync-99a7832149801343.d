/root/repo/target/debug/deps/e2_sync-99a7832149801343.d: crates/bench/benches/e2_sync.rs Cargo.toml

/root/repo/target/debug/deps/libe2_sync-99a7832149801343.rmeta: crates/bench/benches/e2_sync.rs Cargo.toml

crates/bench/benches/e2_sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
