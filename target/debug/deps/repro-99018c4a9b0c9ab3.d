/root/repo/target/debug/deps/repro-99018c4a9b0c9ab3.d: src/bin/repro.rs

/root/repo/target/debug/deps/librepro-99018c4a9b0c9ab3.rmeta: src/bin/repro.rs

src/bin/repro.rs:
