/root/repo/target/debug/deps/coverification-8195817aa13090b4.d: tests/coverification.rs Cargo.toml

/root/repo/target/debug/deps/libcoverification-8195817aa13090b4.rmeta: tests/coverification.rs Cargo.toml

tests/coverification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
