/root/repo/target/debug/deps/castanet_lint-c4d060efda0d2444.d: src/bin/castanet-lint.rs

/root/repo/target/debug/deps/castanet_lint-c4d060efda0d2444: src/bin/castanet-lint.rs

src/bin/castanet-lint.rs:
