/root/repo/target/debug/deps/e1_throughput-4737e05dd6bcd896.d: crates/bench/benches/e1_throughput.rs

/root/repo/target/debug/deps/libe1_throughput-4737e05dd6bcd896.rmeta: crates/bench/benches/e1_throughput.rs

crates/bench/benches/e1_throughput.rs:
