/root/repo/target/debug/deps/e7_engines-691adbf3341d061a.d: crates/bench/benches/e7_engines.rs Cargo.toml

/root/repo/target/debug/deps/libe7_engines-691adbf3341d061a.rmeta: crates/bench/benches/e7_engines.rs Cargo.toml

crates/bench/benches/e7_engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
