/root/repo/target/debug/deps/repro-5bab992e514e8408.d: src/bin/repro.rs

/root/repo/target/debug/deps/repro-5bab992e514e8408: src/bin/repro.rs

src/bin/repro.rs:
