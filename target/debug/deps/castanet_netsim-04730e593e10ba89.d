/root/repo/target/debug/deps/castanet_netsim-04730e593e10ba89.d: crates/netsim/src/lib.rs crates/netsim/src/error.rs crates/netsim/src/event.rs crates/netsim/src/kernel.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/process.rs crates/netsim/src/queue.rs crates/netsim/src/random.rs crates/netsim/src/scheduler.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libcastanet_netsim-04730e593e10ba89.rmeta: crates/netsim/src/lib.rs crates/netsim/src/error.rs crates/netsim/src/event.rs crates/netsim/src/kernel.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/process.rs crates/netsim/src/queue.rs crates/netsim/src/random.rs crates/netsim/src/scheduler.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/error.rs:
crates/netsim/src/event.rs:
crates/netsim/src/kernel.rs:
crates/netsim/src/link.rs:
crates/netsim/src/network.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/process.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/random.rs:
crates/netsim/src/scheduler.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
