/root/repo/target/debug/deps/rand-bd2a4b8d7bbe22c8.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bd2a4b8d7bbe22c8.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bd2a4b8d7bbe22c8.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
