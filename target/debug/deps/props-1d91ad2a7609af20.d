/root/repo/target/debug/deps/props-1d91ad2a7609af20.d: tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-1d91ad2a7609af20.rmeta: tests/props.rs Cargo.toml

tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
