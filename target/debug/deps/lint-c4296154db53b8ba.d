/root/repo/target/debug/deps/lint-c4296154db53b8ba.d: tests/lint.rs

/root/repo/target/debug/deps/lint-c4296154db53b8ba: tests/lint.rs

tests/lint.rs:
