/root/repo/target/debug/deps/e1_throughput-7304819d18429855.d: crates/bench/benches/e1_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libe1_throughput-7304819d18429855.rmeta: crates/bench/benches/e1_throughput.rs Cargo.toml

crates/bench/benches/e1_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
