/root/repo/target/debug/deps/repro-40eb1c07cc3cbd82.d: src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-40eb1c07cc3cbd82.rmeta: src/bin/repro.rs Cargo.toml

src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
