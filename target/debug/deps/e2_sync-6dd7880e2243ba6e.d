/root/repo/target/debug/deps/e2_sync-6dd7880e2243ba6e.d: crates/bench/benches/e2_sync.rs

/root/repo/target/debug/deps/libe2_sync-6dd7880e2243ba6e.rmeta: crates/bench/benches/e2_sync.rs

crates/bench/benches/e2_sync.rs:
