/root/repo/target/release/libcriterion.rlib: /root/repo/crates/compat/criterion/src/lib.rs
