/root/repo/target/release/librand.rlib: /root/repo/crates/compat/rand/src/lib.rs
