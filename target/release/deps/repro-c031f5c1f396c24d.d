/root/repo/target/release/deps/repro-c031f5c1f396c24d.d: src/bin/repro.rs

/root/repo/target/release/deps/repro-c031f5c1f396c24d: src/bin/repro.rs

src/bin/repro.rs:
