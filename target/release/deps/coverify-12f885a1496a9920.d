/root/repo/target/release/deps/coverify-12f885a1496a9920.d: src/lib.rs src/scenarios.rs

/root/repo/target/release/deps/libcoverify-12f885a1496a9920.rlib: src/lib.rs src/scenarios.rs

/root/repo/target/release/deps/libcoverify-12f885a1496a9920.rmeta: src/lib.rs src/scenarios.rs

src/lib.rs:
src/scenarios.rs:
