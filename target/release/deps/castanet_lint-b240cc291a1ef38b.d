/root/repo/target/release/deps/castanet_lint-b240cc291a1ef38b.d: src/bin/castanet-lint.rs

/root/repo/target/release/deps/castanet_lint-b240cc291a1ef38b: src/bin/castanet-lint.rs

src/bin/castanet-lint.rs:
