/root/repo/target/release/deps/rand-e682f3407155ea3d.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-e682f3407155ea3d.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-e682f3407155ea3d.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
