/root/repo/target/release/deps/castanet_bench-30b67f98c0a616fb.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcastanet_bench-30b67f98c0a616fb.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcastanet_bench-30b67f98c0a616fb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
