/root/repo/target/release/deps/castanet_netsim-4c115f33876403ad.d: crates/netsim/src/lib.rs crates/netsim/src/error.rs crates/netsim/src/event.rs crates/netsim/src/kernel.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/process.rs crates/netsim/src/queue.rs crates/netsim/src/random.rs crates/netsim/src/scheduler.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libcastanet_netsim-4c115f33876403ad.rlib: crates/netsim/src/lib.rs crates/netsim/src/error.rs crates/netsim/src/event.rs crates/netsim/src/kernel.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/process.rs crates/netsim/src/queue.rs crates/netsim/src/random.rs crates/netsim/src/scheduler.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libcastanet_netsim-4c115f33876403ad.rmeta: crates/netsim/src/lib.rs crates/netsim/src/error.rs crates/netsim/src/event.rs crates/netsim/src/kernel.rs crates/netsim/src/link.rs crates/netsim/src/network.rs crates/netsim/src/packet.rs crates/netsim/src/process.rs crates/netsim/src/queue.rs crates/netsim/src/random.rs crates/netsim/src/scheduler.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/error.rs:
crates/netsim/src/event.rs:
crates/netsim/src/kernel.rs:
crates/netsim/src/link.rs:
crates/netsim/src/network.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/process.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/random.rs:
crates/netsim/src/scheduler.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
