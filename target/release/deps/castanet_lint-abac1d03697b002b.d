/root/repo/target/release/deps/castanet_lint-abac1d03697b002b.d: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs

/root/repo/target/release/deps/libcastanet_lint-abac1d03697b002b.rlib: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs

/root/repo/target/release/deps/libcastanet_lint-abac1d03697b002b.rmeta: crates/lint/src/lib.rs crates/lint/src/diagnostic.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/interface.rs crates/lint/src/passes/pinmap.rs crates/lint/src/passes/sync_liveness.rs crates/lint/src/passes/topology.rs crates/lint/src/report.rs

crates/lint/src/lib.rs:
crates/lint/src/diagnostic.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/interface.rs:
crates/lint/src/passes/pinmap.rs:
crates/lint/src/passes/sync_liveness.rs:
crates/lint/src/passes/topology.rs:
crates/lint/src/report.rs:
