/root/repo/target/release/deps/criterion-e3c378aaaa327706.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e3c378aaaa327706.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e3c378aaaa327706.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
