/root/repo/target/release/deps/castanet_testboard-5e509eb6cb4d2c87.d: crates/testboard/src/lib.rs crates/testboard/src/board.rs crates/testboard/src/cycle.rs crates/testboard/src/dut.rs crates/testboard/src/error.rs crates/testboard/src/lane.rs crates/testboard/src/memory.rs crates/testboard/src/pinmap.rs crates/testboard/src/scsi.rs

/root/repo/target/release/deps/libcastanet_testboard-5e509eb6cb4d2c87.rlib: crates/testboard/src/lib.rs crates/testboard/src/board.rs crates/testboard/src/cycle.rs crates/testboard/src/dut.rs crates/testboard/src/error.rs crates/testboard/src/lane.rs crates/testboard/src/memory.rs crates/testboard/src/pinmap.rs crates/testboard/src/scsi.rs

/root/repo/target/release/deps/libcastanet_testboard-5e509eb6cb4d2c87.rmeta: crates/testboard/src/lib.rs crates/testboard/src/board.rs crates/testboard/src/cycle.rs crates/testboard/src/dut.rs crates/testboard/src/error.rs crates/testboard/src/lane.rs crates/testboard/src/memory.rs crates/testboard/src/pinmap.rs crates/testboard/src/scsi.rs

crates/testboard/src/lib.rs:
crates/testboard/src/board.rs:
crates/testboard/src/cycle.rs:
crates/testboard/src/dut.rs:
crates/testboard/src/error.rs:
crates/testboard/src/lane.rs:
crates/testboard/src/memory.rs:
crates/testboard/src/pinmap.rs:
crates/testboard/src/scsi.rs:
