//! # coverify — the CASTANET co-verification environment, assembled
//!
//! Facade over the workspace crates reproducing *"A System-Level
//! Co-Verification Environment for ATM Hardware Design"* (Post, Müller,
//! Grötker — DATE 1998):
//!
//! * [`netsim`] — discrete-event network simulator (OPNET substitute);
//! * [`atm`] — the ATM model suite (cells, HEC, traffic, switch,
//!   accounting);
//! * [`rtl`] — event-driven + cycle-based RTL simulation (VSS substitute)
//!   with the paper's DUTs;
//! * [`testboard`] — the hardware test board (RAVEN substitute);
//! * [`castanet`] — the coupling itself: synchronization protocols,
//!   abstraction interfaces, hardware-in-the-loop, comparison.
//!
//! Besides re-exports, this crate hosts [`scenarios`]: pre-wired
//! co-verification set-ups (switch co-simulation, accounting-unit
//! verification, pure-RTL baseline) shared by the examples, the
//! integration tests, the Criterion benches and the `repro` experiment
//! driver — so every consumer measures exactly the same builds.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use castanet;
pub use castanet_atm as atm;
pub use castanet_netsim as netsim;
pub use castanet_rtl as rtl;
pub use castanet_testboard as testboard;

pub mod scenarios;
