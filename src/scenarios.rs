//! Pre-wired co-verification scenarios.
//!
//! Every experiment of the paper is, at its core, one of a few set-ups:
//! the 4-port switch driven from network-level traffic (the headline
//! throughput measurement), the same switch under a hand-written pure-RTL
//! regression bench (the baseline practice), the accounting-unit case
//! study, and the hardware-in-the-loop variant on the test board. Building
//! them here once means the examples, integration tests, Criterion benches
//! and the `repro` driver all measure identical configurations.

use castanet::compare::StreamComparator;
use castanet::coupling::{Coupling, RtlCosim};
use castanet::entity::{CosimEntity, EgressSignals, IngressSignals};
use castanet::hwloop::{BoardCosim, EgressPorts, IngressPorts};
use castanet::interface::CastanetInterfaceProcess;
use castanet::message::MessageTypeId;
use castanet::sync::ConservativeSync;
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::{AtmCell, CELL_OCTETS};
use castanet_atm::traffic::source::{sequenced_payload, TrafficSourceProcess};
use castanet_atm::traffic::{Cbr, OnOffVbr, TrafficModel};
use castanet_netsim::event::PortId;
use castanet_netsim::kernel::Kernel;
use castanet_netsim::process::{CollectorHandle, CollectorProcess};
use castanet_netsim::time::{SimDuration, SimTime};
use castanet_rtl::cycle::{attach_cycle_dut, attach_cycle_dut_gated};
use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
use castanet_rtl::sim::Simulator;
use castanet_rtl::testbench::{RegressionTestbench, ScheduledCell};
use castanet_testboard::board::TestBoard;
use castanet_testboard::dut::{MappedCycleDut, PortSubsetDut};
use castanet_testboard::scsi::ScsiBus;

/// Configuration of the switch workload shared by E1/E2/E7.
#[derive(Debug, Clone, Copy)]
pub struct SwitchScenarioConfig {
    /// Number of switch line ports.
    pub ports: usize,
    /// Cells each source emits.
    pub cells_per_source: u64,
    /// DUT clock period.
    pub clock_period: SimDuration,
    /// Mean inter-cell gap per source.
    pub cell_gap: SimDuration,
    /// `true` mixes CBR and on-off sources; `false` is all-CBR
    /// (deterministic).
    pub mixed_traffic: bool,
    /// RNG seed for the network side.
    pub seed: u64,
}

impl Default for SwitchScenarioConfig {
    /// The paper's workload shape: a 4-port switch, 20 ns (50 MHz) DUT
    /// clock, cells every ~5 cell times per source.
    fn default() -> Self {
        SwitchScenarioConfig {
            ports: 4,
            cells_per_source: 2_500, // × 4 sources = the paper's 10 000 cells
            clock_period: SimDuration::from_ns(20),
            cell_gap: SimDuration::from_us(10),
            mixed_traffic: true,
            seed: 1998,
        }
    }
}

impl SwitchScenarioConfig {
    /// Total cells offered across all sources.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.cells_per_source * self.ports as u64
    }

    /// Ingress connection of line `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the VPI range (cannot happen for `ports <= 8`).
    #[must_use]
    pub fn in_conn(&self, i: usize) -> VpiVci {
        VpiVci::uni(1, 40 + i as u16).expect("static connection id")
    }

    /// Egress connection of line `i`'s stream (after translation).
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the VPI range (cannot happen for `ports <= 8`).
    #[must_use]
    pub fn out_conn(&self, i: usize) -> VpiVci {
        VpiVci::uni(7, 70 + i as u16).expect("static connection id")
    }

    /// Egress line of ingress line `i`'s stream.
    #[must_use]
    pub fn out_port(&self, i: usize) -> usize {
        (i + 1) % self.ports
    }

    fn traffic_model(&self, i: usize) -> Box<dyn TrafficModel> {
        if self.mixed_traffic && i % 2 == 1 {
            // Burst mean of 8 cells at line slot spacing; silence tuned so
            // the mean rate matches the CBR sources.
            let slot = SimDuration::from_ns(2726);
            let silence =
                SimDuration::from_picos(8 * self.cell_gap.as_picos() - 8 * slot.as_picos());
            Box::new(OnOffVbr::new(slot, 8.0, silence))
        } else {
            Box::new(Cbr::new(self.cell_gap))
        }
    }

    fn rtl_switch(&self) -> AtmSwitchRtl {
        let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: self.ports,
            fifo_capacity: 256,
            table_capacity: 64,
        });
        for i in 0..self.ports {
            let ic = self.in_conn(i);
            let oc = self.out_conn(i);
            assert!(switch.install_route(
                ic.vpi.value() as u8,
                ic.vci.value(),
                self.out_port(i),
                oc.vpi.value() as u8,
                oc.vci.value(),
            ));
        }
        switch
    }
}

/// A fully assembled switch co-simulation (Fig. 1's left path).
pub struct SwitchCosim {
    /// The coupled simulation, ready to run.
    pub coupling: Coupling<RtlCosim>,
    /// Cells returned on each egress line, via the interface process.
    pub collectors: Vec<CollectorHandle>,
    /// The configuration it was built from.
    pub config: SwitchScenarioConfig,
}

impl std::fmt::Debug for SwitchCosim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchCosim")
            .field("config", &self.config)
            .finish()
    }
}

impl SwitchCosim {
    /// Attaches a telemetry handle to every layer of the coupling.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &castanet::Telemetry) -> Self {
        self.coupling = self.coupling.with_telemetry(tel);
        self
    }
}

/// The network half shared by every switch co-simulation variant: traffic
/// sources into the interface process, one collector per egress line.
struct SwitchNet {
    net: Kernel,
    sync: ConservativeSync,
    cell_type: MessageTypeId,
    iface: castanet_netsim::event::ModuleId,
    outbox: castanet::interface::OutboxHandle,
    collectors: Vec<CollectorHandle>,
}

fn switch_net(config: &SwitchScenarioConfig) -> SwitchNet {
    let mut net = Kernel::new(config.seed);
    let node = net.add_node("coverify");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(config.clock_period * CELL_OCTETS as u64);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    for i in 0..config.ports {
        let src = net.add_module(
            node,
            format!("src{i}"),
            Box::new(
                TrafficSourceProcess::new(config.in_conn(i), config.traffic_model(i))
                    .with_limit(config.cells_per_source),
            ),
        );
        net.connect_stream(src, PortId(0), iface, PortId(i))
            .expect("fresh ports");
    }
    let mut collectors = Vec::new();
    for i in 0..config.ports {
        let (c, h) = CollectorProcess::new();
        let sink = net.add_module(node, format!("sink{i}"), Box::new(c));
        net.connect_stream(iface, PortId(i), sink, PortId(0))
            .expect("fresh ports");
        collectors.push(h);
    }
    SwitchNet {
        net,
        sync,
        cell_type,
        iface,
        outbox,
        collectors,
    }
}

/// The cycle-engine follower shared by the cycle-based and parallel
/// variants.
fn switch_cycle_follower(
    config: &SwitchScenarioConfig,
    cell_type: MessageTypeId,
) -> castanet::CycleCosim {
    use castanet::cyclecosim::{CycleCosim, EgressIndices, IngressIndices};
    let sim = castanet_rtl::cycle::CycleSim::new(Box::new(config.rtl_switch()));
    let mut follower = CycleCosim::new(sim, config.clock_period, cell_type, HeaderFormat::Uni);
    for i in 0..config.ports {
        follower.add_ingress(IngressIndices {
            data: 3 * i,
            sync: 3 * i + 1,
            enable: 3 * i + 2,
        });
    }
    for i in 0..config.ports {
        follower.add_egress(EgressIndices {
            data: 3 * i,
            sync: 3 * i + 1,
            valid: 3 * i + 2,
        });
    }
    follower
}

/// Builds the co-simulation of the paper's headline experiment: network
/// traffic sources drive the RTL switch through the CASTANET coupling;
/// egress cells return into the network model.
#[must_use]
pub fn switch_cosim(config: SwitchScenarioConfig) -> SwitchCosim {
    let SwitchNet {
        net,
        sync,
        cell_type,
        iface,
        outbox,
        collectors,
    } = switch_net(&config);

    // RTL side.
    let mut sim = Simulator::new();
    // Gated attachment: the switch reports idle between cells, so the long
    // inter-cell gaps cost zero clock events — the restarted edges land on
    // the same grid (period/2, then every period) the entity pokes against.
    let dut = attach_cycle_dut_gated(
        &mut sim,
        "switch",
        Box::new(config.rtl_switch()),
        config.clock_period,
    );
    let clk = dut.clk;
    let mut entity = CosimEntity::new(config.clock_period, HeaderFormat::Uni, cell_type);
    for i in 0..config.ports {
        entity.add_ingress(IngressSignals {
            data: dut.inputs[3 * i],
            sync: dut.inputs[3 * i + 1],
            enable: dut.inputs[3 * i + 2],
        });
    }
    for i in 0..config.ports {
        entity.add_egress(
            &mut sim,
            clk,
            EgressSignals {
                data: dut.outputs[3 * i],
                sync: dut.outputs[3 * i + 1],
                valid: dut.outputs[3 * i + 2],
            },
        );
    }
    let follower = RtlCosim::new(sim, entity);

    SwitchCosim {
        coupling: Coupling::new(net, follower, sync, cell_type, iface, outbox).with_strict(true),
        collectors,
        config,
    }
}

/// The cycle-based variant of [`switch_cosim`]: the same network model and
/// workload, but the follower is the cycle engine with idle skipping — the
/// paper's §5 "integration of cycle-based simulation techniques".
pub struct SwitchCosimCycle {
    /// The coupled simulation, ready to run.
    pub coupling: Coupling<castanet::CycleCosim>,
    /// Cells returned on each egress line.
    pub collectors: Vec<CollectorHandle>,
    /// The configuration it was built from.
    pub config: SwitchScenarioConfig,
}

impl std::fmt::Debug for SwitchCosimCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchCosimCycle")
            .field("config", &self.config)
            .finish()
    }
}

impl SwitchCosimCycle {
    /// Attaches a telemetry handle to every layer of the coupling.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &castanet::Telemetry) -> Self {
        self.coupling = self.coupling.with_telemetry(tel);
        self
    }
}

/// Builds the cycle-based co-simulation (see [`SwitchCosimCycle`]).
#[must_use]
pub fn switch_cosim_cycle(config: SwitchScenarioConfig) -> SwitchCosimCycle {
    let SwitchNet {
        net,
        sync,
        cell_type,
        iface,
        outbox,
        collectors,
    } = switch_net(&config);
    let follower = switch_cycle_follower(&config, cell_type);
    SwitchCosimCycle {
        coupling: Coupling::new(net, follower, sync, cell_type, iface, outbox).with_strict(true),
        collectors,
        config,
    }
}

/// The parallel-executor variant: the same network model, workload and
/// cycle-engine follower as [`switch_cosim_cycle`], but hosted on
/// [`ParallelCoupling`] so the two engines run on separate threads.
pub struct SwitchCosimParallel {
    /// The parallel coupled simulation, ready to run.
    pub coupling: castanet::ParallelCoupling<castanet::CycleCosim>,
    /// Cells returned on each egress line.
    pub collectors: Vec<CollectorHandle>,
    /// The configuration it was built from.
    pub config: SwitchScenarioConfig,
}

impl std::fmt::Debug for SwitchCosimParallel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchCosimParallel")
            .field("config", &self.config)
            .finish()
    }
}

impl SwitchCosimParallel {
    /// Attaches a telemetry handle to every layer of the parallel coupling
    /// (both engine threads record into the same sink and registry).
    #[must_use]
    pub fn with_telemetry(mut self, tel: &castanet::Telemetry) -> Self {
        self.coupling = self.coupling.with_telemetry(tel);
        self
    }
}

/// Builds the parallel coupled co-simulation (see [`SwitchCosimParallel`]).
#[must_use]
pub fn switch_cosim_parallel(config: SwitchScenarioConfig) -> SwitchCosimParallel {
    let SwitchNet {
        net,
        sync,
        cell_type,
        iface,
        outbox,
        collectors,
    } = switch_net(&config);
    let follower = switch_cycle_follower(&config, cell_type);
    SwitchCosimParallel {
        coupling: castanet::ParallelCoupling::new(net, follower, sync, cell_type, iface, outbox)
            .with_strict(true),
        collectors,
        config,
    }
}

/// The compiled bit-parallel follower shared by the compiled co-simulation
/// variant and the multi-lane scenario sweep: `lanes` replicated switch
/// instances behind one bit-sliced pin interface (see
/// [`castanet_rtl::compiled::LaneBank`]), with the same per-line pin layout
/// as [`switch_cycle_follower`] replicated into every lane.
fn switch_compiled_follower(
    config: &SwitchScenarioConfig,
    cell_type: MessageTypeId,
    lanes: usize,
) -> castanet::CompiledCosim {
    use castanet::cyclecosim::{EgressIndices, IngressIndices};
    use castanet_rtl::compiled::LaneBank;
    use castanet_rtl::cycle::CycleDut;
    let duts: Vec<Box<dyn CycleDut>> = (0..lanes)
        .map(|_| Box::new(config.rtl_switch()) as Box<dyn CycleDut>)
        .collect();
    let mut follower = castanet::CompiledCosim::new(
        LaneBank::new(duts),
        config.clock_period,
        cell_type,
        HeaderFormat::Uni,
    );
    for i in 0..config.ports {
        follower.add_ingress(IngressIndices {
            data: 3 * i,
            sync: 3 * i + 1,
            enable: 3 * i + 2,
        });
    }
    for i in 0..config.ports {
        follower.add_egress(EgressIndices {
            data: 3 * i,
            sync: 3 * i + 1,
            valid: 3 * i + 2,
        });
    }
    follower
}

/// The compiled-backend variant of [`switch_cosim`]: the same network model
/// and workload, with the compiled bit-parallel follower carrying the
/// coupled traffic on lane 0.
pub struct SwitchCosimCompiled {
    /// The coupled simulation, ready to run.
    pub coupling: Coupling<castanet::CompiledCosim>,
    /// Cells returned on each egress line.
    pub collectors: Vec<CollectorHandle>,
    /// The configuration it was built from.
    pub config: SwitchScenarioConfig,
}

impl std::fmt::Debug for SwitchCosimCompiled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchCosimCompiled")
            .field("config", &self.config)
            .finish()
    }
}

impl SwitchCosimCompiled {
    /// Attaches a telemetry handle to every layer of the coupling.
    #[must_use]
    pub fn with_telemetry(mut self, tel: &castanet::Telemetry) -> Self {
        self.coupling = self.coupling.with_telemetry(tel);
        self
    }
}

/// Builds the compiled-backend co-simulation (see [`SwitchCosimCompiled`]).
/// `lanes` instances run per sweep; network traffic drives lane 0 only —
/// seed the others through
/// [`castanet::CompiledCosim::seed_cell`] (or use
/// [`switch_compiled_sweep`]).
#[must_use]
pub fn switch_cosim_compiled(config: SwitchScenarioConfig, lanes: usize) -> SwitchCosimCompiled {
    let SwitchNet {
        net,
        sync,
        cell_type,
        iface,
        outbox,
        collectors,
    } = switch_net(&config);
    let follower = switch_compiled_follower(&config, cell_type, lanes);
    SwitchCosimCompiled {
        coupling: Coupling::new(net, follower, sync, cell_type, iface, outbox).with_strict(true),
        collectors,
        config,
    }
}

/// xorshift64* — the deterministic per-seed stream generator of the sweep
/// (and of the conformance suite's seeded traffic).
fn sweep_rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Runs an N-seed scenario sweep on the compiled backend: seed `i`'s
/// deterministic traffic lands in lane `i`, one batched advance evaluates
/// every lane together, and each lane's egress trace comes back
/// (egress-port-major, emission order within a port).
///
/// Traffic per lane: `cells_per_source` cells on every ingress line, cell
/// `k` of line `p` at `k·cell_gap` plus a seed-derived jitter, payload
/// drawn from the same seed stream — so equal seeds produce byte-identical
/// traces and distinct seeds genuinely distinct ones.
///
/// # Panics
///
/// Panics when `seeds` is empty or exceeds
/// [`castanet_rtl::compiled::LANES`], and on cell-encode failures (static
/// headers cannot fail).
#[must_use]
pub fn switch_compiled_sweep(config: &SwitchScenarioConfig, seeds: &[u64]) -> Vec<Vec<AtmCell>> {
    use castanet::coupling::CoupledSimulator;
    assert!(
        !seeds.is_empty() && seeds.len() <= castanet_rtl::compiled::LANES,
        "1..={} seeds per sweep",
        castanet_rtl::compiled::LANES
    );
    let mut follower = switch_compiled_follower(config, MessageTypeId(0), seeds.len());
    let gap = config.cell_gap.as_picos();
    for (lane, &seed) in seeds.iter().enumerate() {
        let mut state = seed | 1;
        for port in 0..config.ports {
            for k in 0..config.cells_per_source {
                let jitter = sweep_rng(&mut state) % (gap / 2).max(1);
                let mut payload = [0u8; 48];
                for b in &mut payload {
                    *b = (sweep_rng(&mut state) & 0xFF) as u8;
                }
                let cell = AtmCell::user_data(config.in_conn(port), payload);
                let stamp = SimTime::from_picos(k * gap + jitter);
                follower
                    .seed_cell(lane, port, stamp, &cell)
                    .expect("static sweep cell");
            }
        }
    }
    let horizon = SimTime::from_picos((config.cells_per_source + 4) * gap);
    follower
        .advance_batch(horizon)
        .expect("compiled sweep advance");
    (0..seeds.len())
        .map(|lane| {
            (0..config.ports)
                .flat_map(|port| follower.lane_cells(port, lane).iter().cloned())
                .collect()
        })
        .collect()
}

/// Builds the pure-RTL baseline of E1: the same switch, but with stimulus
/// generation and response capture done *inside* the event-driven HDL
/// simulation (the hand-written regression bench of §1), driving every
/// clock of the line including idle cells.
#[must_use]
pub fn switch_pure_rtl(config: SwitchScenarioConfig) -> RegressionTestbench {
    let cell_time = config.clock_period * CELL_OCTETS as u64;
    let slot_stride = (config.cell_gap.as_picos() / cell_time.as_picos()).max(1);
    let stimuli: Vec<Vec<ScheduledCell>> = (0..config.ports)
        .map(|i| {
            (0..config.cells_per_source)
                .map(|k| ScheduledCell {
                    slot: k * slot_stride,
                    bytes: AtmCell::user_data(config.in_conn(i), sequenced_payload(k))
                        .encode(HeaderFormat::Uni)
                        .expect("static cells encode"),
                })
                .collect()
        })
        .collect();
    let mut tb = RegressionTestbench::new(
        Box::new(config.rtl_switch()),
        config.ports,
        config.clock_period,
        stimuli,
    );
    // The checker half of the hand-written bench: every egress line gets a
    // per-clock scoreboard expecting the translated streams — this is the
    // work a real regression bench performs on every clock.
    for i in 0..config.ports {
        let expected: Vec<[u8; CELL_OCTETS]> = (0..config.cells_per_source)
            .map(|k| {
                let mut cell = AtmCell::user_data(config.in_conn(i), sequenced_payload(k));
                cell.retag(config.out_conn(i));
                cell.encode(HeaderFormat::Uni).expect("static cells encode")
            })
            .collect();
        let _ = tb.add_scoreboard(config.out_port(i), expected);
    }
    tb
}

/// Clock cycles the pure-RTL bench needs to push the whole workload
/// through (stimulus span plus drain margin).
#[must_use]
pub fn pure_rtl_clocks(config: &SwitchScenarioConfig) -> u64 {
    let cell_time = config.clock_period * CELL_OCTETS as u64;
    let slot_stride = (config.cell_gap.as_picos() / cell_time.as_picos()).max(1);
    (config.cells_per_source * slot_stride + 4) * CELL_OCTETS as u64
}

/// Pre-fills a [`StreamComparator`] with the cells the reference model
/// predicts on the switch egress (translated headers, same payload order)
/// and checks a collector's output against it.
#[must_use]
pub fn compare_switch_output(
    config: &SwitchScenarioConfig,
    collectors: &[CollectorHandle],
) -> castanet::compare::ComparisonReport {
    let mut cmp = StreamComparator::new(None);
    for i in 0..config.ports {
        for k in 0..config.cells_per_source {
            let mut cell = AtmCell::user_data(config.in_conn(i), sequenced_payload(k));
            cell.retag(config.out_conn(i));
            cmp.expect(&cell, SimTime::ZERO);
        }
    }
    for handle in collectors {
        for (t, pkt) in handle.take() {
            match pkt.payload::<AtmCell>() {
                Some(cell) => cmp.observe(cell, t),
                None => cmp.observe_undecodable(t),
            }
        }
    }
    cmp.finish()
}

/// Builds the hardware-in-the-loop variant: the same 2-port data-path
/// subset of the switch behind the test board, coupled like the RTL
/// follower. Returns the follower; wire it into a [`Coupling`] like any
/// other.
#[must_use]
pub fn switch_on_board(cycle_len: u64, response_type: MessageTypeId) -> BoardCosim {
    let mut switch = AtmSwitchRtl::new(SwitchRtlConfig {
        ports: 2,
        fifo_capacity: 128,
        table_capacity: 16,
    });
    assert!(switch.install_route(1, 40, 1, 7, 70));
    assert!(switch.install_route(1, 41, 0, 7, 71));
    let chip = PortSubsetDut::new(Box::new(switch), (0..6).collect(), (0..6).collect());
    let (mapped, lanes) = MappedCycleDut::auto_mapped(Box::new(chip));
    let map = mapped.map().clone();
    let mut board = TestBoard::with_memory_depth(1 << 16);
    board
        .configure(map.clone(), lanes, castanet_testboard::MAX_CLOCK_HZ)
        .expect("static board configuration");
    let mut cosim = BoardCosim::new(
        board,
        Box::new(mapped),
        map,
        ScsiBus::default(),
        cycle_len,
        response_type,
        HeaderFormat::Uni,
    );
    cosim.add_ingress(IngressPorts {
        data: 0,
        sync: 1,
        enable: 2,
    });
    cosim.add_ingress(IngressPorts {
        data: 3,
        sync: 4,
        enable: 5,
    });
    cosim.add_egress(EgressPorts {
        data: 0,
        sync: 1,
        valid: 2,
    });
    cosim.add_egress(EgressPorts {
        data: 3,
        sync: 4,
        valid: 5,
    });
    cosim
}

// ---------------------------------------------------------------------
// E6: the accounting-unit case study
// ---------------------------------------------------------------------

/// A tap module: records `(time, connection)` of passing cells and forwards
/// them unchanged — how the reference model gets to see exactly the stream
/// the DUT sees.
struct TapProcess {
    log: std::sync::Arc<std::sync::Mutex<Vec<(SimTime, VpiVci)>>>,
}

impl castanet_netsim::process::Process for TapProcess {
    fn on_packet(
        &mut self,
        ctx: &mut castanet_netsim::kernel::Ctx,
        _port: PortId,
        packet: castanet_netsim::packet::Packet,
    ) {
        if let Some(cell) = packet.payload::<AtmCell>() {
            self.log
                .lock()
                .expect("tap lock poisoned")
                .push((ctx.now(), cell.id()));
        }
        ctx.send(PortId(0), packet).expect("tap output wired");
    }
}

/// Configuration of the accounting-unit verification (the §4 case study).
#[derive(Debug, Clone)]
pub struct AccountingScenarioConfig {
    /// Connections with their tariffs `(conn, weight, fixed)`.
    pub connections: Vec<(VpiVci, u16, u16)>,
    /// Cells each connection's source emits.
    pub cells_per_conn: u64,
    /// Inter-cell gap per source.
    pub cell_gap: SimDuration,
    /// Tariff-interval spacing; ticks fire at `k·interval + interval/2 +
    /// cell_gap/2` so no cell transfer straddles a tick (see the module
    /// notes on interval attribution).
    pub tick_interval: SimDuration,
    /// DUT clock period.
    pub clock_period: SimDuration,
    /// Network RNG seed.
    pub seed: u64,
}

impl Default for AccountingScenarioConfig {
    fn default() -> Self {
        AccountingScenarioConfig {
            connections: vec![
                (VpiVci::uni(1, 40).expect("static id"), 2, 50),
                (VpiVci::uni(1, 41).expect("static id"), 1, 10),
                (VpiVci::uni(2, 50).expect("static id"), 0, 100),
            ],
            cells_per_conn: 50,
            cell_gap: SimDuration::from_us(10),
            tick_interval: SimDuration::from_us(100),
            clock_period: SimDuration::from_ns(20),
            seed: 7,
        }
    }
}

/// An assembled accounting-unit co-verification.
pub struct AccountingCosim {
    /// The coupled simulation.
    pub coupling: Coupling<RtlCosim>,
    /// Tick times that were scheduled into the RTL side.
    pub ticks: Vec<SimTime>,
    /// The stream tap (time, connection) log.
    pub tap: std::sync::Arc<std::sync::Mutex<Vec<(SimTime, VpiVci)>>>,
    /// Signal map of the attached accounting DUT.
    pub dut: castanet_rtl::cycle::AttachedDut,
    /// The configuration.
    pub config: AccountingScenarioConfig,
}

impl std::fmt::Debug for AccountingCosim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccountingCosim")
            .field("config", &self.config)
            .finish()
    }
}

/// Builds the §4 case study: multiplexed connection traffic into the RTL
/// accounting unit, tariff ticks pre-scheduled, a tap for the reference.
///
/// # Panics
///
/// Panics on inconsistent static configuration.
#[must_use]
pub fn accounting_cosim(config: AccountingScenarioConfig) -> AccountingCosim {
    let horizon = SimTime::ZERO
        + SimDuration::from_picos(
            config.cell_gap.as_picos() * (config.cells_per_conn + 4)
                + 2 * config.tick_interval.as_picos(),
        );

    // Network side: sources multiplexed through the tap into the interface.
    let mut net = Kernel::new(config.seed);
    let node = net.add_node("accounting");
    let mut sync = ConservativeSync::new();
    let cell_type = sync.register_type(config.clock_period * CELL_OCTETS as u64);
    let (iface_proc, outbox) = CastanetInterfaceProcess::new(cell_type);
    let iface = net.add_module(node, "castanet", Box::new(iface_proc));
    let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let tap = net.add_module(
        node,
        "tap",
        Box::new(TapProcess {
            log: std::sync::Arc::clone(&log),
        }),
    );
    net.connect_stream(tap, PortId(0), iface, PortId(0))
        .expect("fresh port");
    // A shared mux in front of the tap: sources all feed the tap.
    for (i, &(conn, _, _)) in config.connections.iter().enumerate() {
        let src = net.add_module(
            node,
            format!("src{i}"),
            Box::new(
                TrafficSourceProcess::new(conn, Box::new(Cbr::new(config.cell_gap)))
                    .with_limit(config.cells_per_conn),
            ),
        );
        net.connect_stream(src, PortId(0), tap, PortId(i))
            .expect("fresh port");
    }

    // RTL side: the accounting unit, pre-registered, with tick pokes.
    let mut sim = Simulator::new();
    let clk = sim.add_clock("clk", config.clock_period);
    let mut unit = castanet_rtl::dut::AccountingUnitRtl::new(64);
    for &(conn, weight, fixed) in &config.connections {
        assert!(unit.register(conn.vpi.value() as u8, conn.vci.value(), weight, fixed));
    }
    let dut = attach_cycle_dut(&mut sim, "acct", Box::new(unit), clk);
    // Tick pulses: one clock wide, offset so no cell transfer straddles
    // them (cells complete ~2 cell times after their network stamp).
    let mut ticks = Vec::new();
    let mut t = SimTime::ZERO + config.tick_interval + config.tick_interval / 2;
    while t < horizon {
        let setup = config.clock_period / 4;
        sim.poke_bit(dut.inputs[3], castanet_rtl::Logic::One, t - setup)
            .expect("tick poke");
        sim.poke_bit(
            dut.inputs[3],
            castanet_rtl::Logic::Zero,
            t + config.clock_period - setup,
        )
        .expect("tick poke");
        ticks.push(t);
        t += config.tick_interval;
    }
    let mut entity = CosimEntity::new(config.clock_period, HeaderFormat::Uni, cell_type);
    entity.add_ingress(IngressSignals {
        data: dut.inputs[0],
        sync: dut.inputs[1],
        enable: dut.inputs[2],
    });
    let follower = RtlCosim::new(sim, entity);

    AccountingCosim {
        coupling: Coupling::new(net, follower, sync, cell_type, iface, outbox).with_strict(true),
        ticks,
        tap: log,
        dut,
        config,
    }
}

impl AccountingCosim {
    /// The simulated horizon that covers all traffic plus two idle
    /// intervals.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO
            + SimDuration::from_picos(
                self.config.cell_gap.as_picos() * (self.config.cells_per_conn + 4)
                    + 2 * self.config.tick_interval.as_picos(),
            )
    }

    /// Computes the reference accounting state from the tapped stream and
    /// the scheduled ticks. Cells are attributed to the interval their
    /// completion (network stamp + 2 cell times) falls into.
    ///
    /// # Panics
    ///
    /// Panics on reference-model registration conflicts (static config).
    #[must_use]
    pub fn reference(&self) -> castanet_atm::accounting::AccountingUnit {
        use castanet_atm::accounting::{AccountingUnit, Tariff};
        let mut reference = AccountingUnit::new();
        for &(conn, weight, fixed) in &self.config.connections {
            reference
                .register(
                    conn,
                    Tariff {
                        weight: u32::from(weight),
                        fixed: u32::from(fixed),
                    },
                )
                .expect("static registration");
        }
        let completion_lag = self.config.clock_period * (2 * CELL_OCTETS as u64);
        let mut events: Vec<(SimTime, Option<VpiVci>)> = self
            .tap
            .lock()
            .expect("tap lock poisoned")
            .iter()
            .map(|&(t, conn)| (t + completion_lag, Some(conn)))
            .collect();
        events.extend(self.ticks.iter().map(|&t| (t, None)));
        events.sort_by_key(|&(t, conn)| (t, conn.is_none()));
        for (_, conn) in events {
            match conn {
                Some(c) => reference.on_cell(c),
                None => reference.interval_tick(),
            }
        }
        reference
    }

    /// Reads one connection's `(cells, charge)` record back from the RTL
    /// DUT through its pin interface. Call after the coupled run finished.
    ///
    /// # Panics
    ///
    /// Panics if the read-back pokes fail (cannot happen after a clean
    /// run).
    pub fn read_rtl_record(&mut self, conn: VpiVci) -> Option<(u64, u64)> {
        let period = self.config.clock_period;
        let setup = period / 4;
        let sim = self.coupling.follower_mut().sim_mut();
        // Find the next clock edge comfortably in the future.
        let now = sim.now();
        let edge_guess = now + period * 3;
        let poke_at = edge_guess - setup;
        sim.poke_bit(self.dut.inputs[9], castanet_rtl::Logic::One, poke_at)
            .expect("rd_valid poke");
        sim.poke(
            self.dut.inputs[10],
            castanet_rtl::LogicVector::from_u64(u64::from(conn.vpi.value()), 8),
            poke_at,
        )
        .expect("rd_vpi poke");
        sim.poke(
            self.dut.inputs[11],
            castanet_rtl::LogicVector::from_u64(u64::from(conn.vci.value()), 16),
            poke_at,
        )
        .expect("rd_vci poke");
        sim.run_until(edge_guess + period * 2)
            .expect("readback run");
        let found = sim.read_u64(self.dut.outputs[0]) == Some(1);
        if !found {
            return None;
        }
        Some((
            sim.read_u64(self.dut.outputs[1]).expect("rd_cells defined"),
            sim.read_u64(self.dut.outputs[2])
                .expect("rd_charge defined"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SwitchScenarioConfig {
        SwitchScenarioConfig {
            cells_per_source: 20,
            mixed_traffic: false,
            ..SwitchScenarioConfig::default()
        }
    }

    #[test]
    fn switch_cosim_runs_and_matches_reference() {
        let scenario = switch_cosim(small());
        let mut coupling = scenario.coupling;
        coupling.run(SimTime::from_ms(10)).unwrap();
        let report = compare_switch_output(&scenario.config, &scenario.collectors);
        assert!(report.passed(), "{report}");
        assert_eq!(report.matched, 80);
    }

    #[test]
    fn mixed_traffic_also_matches() {
        let config = SwitchScenarioConfig {
            cells_per_source: 30,
            ..SwitchScenarioConfig::default()
        };
        let scenario = switch_cosim(config);
        let mut coupling = scenario.coupling;
        coupling.run(SimTime::from_ms(50)).unwrap();
        let report = compare_switch_output(&scenario.config, &scenario.collectors);
        assert!(report.passed(), "{report}");
        assert_eq!(report.matched, 120);
    }

    #[test]
    fn pure_rtl_baseline_delivers_the_same_cells() {
        let config = SwitchScenarioConfig {
            cells_per_source: 5,
            mixed_traffic: false,
            ..SwitchScenarioConfig::default()
        };
        let mut tb = switch_pure_rtl(config);
        tb.run_clocks(pure_rtl_clocks(&config)).unwrap();
        // Each ingress line i's cells leave on line (i+1)%4 retagged.
        for i in 0..config.ports {
            let out = tb.monitor(config.out_port(i)).take();
            let user: Vec<_> = out
                .iter()
                .filter(|(_, bytes)| !castanet_atm::idle::is_idle_cell(bytes))
                .collect();
            assert_eq!(
                user.len(),
                5,
                "egress line {} of ingress {i}",
                config.out_port(i)
            );
            for (k, (_, bytes)) in user.iter().enumerate() {
                let cell = AtmCell::decode(bytes, HeaderFormat::Uni).unwrap();
                assert_eq!(cell.id(), config.out_conn(i));
                assert_eq!(cell.payload, sequenced_payload(k as u64));
            }
        }
    }

    #[test]
    fn cycle_based_cosim_matches_reference_too() {
        let scenario = switch_cosim_cycle(small());
        let mut coupling = scenario.coupling;
        coupling.run(SimTime::from_ms(10)).unwrap();
        let report = compare_switch_output(&scenario.config, &scenario.collectors);
        assert!(report.passed(), "{report}");
        assert_eq!(report.matched, 80);
        // Idle skipping actually fired.
        assert!(coupling.follower().clocks_skipped() > 0);
    }

    #[test]
    fn compiled_cosim_matches_reference_too() {
        let scenario = switch_cosim_compiled(small(), 4);
        let mut coupling = scenario.coupling;
        coupling.run(SimTime::from_ms(10)).unwrap();
        let report = compare_switch_output(&scenario.config, &scenario.collectors);
        assert!(report.passed(), "{report}");
        assert_eq!(report.matched, 80);
        // Bank-wide idle skipping actually fired, and only lane 0 carried
        // the coupled traffic.
        let follower = coupling.follower();
        assert!(follower.clocks_skipped() > 0);
        for port in 0..scenario.config.ports {
            assert!(follower.lane_cells(port, 1).is_empty());
        }
    }

    #[test]
    fn compiled_sweep_is_seed_deterministic_and_lane_independent() {
        let config = SwitchScenarioConfig {
            cells_per_source: 6,
            mixed_traffic: false,
            ..SwitchScenarioConfig::default()
        };
        let traces = switch_compiled_sweep(&config, &[11, 22, 11, 33]);
        assert_eq!(traces.len(), 4);
        for (lane, trace) in traces.iter().enumerate() {
            assert_eq!(
                trace.len() as u64,
                config.total_cells(),
                "lane {lane} delivered everything"
            );
        }
        assert_eq!(traces[0], traces[2], "equal seeds, equal traces");
        assert_ne!(traces[0], traces[1], "distinct seeds diverge");
        // Permuting the seed list permutes the traces (no cross-lane bleed).
        let permuted = switch_compiled_sweep(&config, &[33, 11, 22, 11]);
        assert_eq!(permuted[0], traces[3]);
        assert_eq!(permuted[1], traces[0]);
        assert_eq!(permuted[2], traces[1]);
    }

    #[test]
    fn parallel_cosim_matches_reference_too() {
        let scenario = switch_cosim_parallel(small());
        let mut coupling = scenario.coupling;
        let stats = coupling.run(SimTime::from_ms(10)).unwrap();
        let report = compare_switch_output(&scenario.config, &scenario.collectors);
        assert!(report.passed(), "{report}");
        assert_eq!(report.matched, 80);
        assert_eq!(stats.late_responses, 0);
        assert!(coupling.sync().lag_invariant_holds());
    }

    #[test]
    fn accounting_cosim_matches_reference() {
        let config = AccountingScenarioConfig {
            cells_per_conn: 20,
            ..AccountingScenarioConfig::default()
        };
        let mut scenario = accounting_cosim(config);
        let horizon = scenario.horizon();
        scenario.coupling.run(horizon).unwrap();
        let reference = scenario.reference();
        let conns: Vec<VpiVci> = scenario.config.connections.iter().map(|c| c.0).collect();
        for conn in conns {
            let (cells, charge) = scenario.read_rtl_record(conn).expect("registered");
            let rec = reference.record(conn).expect("registered");
            assert_eq!(cells, rec.cells, "{conn} cells");
            assert_eq!(charge, rec.charge, "{conn} charge");
            assert_eq!(cells, 20);
        }
    }

    #[test]
    fn board_variant_switches_cells() {
        use castanet::coupling::CoupledSimulator;
        use castanet::message::Message;
        let mut cosim = switch_on_board(256, MessageTypeId(3));
        let cell = AtmCell::user_data(VpiVci::uni(1, 40).unwrap(), [1; 48]);
        cosim
            .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell))
            .unwrap();
        let responses = cosim
            .advance_until(SimTime::from_picos(400 * 50_000))
            .unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(
            responses[0].as_cell().unwrap().id(),
            VpiVci::uni(7, 70).unwrap()
        );
    }
}
