//! `castanet-trace` — run or replay a co-verification scenario with
//! telemetry enabled and export the recorded protocol trace.
//!
//! Two modes:
//!
//! * `--scenario NAME` assembles one of the shipped switch co-simulations
//!   with a [`Telemetry`] handle attached to every layer, runs it, and
//!   exports what was recorded;
//! * `--replay FILE` reads a recorded test-vector trace (the
//!   `# castanet-trace v1` format of `castanet::traceio`) and replays its
//!   stimulus against the cycle-engine switch follower, the binary itself
//!   acting as the originator so the protocol events still appear.
//!
//! Export formats: `jsonl` (one event per line, schema-checked by
//! `castanet-obs-check`), `chrome` (Chrome `trace_event` JSON — open in
//! Perfetto or `chrome://tracing`; originator and follower are separate
//! tracks), `summary` (human console digest of events and metrics).
//!
//! ```text
//! castanet-trace --scenario switch_cosim_parallel --format chrome > trace.json
//! ```
//!
//! Before running, the output path is linted (`CAST050`): an unwritable
//! path or a collision with the replay input is reported up front instead
//! of after the run.

use castanet::coupling::CoupledSimulator;
use castanet::traceio::{read_trace, stimulus_messages};
use castanet::{CastanetError, Message, Telemetry};
use castanet_atm::addr::HeaderFormat;
use castanet_atm::cell::CELL_OCTETS;
use castanet_netsim::time::SimTime;
use castanet_obs::export::{render_summary, write_chrome_trace, write_jsonl};
use castanet_obs::{EventKind, Track};
use coverify::scenarios::{
    switch_cosim, switch_cosim_compiled, switch_cosim_cycle, switch_cosim_parallel,
    SwitchScenarioConfig,
};
use std::io::Write;
use std::path::Path;

const USAGE: &str = "usage: castanet-trace (--scenario NAME | --replay FILE) \
                     [--cells N] [--lanes N] [--profile] \
                     [--format jsonl|chrome|summary|profile|profile-json] [--out PATH]\n\
                     scenarios: switch_cosim | switch_cosim_cycle | \
                     switch_cosim_parallel | switch_cosim_compiled\n\
                     --cells N   cells per traffic source in scenario mode (default 100)\n\
                     --lanes N   replicated instances for switch_cosim_compiled (default 4)\n\
                     --profile   print the per-phase timing breakdown after the run\n\
                     --format    export format (default summary)\n\
                     --out PATH  write the export to PATH instead of stdout";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Jsonl,
    Chrome,
    Summary,
    Profile,
    ProfileJson,
}

/// Telemetry ring capacity: large enough to retain every event of the
/// shipped scenarios at their default sizes.
const RING_CAPACITY: usize = 1 << 20;

/// Runs one named scenario with telemetry attached to every layer.
fn run_scenario(
    name: &str,
    cells: u64,
    lanes: usize,
    tel: &Telemetry,
) -> Result<String, CastanetError> {
    let config = SwitchScenarioConfig {
        cells_per_source: cells,
        ..Default::default()
    };
    let until = SimTime::from_secs(1);
    let stats = match name {
        "switch_cosim" => {
            let mut coupling = switch_cosim(config).with_telemetry(tel).coupling;
            coupling.run(until)?;
            coupling.stats()
        }
        "switch_cosim_cycle" => {
            let mut coupling = switch_cosim_cycle(config).with_telemetry(tel).coupling;
            coupling.run(until)?;
            coupling.stats()
        }
        "switch_cosim_parallel" => {
            let mut coupling = switch_cosim_parallel(config).with_telemetry(tel).coupling;
            coupling.run(until)?;
            coupling.stats()
        }
        "switch_cosim_compiled" => {
            let mut coupling = switch_cosim_compiled(config, lanes)
                .with_telemetry(tel)
                .coupling;
            coupling.run(until)?;
            coupling.stats()
        }
        other => {
            eprintln!("unknown scenario: {other}");
            usage();
        }
    };
    Ok(format!(
        "{name}: {} cells offered, {} net events, {} stimuli, {} responses \
         ({} deferred, {} late)",
        config.total_cells(),
        stats.net_events,
        stats.messages_to_follower,
        stats.responses,
        stats.deferred_responses,
        stats.late_responses,
    ))
}

fn record_responses(tel: &Telemetry, out: &[Message]) {
    for r in out {
        tel.record(
            Track::Originator,
            r.stamp.as_picos(),
            EventKind::ResponseInjected {
                stamp_ps: r.stamp.as_picos(),
                at_ps: r.stamp.as_picos(),
                port: r.port as u32,
            },
        );
    }
}

/// Replays the stimulus records of a recorded vector trace against the
/// cycle-engine switch follower, acting as the originator: each stimulus
/// gets a one-message timing window of width δ (one cell time), and the
/// tail is drained in δ-sized chunks until quiet.
fn run_replay(path: &str, tel: &Telemetry) -> Result<String, CastanetError> {
    let file = std::fs::File::open(path).map_err(CastanetError::from)?;
    let records = read_trace(std::io::BufReader::new(file), HeaderFormat::Uni)?;
    let max_port = records.iter().map(|r| r.port).max().unwrap_or(0);
    if max_port >= 8 {
        return Err(CastanetError::UnknownPort { port: max_port });
    }
    let config = SwitchScenarioConfig {
        ports: (max_port + 1).max(4),
        cells_per_source: 0,
        ..Default::default()
    };
    let delta = config.clock_period * CELL_OCTETS as u64;
    let scenario = switch_cosim_cycle(config);
    let cell_type = scenario.coupling.cell_type();
    let (_net, mut follower) = scenario.coupling.into_parts();
    follower.set_telemetry(tel);

    let msgs = stimulus_messages(&records, cell_type);
    let stimuli = msgs.len();
    let mut responses = 0usize;
    let mut horizon = SimTime::from_picos(0);
    for msg in msgs {
        let grant = msg.stamp + delta;
        tel.record(
            Track::Originator,
            msg.stamp.as_picos(),
            EventKind::WindowGranted {
                grant_ps: grant.as_picos(),
                msgs: 1,
            },
        );
        tel.record(
            Track::Follower,
            msg.stamp.as_picos(),
            EventKind::StimulusEnqueued {
                type_id: msg.type_id.0,
                port: msg.port as u32,
                stamp_ps: msg.stamp.as_picos(),
            },
        );
        follower.deliver(msg)?;
        let start = tel.now_ns();
        let out = follower.advance_batch(grant)?;
        tel.record_span(
            Track::Follower,
            grant.as_picos(),
            start,
            EventKind::FollowerAdvance {
                granted_ps: grant.as_picos(),
                responses: out.len() as u64,
            },
        );
        record_responses(tel, &out);
        responses += out.len();
        horizon = grant;
    }
    let mut quiet = 0;
    while quiet < 3 {
        horizon += delta;
        let start = tel.now_ns();
        let out = follower.advance_batch(horizon)?;
        tel.record_span(
            Track::Follower,
            horizon.as_picos(),
            start,
            EventKind::DrainChunk {
                horizon_ps: horizon.as_picos(),
                responses: out.len() as u64,
            },
        );
        if out.is_empty() {
            quiet += 1;
        } else {
            quiet = 0;
            record_responses(tel, &out);
            responses += out.len();
        }
    }
    Ok(format!(
        "replay {path}: {} records, {stimuli} stimuli, {responses} follower responses",
        records.len()
    ))
}

fn export(tel: &Telemetry, format: Format, out: Option<&str>) -> std::io::Result<()> {
    let events = tel.events();
    let mut writer: Box<dyn Write> = match out {
        Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(std::io::stdout().lock()),
    };
    match format {
        Format::Jsonl => write_jsonl(&mut writer, &events)?,
        Format::Chrome => write_chrome_trace(&mut writer, &events)?,
        Format::Summary => {
            let summary = render_summary(&events, &tel.metrics_snapshot(), tel.dropped_events());
            writer.write_all(summary.as_bytes())?;
        }
        Format::Profile => writer.write_all(tel.profile().render().as_bytes())?,
        Format::ProfileJson => {
            writer.write_all(tel.profile().to_json().as_bytes())?;
            writer.write_all(b"\n")?;
        }
    }
    writer.flush()
}

fn main() {
    let mut scenario: Option<String> = None;
    let mut replay: Option<String> = None;
    let mut cells = 100u64;
    let mut lanes = 4usize;
    let mut profile = false;
    let mut format = Format::Summary;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => match args.next() {
                Some(name) => scenario = Some(name),
                None => usage(),
            },
            "--replay" => match args.next() {
                Some(path) => replay = Some(path),
                None => usage(),
            },
            "--cells" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => cells = n,
                _ => usage(),
            },
            "--lanes" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if (1..=castanet_rtl::compiled::LANES).contains(&n) => lanes = n,
                _ => usage(),
            },
            "--profile" => profile = true,
            "--format" => match args.next().as_deref() {
                Some("jsonl") => format = Format::Jsonl,
                Some("chrome") => format = Format::Chrome,
                Some("summary") => format = Format::Summary,
                Some("profile") => format = Format::Profile,
                Some("profile-json") => format = Format::ProfileJson,
                other => {
                    eprintln!(
                        "unknown format: {}",
                        other.unwrap_or("(missing value after --format)")
                    );
                    usage();
                }
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ => usage(),
        }
    }
    if scenario.is_some() == replay.is_some() {
        eprintln!("exactly one of --scenario and --replay is required");
        usage();
    }

    // Pre-flight: lint the export path before spending time on the run.
    let diags = castanet_lint::passes::telemetry::check_export_paths(
        out.as_deref().map(Path::new),
        replay.as_deref().map(Path::new),
    );
    for d in &diags {
        eprintln!("castanet-trace: {d}");
    }

    let tel = Telemetry::with_capacity(RING_CAPACITY);
    let report = match (&scenario, &replay) {
        (Some(name), None) => run_scenario(name, cells, lanes, &tel),
        (None, Some(path)) => run_replay(path, &tel),
        _ => unreachable!("validated above"),
    };
    match report {
        Ok(line) => eprintln!("castanet-trace: {line}"),
        Err(e) => {
            eprintln!("castanet-trace: {e}");
            std::process::exit(1);
        }
    }
    if tel.dropped_events() > 0 {
        eprintln!(
            "castanet-trace: ring overflow, {} oldest events dropped",
            tel.dropped_events()
        );
    }
    if let Err(e) = export(&tel, format, out.as_deref()) {
        eprintln!("castanet-trace: export failed: {e}");
        std::process::exit(1);
    }
    // `--profile` prints the breakdown to stderr so it composes with any
    // `--format`/`--out` export going to stdout.
    if profile && format != Format::Profile {
        eprint!("{}", tel.profile().render());
    }
}
