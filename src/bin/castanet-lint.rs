//! `castanet-lint` — pre-flight static analysis for CASTANET setups.
//!
//! Assembles the shipped scenario configurations (without running them) and
//! reports every `CAST0xx` finding, or lints the Fig. 5 pin-mapping data
//! set. Exit status is 1 when any error-severity finding exists, 0
//! otherwise — wire it into CI ahead of the actual co-simulation runs.
//!
//! ```text
//! castanet-lint [TARGET...] [--format json] [--codes]
//!
//! TARGET   examples | switch | switch-cycle | accounting | fig5
//!          (default: examples = switch + switch-cycle + accounting + fig5)
//! --format human (default) or json
//! --codes  print the diagnostic-code registry and exit
//! ```

use castanet_lint::{
    check_coupling, check_coupling_setup, has_errors, passes, render_human, render_json,
    sort_diagnostics, Diagnostic, CODES,
};
use castanet_testboard::pinmap::PinMapConfig;
use coverify::scenarios::{
    accounting_cosim, switch_cosim, switch_cosim_cycle, AccountingScenarioConfig,
    SwitchScenarioConfig,
};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

const USAGE: &str = "usage: castanet-lint [TARGET...] [--format human|json] [--codes]\n\
                     targets: examples (default) | switch | switch-cycle | accounting | fig5";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn print_codes() {
    println!("{:<9} {:<8} summary", "code", "severity");
    for (code, severity, summary) in CODES {
        let severity = severity.to_string();
        println!("{code:<9} {severity:<8} {summary}");
    }
}

/// Lints one named target, prefixing finding locations with the target name
/// so a multi-target report stays unambiguous.
fn lint_target(target: &str) -> Vec<Diagnostic> {
    let mut diags = match target {
        "switch" => {
            // A small instance of the headline experiment: same wiring,
            // fewer cells (assembly is what the lint inspects).
            let cfg = SwitchScenarioConfig {
                cells_per_source: 10,
                ..Default::default()
            };
            check_coupling(&switch_cosim(cfg).coupling)
        }
        "switch-cycle" => {
            let cfg = SwitchScenarioConfig {
                cells_per_source: 10,
                ..Default::default()
            };
            check_coupling_setup(&switch_cosim_cycle(cfg).coupling)
        }
        "accounting" => {
            let cfg = AccountingScenarioConfig {
                cells_per_conn: 10,
                ..Default::default()
            };
            check_coupling(&accounting_cosim(cfg).coupling)
        }
        "fig5" => {
            let (cfg, lanes) = PinMapConfig::fig5_example();
            passes::pinmap::check_pinmap(&cfg, Some(&lanes))
        }
        other => {
            eprintln!("unknown target: {other}");
            usage();
        }
    };
    for d in &mut diags {
        d.location = format!("{target}.{}", d.location);
    }
    diags
}

fn main() {
    let mut format = Format::Human;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "unknown format: {}",
                        other.unwrap_or("(missing value after --format)")
                    );
                    usage();
                }
            },
            "--codes" => {
                print_codes();
                return;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with('-') => usage(),
            target => targets.push(target.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("examples".to_string());
    }

    let mut diags = Vec::new();
    for target in &targets {
        if target == "examples" {
            for t in ["switch", "switch-cycle", "accounting", "fig5"] {
                diags.extend(lint_target(t));
            }
        } else {
            diags.extend(lint_target(target));
        }
    }
    sort_diagnostics(&mut diags);

    match format {
        Format::Human => print!("{}", render_human(&diags)),
        Format::Json => println!("{}", render_json(&diags)),
    }
    if has_errors(&diags) {
        std::process::exit(1);
    }
}
