//! `castanet-lint` — pre-flight static analysis for CASTANET setups.
//!
//! Assembles the shipped scenario configurations (without running them) and
//! reports every `CAST0xx` finding, or lints the Fig. 5 pin-mapping data
//! set. Exit status is 1 when any error-severity finding exists, 0
//! otherwise — wire it into CI ahead of the actual co-simulation runs.
//!
//! ```text
//! castanet-lint [TARGET...] [--format json] [--codes]
//! castanet-lint --rtl [TARGET...] [--format json] [--report-out PATH]
//!
//! TARGET   examples | switch | switch-cycle | accounting | fig5
//!          (default: examples = switch + switch-cycle + accounting + fig5)
//! --format human (default) or json
//! --codes  print the diagnostic-code registry and exit
//! --rtl    run the RTL structural passes (CAST1xx) on the RTL-backed
//!          targets and print their levelization reports
//! --report-out PATH  with --rtl: also write the JSON report to PATH
//! ```

use castanet_lint::passes::rtl_structure::{
    levelization_report, render_levelization_human, render_levelization_json,
};
use castanet_lint::{
    check_coupling, check_coupling_setup, has_errors, passes, render_human, render_json,
    sort_diagnostics, Diagnostic, CODES,
};
use castanet_testboard::pinmap::PinMapConfig;
use coverify::scenarios::{
    accounting_cosim, switch_cosim, switch_cosim_cycle, AccountingScenarioConfig,
    SwitchScenarioConfig,
};
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

const USAGE: &str = "usage: castanet-lint [TARGET...] [--format human|json] [--codes]\n\
                     \u{20}      castanet-lint --rtl [TARGET...] [--format human|json] [--report-out PATH]\n\
                     targets: examples (default) | switch | switch-cycle | accounting | fig5\n\
                     --rtl targets: switch | accounting (RTL-backed; default both)";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn print_codes() {
    println!("{:<9} {:<8} summary", "code", "severity");
    for (code, severity, summary) in CODES {
        let severity = severity.to_string();
        println!("{code:<9} {severity:<8} {summary}");
    }
}

/// Lints one named target, prefixing finding locations with the target name
/// so a multi-target report stays unambiguous.
fn lint_target(target: &str) -> Vec<Diagnostic> {
    let mut diags = match target {
        "switch" => {
            // A small instance of the headline experiment: same wiring,
            // fewer cells (assembly is what the lint inspects).
            let cfg = SwitchScenarioConfig {
                cells_per_source: 10,
                ..Default::default()
            };
            check_coupling(&switch_cosim(cfg).coupling)
        }
        "switch-cycle" => {
            let cfg = SwitchScenarioConfig {
                cells_per_source: 10,
                ..Default::default()
            };
            check_coupling_setup(&switch_cosim_cycle(cfg).coupling)
        }
        "accounting" => {
            let cfg = AccountingScenarioConfig {
                cells_per_conn: 10,
                ..Default::default()
            };
            check_coupling(&accounting_cosim(cfg).coupling)
        }
        "fig5" => {
            let (cfg, lanes) = PinMapConfig::fig5_example();
            passes::pinmap::check_pinmap(&cfg, Some(&lanes))
        }
        other => {
            eprintln!("unknown target: {other}");
            usage();
        }
    };
    for d in &mut diags {
        d.location = format!("{target}.{}", d.location);
    }
    diags
}

/// Extracts the netlist of one RTL-backed target (`switch` or
/// `accounting`) without running the co-simulation.
fn rtl_netlist(target: &str) -> castanet_rtl::NetlistGraph {
    match target {
        "switch" => {
            let cfg = SwitchScenarioConfig {
                cells_per_source: 10,
                ..Default::default()
            };
            switch_cosim(cfg).coupling.follower().sim().netlist()
        }
        "accounting" => {
            let cfg = AccountingScenarioConfig {
                cells_per_conn: 10,
                ..Default::default()
            };
            accounting_cosim(cfg).coupling.follower().sim().netlist()
        }
        other => {
            eprintln!("--rtl target must be RTL-backed (switch | accounting), got: {other}");
            usage();
        }
    }
}

/// Re-indents a rendered JSON sub-document so it nests cleanly inside the
/// combined `--rtl` report.
fn indent_json(doc: &str, pad: &str) -> String {
    doc.replace('\n', &format!("\n{pad}"))
}

/// The `--rtl` mode: structural findings plus the levelization report for
/// each RTL-backed target, human or JSON, optionally saved as an artifact.
fn run_rtl(targets: &[String], format: Format, report_out: Option<&str>) -> ! {
    let expanded: Vec<&str> = if targets.is_empty() || targets.iter().any(|t| t == "examples") {
        vec!["switch", "accounting"]
    } else {
        targets.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    let mut human = String::new();
    let mut json = String::from("{\n  \"targets\": [");
    for (i, target) in expanded.iter().enumerate() {
        let net = rtl_netlist(target);
        let mut diags = passes::rtl_structure::check_netlist(&net);
        for d in &mut diags {
            d.location = format!("{target}.{}", d.location);
        }
        sort_diagnostics(&mut diags);
        let report = levelization_report(&net);
        failed |= has_errors(&diags) || report.is_err();

        let _ = writeln!(human, "== rtl target: {target} ==");
        human.push_str(&render_human(&diags));
        match &report {
            Ok(rep) => human.push_str(&render_levelization_human(rep)),
            Err(loops) => {
                human.push_str("levelization undefined: combinational loops present\n");
                human.push_str(&render_human(loops));
            }
        }
        human.push('\n');

        json.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            json,
            "    {{\n      \"target\": \"{target}\",\n      \"findings\": {},\n      \
             \"levelization\": {}\n    }}",
            indent_json(&render_json(&diags), "      "),
            match &report {
                Ok(rep) => indent_json(&render_levelization_json(rep), "      "),
                Err(_) => "null".to_string(),
            }
        );
    }
    json.push_str("\n  ]\n}");

    match format {
        Format::Human => print!("{human}"),
        Format::Json => println!("{json}"),
    }
    if let Some(path) = report_out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("failed to write report to {path}: {e}");
            std::process::exit(2);
        }
        if format == Format::Human {
            println!("JSON report written to {path}");
        }
    }
    std::process::exit(i32::from(failed));
}

fn main() {
    let mut format = Format::Human;
    let mut rtl = false;
    let mut report_out: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "unknown format: {}",
                        other.unwrap_or("(missing value after --format)")
                    );
                    usage();
                }
            },
            "--codes" => {
                print_codes();
                return;
            }
            "--rtl" => rtl = true,
            "--report-out" => match args.next() {
                Some(path) => report_out = Some(path),
                None => {
                    eprintln!("missing value after --report-out");
                    usage();
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with('-') => usage(),
            target => targets.push(target.to_string()),
        }
    }

    if rtl {
        run_rtl(&targets, format, report_out.as_deref());
    }
    if report_out.is_some() {
        eprintln!("--report-out requires --rtl");
        usage();
    }
    if targets.is_empty() {
        targets.push("examples".to_string());
    }

    let mut diags = Vec::new();
    for target in &targets {
        if target == "examples" {
            for t in ["switch", "switch-cycle", "accounting", "fig5"] {
                diags.extend(lint_target(t));
            }
        } else {
            diags.extend(lint_target(target));
        }
    }
    sort_diagnostics(&mut diags);

    match format {
        Format::Human => print!("{}", render_human(&diags)),
        Format::Json => println!("{}", render_json(&diags)),
    }
    if has_errors(&diags) {
        std::process::exit(1);
    }
}
