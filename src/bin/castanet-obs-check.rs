//! `castanet-obs-check` — validate telemetry exports against the exporter
//! schemas.
//!
//! Two modes:
//!
//! * default: reads a JSONL event dump (as produced by `castanet-trace
//!   --format jsonl`) from a file or stdin and checks every line against
//!   the schema in `castanet_obs::schema`: valid JSON, known event name,
//!   known track, `u64` time stamps, `u64` args;
//! * `--profile`: reads a self-profiling report (as produced by
//!   `castanet-trace --format profile-json`) and checks the whole document
//!   against the profile schema — versioned header, per-track wall
//!   extents, well-formed phase rows.
//!
//! Exit status is 1 on the first bad line (reported with its 1-based line
//! number) or malformed profile, 0 when the document validates — wire it
//! into CI after a telemetry smoke run.

use std::io::Read;

const USAGE: &str = "usage: castanet-obs-check [--profile] [FILE]\n\
                     validates a telemetry JSONL dump (FILE, or stdin when omitted or '-');\n\
                     --profile validates a profile-json report instead";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut profile = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--profile" => profile = true,
            flag if flag.starts_with('-') && flag != "-" => usage(),
            file => {
                if path.is_some() {
                    usage();
                }
                path = Some(file.to_string());
            }
        }
    }

    let (source, text) = match path.as_deref() {
        None | Some("-") => {
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("castanet-obs-check: reading stdin: {e}");
                std::process::exit(1);
            }
            ("<stdin>".to_string(), text)
        }
        Some(file) => match std::fs::read_to_string(file) {
            Ok(text) => (file.to_string(), text),
            Err(e) => {
                eprintln!("castanet-obs-check: {file}: {e}");
                std::process::exit(1);
            }
        },
    };

    if profile {
        match castanet_obs::schema::validate_profile(&text) {
            Ok(rows) => println!("{source}: profile valid ({rows} phase rows)"),
            Err(message) => {
                eprintln!("{source}: {message}");
                std::process::exit(1);
            }
        }
    } else {
        match castanet_obs::schema::validate_jsonl(&text) {
            Ok(count) => println!("{source}: {count} events valid"),
            Err((line, message)) => {
                eprintln!("{source}:{line}: {message}");
                std::process::exit(1);
            }
        }
    }
}
