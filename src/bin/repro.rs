//! Experiment driver: regenerates every quantitative artefact of the paper.
//!
//! `cargo run --release --bin repro [e1|e2|e3|e4|e5|e6|e7|all] [--full]`
//!
//! Each experiment prints a paper-vs-measured block; `EXPERIMENTS.md`
//! records a reference run. `--full` uses the paper's full workload sizes
//! (e.g. 10 000 cells for E1); the default is a quick pass.

use castanet::convert::time_scale_ratio;
use castanet::coupling::CoupledSimulator;
use castanet::message::MessageTypeId;
use castanet::sync::conservative::ConservativeSync;
use castanet::sync::lockstep::LockstepSync;
use castanet::sync::optimistic::{OptimisticSync, TimedEvent};
use castanet::verify::{clocks_in, timed};
use castanet_atm::addr::{HeaderFormat, VpiVci};
use castanet_atm::cell::AtmCell;
use castanet_netsim::time::{SimDuration, SimTime};
use coverify::scenarios::{
    accounting_cosim, compare_switch_output, pure_rtl_clocks, switch_cosim, switch_cosim_cycle,
    switch_on_board, switch_pure_rtl, AccountingScenarioConfig, SwitchScenarioConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| a.as_str() != "--full")
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    println!(
        "CASTANET reproduction driver ({} workloads)\n",
        if full { "full" } else { "quick" }
    );
    preflight();
    if want("e1") {
        e1_throughput(full);
    }
    if want("e2") {
        e2_synchronization(full);
    }
    if want("e3") {
        e3_interface();
    }
    if want("e4") {
        e4_pinmap();
    }
    if want("e5") {
        e5_board(full);
    }
    if want("e6") {
        e6_accounting(full);
    }
    if want("e7") {
        e7_engines(full);
    }
}

/// Fail-fast pre-flight: lints the scenario assemblies before spending any
/// wall-clock on the experiments (`castanet-lint` run equivalent).
fn preflight() {
    let mut diags = castanet_lint::check_coupling(
        &switch_cosim(SwitchScenarioConfig {
            cells_per_source: 1,
            ..Default::default()
        })
        .coupling,
    );
    diags.extend(castanet_lint::check_coupling(
        &accounting_cosim(AccountingScenarioConfig {
            cells_per_conn: 1,
            ..Default::default()
        })
        .coupling,
    ));
    if diags.is_empty() {
        println!("pre-flight: scenario configurations lint clean\n");
    } else {
        print!("{}", castanet_lint::render_human(&diags));
        assert!(
            !castanet_lint::has_errors(&diags),
            "pre-flight static analysis rejected the scenario configurations"
        );
    }
}

// ---------------------------------------------------------------------
// E1: §2 in-text throughput numbers
// ---------------------------------------------------------------------

fn e1_throughput(full: bool) {
    println!("== E1: co-simulation throughput vs pure-RTL test bench (paper §2) ==");
    println!("   paper: 10 000 cells, 4-port switch + GCU; co-sim ~1300 cyc/s vs RTL ~300 cyc/s (~4.3x)\n");
    let config = SwitchScenarioConfig {
        cells_per_source: if full { 2_500 } else { 250 },
        ..SwitchScenarioConfig::default()
    };
    println!(
        "   workload: {} cells, {}-port switch",
        config.total_cells(),
        config.ports
    );

    let scenario = switch_cosim(config);
    let mut coupling = scenario.coupling;
    let (r, wall) = timed(|| coupling.run(SimTime::from_secs(10)));
    r.expect("co-simulation failed");
    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    assert!(report.passed(), "E1 co-sim mismatch:\n{report}");
    let ev_clocks = clocks_in(coupling.follower().now(), config.clock_period);
    let ev_rate = ev_clocks as f64 / wall.as_secs_f64();
    println!(
        "   co-simulation (event-driven) : {ev_clocks} clocks, {:.3} s, {ev_rate:.0} cyc/s",
        wall.as_secs_f64()
    );

    let mut tb = switch_pure_rtl(config);
    let clocks = pure_rtl_clocks(&config);
    let (r, wall) = timed(|| tb.run_clocks(clocks));
    r.expect("pure-RTL bench failed");
    let rtl_rate = clocks as f64 / wall.as_secs_f64();
    println!(
        "   pure-RTL regression bench    : {clocks} clocks, {:.3} s, {rtl_rate:.0} cyc/s",
        wall.as_secs_f64()
    );

    let scenario = switch_cosim_cycle(config);
    let mut cy = scenario.coupling;
    let (r, wall) = timed(|| cy.run(SimTime::from_secs(10)));
    r.expect("cycle-based co-simulation failed");
    let report = compare_switch_output(&scenario.config, &scenario.collectors);
    assert!(report.passed(), "E1 cycle-based mismatch:\n{report}");
    let cy_clocks = cy.follower().clocks_evaluated() + cy.follower().clocks_skipped();
    let cy_rate = cy_clocks as f64 / wall.as_secs_f64();
    println!(
        "   co-simulation (cycle-based)  : {cy_clocks} clocks, {:.3} s, {cy_rate:.0} cyc/s",
        wall.as_secs_f64()
    );

    println!(
        "   measured: co-sim/pure-RTL = {:.1}x (paper ~4.3x); cycle-based = {:.0}x",
        ev_rate / rtl_rate,
        cy_rate / rtl_rate
    );
    println!("   shape: co-simulation wins, as the paper reports; see EXPERIMENTS.md for the magnitude discussion.\n");
}

// ---------------------------------------------------------------------
// E2: §3.1 / Fig. 3 — synchronization protocols
// ---------------------------------------------------------------------

fn e2_synchronization(full: bool) {
    println!(
        "== E2: conservative vs optimistic vs lockstep synchronization (paper §3.1, Fig. 3) =="
    );
    println!(
        "   paper: conservative timing windows chosen; optimism rejected for its memory cost\n"
    );
    let n: u64 = if full { 200_000 } else { 20_000 };

    // Conservative: run a random message schedule; no causality errors by
    // construction, bounded state (the queues).
    let mut sync = ConservativeSync::new();
    let types: Vec<_> = (0..4)
        .map(|i| sync.register_type(SimDuration::from_us(1 + i)))
        .collect();
    let mut x: u64 = 0xDEAD_BEEF;
    let mut stamps = [SimTime::ZERO; 4];
    let mut originator = SimTime::ZERO;
    let mut prev_grant = SimTime::ZERO;
    let ((), wall) = timed(|| {
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let j = (x % 4) as usize;
            originator += SimDuration::from_ns(x % 700);
            stamps[j] = stamps[j].max(originator);
            sync.receive(types[j], stamps[j], x.is_multiple_of(4))
                .expect("conservative protocol");
            // The follower catches up to the *previous* grant: the realistic
            // one-message lag of the protocol.
            sync.advance_local(prev_grant).expect("lag invariant");
            prev_grant = sync.originator_time();
            while sync.pop_ready(types[j]).is_some() {}
        }
    });
    println!(
        "   conservative: {n} messages in {:.3} s; max lag {}, 0 causality errors, O(queues) memory",
        wall.as_secs_f64(),
        sync.stats().max_lag
    );

    // Optimistic: same volume with out-of-order arrivals; measure rollbacks
    // and the checkpoint high-water mark.
    let mut tw = OptimisticSync::new(
        0u64,
        |s: &mut u64, e: &u64| {
            *s = s.wrapping_add(*e);
            vec![*s]
        },
        usize::MAX >> 1,
    );
    let mut y: u64 = 0x1234_5678;
    let ((), wall) = timed(|| {
        let mut t_base = 0u64;
        for i in 0..n {
            y ^= y << 13;
            y ^= y >> 7;
            y ^= y << 17;
            t_base += 500;
            // 25% stragglers: stamped up to 2 us in the past.
            let stamp = if y.is_multiple_of(4) {
                t_base.saturating_sub(2_000)
            } else {
                t_base
            };
            tw.execute(TimedEvent {
                stamp: SimTime::from_ns(stamp),
                seq: i,
                event: 1,
            })
            .expect("optimistic execution");
            if i % 64 == 0 {
                tw.set_gvt(SimTime::from_ns(t_base.saturating_sub(4_000)));
            }
        }
    });
    let st = tw.stats();
    println!(
        "   optimistic  : {n} events in {:.3} s; {} rollbacks, {} replays, {} anti-messages, peak {} checkpoints ({} KiB)",
        wall.as_secs_f64(),
        st.rollbacks,
        st.replayed,
        st.anti_messages,
        st.peak_checkpoints,
        st.peak_checkpoint_bytes / 1024
    );

    // Lockstep: its synchronization cost is one round per quantum of
    // simulated time regardless of traffic, while the conservative
    // protocol's messages scale with the traffic. A sparse stream (one
    // cell per 50 us) makes the difference visible.
    let ls = LockstepSync::new(SimDuration::from_us(1)); // quantum = min delta for safety
    let rounds = ls.rounds_to_reach(originator);
    let sparse_msgs = originator.as_picos() / SimDuration::from_us(50).as_picos().max(1) * 2;
    println!(
        "   lockstep    : {} rounds to cover {} at quantum {} — vs ~{} conservative messages for a sparse stream ({}x overhead)\n",
        rounds,
        originator,
        ls.quantum(),
        sparse_msgs,
        rounds / sparse_msgs.max(1)
    );
}

// ---------------------------------------------------------------------
// E3: §3.2 / Fig. 4 — abstraction interfaces
// ---------------------------------------------------------------------

fn e3_interface() {
    println!("== E3: abstraction interface (paper §3.2, Fig. 4) ==");
    println!("   paper: one cell = 53 octets = 53 clocks on an 8-bit port; OPNET:VSS step ratio ~1:400\n");
    let cell = AtmCell::user_data(VpiVci::uni(1, 42).expect("static id"), [0x5A; 48]);
    let ops = castanet::convert::cell_to_byte_ops(&cell, HeaderFormat::Uni).expect("convert");
    println!(
        "   measured: cell maps to {} byte ops, cellsync on op 0: {}",
        ops.len(),
        ops[0].sync
    );

    // The paper's clocks: 2.726 us cell time vs early-90s ASIC clocks.
    for (clk_ns, label) in [
        (7u64, "~140 MHz (paper-era ratio 1:400)"),
        (20, "50 MHz (this repo's default)"),
    ] {
        let ratio = time_scale_ratio(SimDuration::from_ns(2726), SimDuration::from_ns(clk_ns));
        println!("   time-scale ratio at {clk_ns} ns clock: 1:{ratio:.0}  [{label}]");
    }

    // Event-count ratio: network events per cell vs RTL events per cell.
    let config = SwitchScenarioConfig {
        cells_per_source: 50,
        mixed_traffic: false,
        ..SwitchScenarioConfig::default()
    };
    let scenario = switch_cosim(config);
    let mut coupling = scenario.coupling;
    coupling.run(SimTime::from_secs(1)).expect("run");
    let net_events = coupling.stats().net_events;
    let rtl_events = coupling.follower().sim().counters().events;
    println!(
        "   events per cell: network {} vs RTL {} -> 1:{:.0} (the granularity gap the interface bridges)\n",
        net_events / config.total_cells(),
        rtl_events / config.total_cells(),
        rtl_events as f64 / net_events as f64
    );
}

// ---------------------------------------------------------------------
// E4: §3.3 / Fig. 5 — pin-mapping configuration data set
// ---------------------------------------------------------------------

fn e4_pinmap() {
    use castanet_testboard::pinmap::{PinFrame, PinMapConfig};
    println!("== E4: pin-mapping configuration data set (paper §3.3, Fig. 5) ==");
    println!(
        "   paper: byte lane ID / start bit / number of bits establish in/out/io/ctrl mappings\n"
    );
    let (cfg, lanes) = PinMapConfig::fig5_example();
    cfg.validate(&lanes).expect("fig. 5 data set validates");
    println!(
        "   fig. 5 example: {} inports, {} outports, {} io ports, {} ctrl ports — validates",
        cfg.inports.len(),
        cfg.outports.len(),
        cfg.ioports.len(),
        cfg.ctrlports.len()
    );
    let mut frame: PinFrame = [0; 16];
    cfg.encode_inport(1, 0b10_1011, &mut frame).expect("encode");
    cfg.encode_inport(3, 0xABC, &mut frame).expect("encode");
    frame[7] = 0b11; // DUT asserts the write flag
    println!(
        "   roundtrip: inport1=0b101011 -> lane2={:#010b}; io port 2 direction = {}",
        frame[2],
        if cfg.io_is_write(2, &frame).expect("io") {
            "DUT writes"
        } else {
            "board drives"
        }
    );
    // Error detection.
    let mut bad = cfg.clone();
    bad.inports[0].width = 7;
    let verdict = bad.validate(&lanes).expect_err("must reject");
    println!("   misconfiguration detected: {verdict}\n");
}

// ---------------------------------------------------------------------
// E5: §3.3 — hardware test cycles
// ---------------------------------------------------------------------

fn e5_board(full: bool) {
    println!("== E5: hardware-in-the-loop test cycles (paper §3.3) ==");
    println!("   paper: SW/HW/SW activity cycles; durations within a memory-bounded window; real-time execution\n");
    println!(
        "   {:>10} {:>10} {:>14} {:>14} {:>12}",
        "cycle len", "cycles", "hw time", "sw time", "efficiency"
    );
    let lens: &[u64] = if full {
        &[16, 64, 256, 1024, 4096, 16384]
    } else {
        &[16, 256, 4096]
    };
    for &len in lens {
        use castanet::message::Message;
        let mut cosim = switch_on_board(len, MessageTypeId(1));
        for k in 0..8u64 {
            let cell = AtmCell::user_data(VpiVci::uni(1, 40).expect("id"), [k as u8; 48]);
            cosim
                .deliver(Message::cell(SimTime::ZERO, MessageTypeId(0), 0, cell))
                .expect("deliver");
        }
        let mut got = 0;
        while got < 8 {
            let r = cosim.advance_until(SimTime::from_ms(10)).expect("advance");
            if r.is_empty() {
                break;
            }
            got += r.len();
        }
        let s = cosim.session_stats();
        println!(
            "   {:>10} {:>10} {:>14?} {:>14?} {:>11.1}%",
            len,
            s.cycles,
            s.hw_time,
            s.sw_time,
            s.efficiency() * 100.0
        );
    }
    println!("   shape: longer hardware cycles amortize the SCSI software phases — the board's design rationale.");

    // Timing-fault detection at real-time speed.
    use castanet_rtl::dut::{AtmSwitchRtl, SwitchRtlConfig};
    use castanet_testboard::board::TestBoard;
    use castanet_testboard::dut::{MappedCycleDut, PortSubsetDut, TimingFaultDut};
    let mut corrupted = [0u32; 2];
    for (i, clock_hz) in [10_000_000u64, 20_000_000].into_iter().enumerate() {
        let mut sw = AtmSwitchRtl::new(SwitchRtlConfig {
            ports: 2,
            fifo_capacity: 64,
            table_capacity: 8,
        });
        assert!(sw.install_route(1, 40, 1, 7, 70));
        let chip = PortSubsetDut::new(Box::new(sw), (0..6).collect(), (0..6).collect());
        let (mapped, lanes) = MappedCycleDut::auto_mapped(Box::new(chip));
        let map = mapped.map().clone();
        let mut chip = TimingFaultDut::new(mapped, 10_000_000);
        chip.set_board_clock_hz(clock_hz);
        let mut board = TestBoard::with_memory_depth(1 << 14);
        board
            .configure(map.clone(), lanes, clock_hz)
            .expect("config");
        let mut frames = Vec::new();
        for k in 0..8u64 {
            let wire = AtmCell::user_data(VpiVci::uni(1, 40).expect("id"), [k as u8; 48])
                .encode(HeaderFormat::Uni)
                .expect("encode");
            for (j, &b) in wire.iter().enumerate() {
                let mut f = [0u8; 16];
                map.encode_inport(0, u64::from(b), &mut f).expect("map");
                map.encode_inport(1, u64::from(j == 0), &mut f)
                    .expect("map");
                map.encode_inport(2, 1, &mut f).expect("map");
                frames.push(f);
            }
        }
        frames.extend(std::iter::repeat_n([0u8; 16], 200));
        board.load_stimulus(frames).expect("stimulus");
        board.run_hw_cycle_auto(&mut chip).expect("hw cycle");
        let mut assembler = castanet::convert::ByteStreamAssembler::new(HeaderFormat::Uni);
        for frame in board.response() {
            if map.decode_outport(5, frame).expect("port") != 1 {
                continue;
            }
            let data = map.decode_outport(3, frame).expect("port") as u8;
            let sync = map.decode_outport(4, frame).expect("port") == 1;
            if assembler.push(data, sync).is_err() {
                corrupted[i] += 1;
            }
        }
    }
    println!(
        "   timing faults: 0 corrupted cells at rated 10 MHz, {} corrupted at 20 MHz — only real-time runs expose them\n",
        corrupted[1]
    );
    assert_eq!(corrupted[0], 0);
    assert!(corrupted[1] > 0);
}

// ---------------------------------------------------------------------
// E6: §4 — the accounting-unit case study
// ---------------------------------------------------------------------

fn e6_accounting(full: bool) {
    println!("== E6: functional verification of an ATM accounting unit (paper §4) ==");
    println!("   paper: CASTANET used to verify an accounting unit against its reference model\n");
    let config = AccountingScenarioConfig {
        cells_per_conn: if full { 500 } else { 100 },
        ..AccountingScenarioConfig::default()
    };
    let mut scenario = accounting_cosim(config);
    let horizon = scenario.horizon();
    scenario.coupling.run(horizon).expect("run");
    let reference = scenario.reference();
    let conns: Vec<VpiVci> = scenario.config.connections.iter().map(|c| c.0).collect();
    let mut all_ok = true;
    for conn in &conns {
        let (cells, charge) = scenario.read_rtl_record(*conn).expect("registered");
        let rec = reference.record(*conn).expect("registered");
        let ok = cells == rec.cells && charge == rec.charge;
        all_ok &= ok;
        println!(
            "   {conn}: RTL {cells} cells / {charge} units vs reference {} / {} -> {}",
            rec.cells,
            rec.charge,
            if ok { "match" } else { "MISMATCH" }
        );
    }
    assert!(all_ok);

    // Seeded-fault detection: a wrong reference tariff must be caught.
    let mut faulty = accounting_cosim(AccountingScenarioConfig {
        cells_per_conn: 50,
        connections: vec![(VpiVci::uni(1, 40).expect("id"), 2, 50)],
        ..AccountingScenarioConfig::default()
    });
    let horizon = faulty.horizon();
    faulty.coupling.run(horizon).expect("run");
    let (_, charge) = faulty
        .read_rtl_record(VpiVci::uni(1, 40).expect("id"))
        .expect("registered");
    let mut wrong_reference = castanet_atm::accounting::AccountingUnit::new();
    wrong_reference
        .register(
            VpiVci::uni(1, 40).expect("id"),
            castanet_atm::accounting::Tariff {
                weight: 3,
                fixed: 50,
            },
        )
        .expect("register");
    for _ in 0..50 {
        wrong_reference.on_cell(VpiVci::uni(1, 40).expect("id"));
    }
    let wrong = wrong_reference
        .record(VpiVci::uni(1, 40).expect("id"))
        .expect("record");
    assert_ne!(
        charge, wrong.charge,
        "a tariff bug must be visible in the records"
    );
    println!(
        "   seeded tariff discrepancy detected (RTL {charge} vs faulty-reference {})\n",
        wrong.charge
    );
}

// ---------------------------------------------------------------------
// E7: §5 — event-driven vs cycle-based engines
// ---------------------------------------------------------------------

fn e7_engines(full: bool) {
    println!("== E7: event-driven HDL simulation is the bottleneck (paper §5) ==");
    println!(
        "   paper: RTL event counts an order of magnitude above system level; cycle-based needed\n"
    );
    let config = SwitchScenarioConfig {
        cells_per_source: if full { 500 } else { 100 },
        mixed_traffic: false,
        ..SwitchScenarioConfig::default()
    };

    let scenario = switch_cosim(config);
    let mut coupling = scenario.coupling;
    let (r, ev_wall) = timed(|| coupling.run(SimTime::from_secs(10)));
    r.expect("run");
    let c = coupling.follower().sim().counters();
    let net_events = coupling.stats().net_events;
    println!(
        "   event-driven engine: {} signal events, {} delta cycles, {} process runs ({:.3} s)",
        c.events,
        c.delta_cycles,
        c.process_runs,
        ev_wall.as_secs_f64()
    );

    let scenario = switch_cosim_cycle(config);
    let mut cy = scenario.coupling;
    let (r, cy_wall) = timed(|| cy.run(SimTime::from_secs(10)));
    r.expect("run");
    println!(
        "   cycle-based engine : {} clock evaluations, {} skipped ({:.3} s)",
        cy.follower().clocks_evaluated(),
        cy.follower().clocks_skipped(),
        cy_wall.as_secs_f64()
    );
    println!(
        "   event ratio RTL:system = {:.0}:1 (paper: \"an order of magnitude higher\"); cycle-based speedup {:.0}x\n",
        c.events as f64 / net_events as f64,
        ev_wall.as_secs_f64() / cy_wall.as_secs_f64()
    );
}
